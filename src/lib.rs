//! # golden-free-htd
//!
//! Umbrella crate for the golden-free formal hardware-Trojan detection toolkit,
//! a reproduction of *“A Golden-Free Formal Method for Trojan Detection in
//! Non-Interfering Accelerators”* (DATE 2024).
//!
//! This crate re-exports the individual workspace crates under stable module
//! names so that examples, integration tests and downstream users can depend on
//! a single crate:
//!
//! * [`rtl`] — word-level RTL intermediate representation, simulator and
//!   structural analysis ([`htd_rtl`]).
//! * [`sat`] — the CDCL SAT solver backing the property checker ([`htd_sat`]).
//! * [`ipc`] — bit-blasting and interval property checking over a 2-safety
//!   miter ([`htd_ipc`]).
//! * [`detect`] — the paper's contribution: the golden-free Trojan detection
//!   flow ([`htd_core`]).
//! * [`trusthub`] — Trust-Hub-style benchmark accelerators and the Trojan
//!   insertion framework ([`htd_trusthub`]).
//! * [`verilog`] — a synthesizable-subset Verilog front-end lowering RTL
//!   source onto the IR ([`htd_verilog`]).
//! * [`baselines`] — the baseline detection techniques (bounded model
//!   checking, random testing, UCI, FANCI) the paper's related work argues
//!   against ([`htd_baselines`]).
//!
//! # Quickstart
//!
//! ```
//! use golden_free_htd::detect::{DetectionOutcome, TrojanDetector};
//! use golden_free_htd::trusthub::registry::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build an infected benchmark (a pipelined AES with a plaintext-sequence
//! // triggered side-channel Trojan) and run the golden-free detection flow.
//! let design = Benchmark::AesT100.build()?;
//! let report = TrojanDetector::new(&design)?.run()?;
//! assert!(!matches!(report.outcome, DetectionOutcome::Secure));
//! # Ok(())
//! # }
//! ```

pub use htd_baselines as baselines;
pub use htd_core as detect;
pub use htd_ipc as ipc;
pub use htd_rtl as rtl;
pub use htd_sat as sat;
pub use htd_trusthub as trusthub;
pub use htd_verilog as verilog;
