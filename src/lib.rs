//! # golden-free-htd
//!
//! Umbrella crate for the golden-free formal hardware-Trojan detection toolkit,
//! a reproduction of *“A Golden-Free Formal Method for Trojan Detection in
//! Non-Interfering Accelerators”* (DATE 2024).
//!
//! This crate re-exports the individual workspace crates under stable module
//! names so that examples, integration tests and downstream users can depend on
//! a single crate:
//!
//! * [`rtl`] — word-level RTL intermediate representation, simulator and
//!   structural analysis ([`htd_rtl`]).
//! * [`sat`] — the CDCL SAT solver and the pluggable [`sat::SatBackend`]
//!   abstraction behind the property checker ([`htd_sat`]).
//! * [`ipc`] — bit-blasting and interval property checking over a 2-safety
//!   miter, one-shot ([`ipc::PropertyChecker`]) or incremental
//!   ([`ipc::MiterSession`]) ([`htd_ipc`]).
//! * [`detect`] — the paper's contribution: the golden-free Trojan detection
//!   flow, driven through a [`detect::DetectionSession`] ([`htd_core`]).
//! * [`trusthub`] — Trust-Hub-style benchmark accelerators and the Trojan
//!   insertion framework ([`htd_trusthub`]).
//! * [`verilog`] — a synthesizable-subset Verilog front-end lowering RTL
//!   source onto the IR ([`htd_verilog`]).
//! * [`baselines`] — the baseline detection techniques (bounded model
//!   checking, random testing, UCI, FANCI) the paper's related work argues
//!   against ([`htd_baselines`]).
//! * [`serve`] — the multi-tenant detection service behind `htd serve`: a
//!   job queue, a shared solve pool, a netlist-keyed snapshot cache and
//!   NDJSON event streaming ([`htd_serve`]).
//! * [`analyze`] — the workspace invariant checker behind `htd lint`: a
//!   dependency-free Rust token scanner enforcing the repo's determinism,
//!   unsafe-audit and panic-hygiene conventions ([`htd_analyze`]).
//!
//! # Quickstart
//!
//! Detection runs inside a [`detect::DetectionSession`], built with
//! [`detect::SessionBuilder`] from an owned design, a
//! [`detect::DetectorConfig`] and a [`detect::BackendChoice`].  The session
//! keeps **one** live miter encoding for the whole flow — every property of
//! Algorithm 1 (init, one fanout property per structural level, spurious-
//! counterexample re-verification rounds) reuses the same bit-blast and the
//! same incremental SAT backend:
//!
//! ```
//! use golden_free_htd::detect::{DetectionOutcome, SessionBuilder};
//! use golden_free_htd::trusthub::registry::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build an infected benchmark (a pipelined AES with a plaintext-sequence
//! // triggered side-channel Trojan) and run the golden-free detection flow.
//! let design = Benchmark::AesT100.build()?;
//! let mut session = SessionBuilder::new(design).build()?;
//! let report = session.run()?;
//! assert!(!matches!(report.outcome, DetectionOutcome::Secure));
//! // The whole multi-property flow used a single bit-blast.
//! assert_eq!(session.session_stats().bit_blasts, 1);
//! # Ok(())
//! # }
//! ```
//!
//! # Streaming progress
//!
//! Sessions stream [`detect::FlowEvent`]s while the flow runs — one event per
//! fanout level, proved property, counterexample, resolution round and
//! coverage verdict (the exact ordering contract is documented on
//! [`detect::FlowEvent`]):
//!
//! ```
//! use golden_free_htd::detect::{FlowEvent, SessionBuilder};
//! use golden_free_htd::trusthub::registry::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Verifying the HT-free UART needs its benign-state waivers (FSM phase
//! // and counter registers the engineer has inspected, Sec. V-B).
//! let benchmark = Benchmark::Rs232HtFree;
//! let design = benchmark.build()?;
//! let config = golden_free_htd::detect::DetectorConfig {
//!     benign_state: benchmark.benign_state(&design),
//!     ..Default::default()
//! };
//! let mut session = SessionBuilder::new(design).config(config).build()?;
//! let mut proved = Vec::new();
//! session.run_with_observer(&mut |event| {
//!     if let FlowEvent::PropertyProved { property, .. } = event {
//!         proved.push(property.clone());
//!     }
//! })?;
//! assert_eq!(proved.first().map(String::as_str), Some("init_property"));
//! # Ok(())
//! # }
//! ```
//!
//! # Choosing a SAT backend
//!
//! The solver behind a session is pluggable ([`sat::SatBackend`]): the
//! default is the bundled incremental CDCL solver, and
//! [`detect::BackendChoice::DimacsProcess`] shells out to any solver binary
//! speaking DIMACS with SAT-competition output (MiniSat, CaDiCaL, Kissat, or
//! the `htd sat` subcommand itself).  From the command line:
//!
//! ```text
//! htd detect design.v --progress --backend dimacs:/usr/bin/kissat
//! ```

#![forbid(unsafe_code)]

pub use htd_analyze as analyze;
pub use htd_baselines as baselines;
pub use htd_core as detect;
pub use htd_ipc as ipc;
pub use htd_rtl as rtl;
pub use htd_sat as sat;
pub use htd_serve as serve;
pub use htd_trusthub as trusthub;
pub use htd_verilog as verilog;
