//! Reproduction of **Table I** of the paper (experiment E1 in DESIGN.md):
//! run the golden-free detection flow on every infected accelerator benchmark
//! and report which mechanism detected the Trojan, next to the paper's
//! "Detected by" column.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example table1
//! ```

use std::time::Instant;

use golden_free_htd::detect::{DetectedBy, DetectionOutcome, DetectorConfig, SessionBuilder};
use golden_free_htd::trusthub::registry::{Benchmark, ExpectedDetection};

fn detected_by_label(outcome: &DetectionOutcome) -> String {
    match outcome.detected_by() {
        None => "secure".to_string(),
        Some(DetectedBy::InitProperty) => "init property".to_string(),
        Some(DetectedBy::FanoutProperty(k)) => format!("fanout property {k}"),
        Some(DetectedBy::CoverageCheck) => "coverage check".to_string(),
    }
}

fn matches_expectation(outcome: &DetectionOutcome, expected: ExpectedDetection) -> bool {
    match (expected, outcome.detected_by()) {
        (ExpectedDetection::Secure, None) => true,
        (ExpectedDetection::InitProperty, Some(DetectedBy::InitProperty)) => true,
        (ExpectedDetection::FanoutProperty(k), Some(DetectedBy::FanoutProperty(j))) => j == k,
        (ExpectedDetection::AnyFanoutProperty, Some(DetectedBy::FanoutProperty(_))) => true,
        (ExpectedDetection::CoverageCheck, Some(DetectedBy::CoverageCheck)) => true,
        _ => false,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<16} {:<9} {:<15} {:<22} {:<22} {:>7} {:>9}  match",
        "Benchmark",
        "Payload",
        "Trigger",
        "Paper: detected by",
        "Ours: detected by",
        "props",
        "time [s]"
    );
    println!("{}", "-".repeat(112));

    let start_all = Instant::now();
    let mut mismatches = 0usize;
    for benchmark in Benchmark::table1() {
        let info = benchmark.info();
        let design = benchmark.build()?;
        let config = DetectorConfig {
            benign_state: benchmark.benign_state(&design),
            ..DetectorConfig::default()
        };
        let started = Instant::now();
        let report = SessionBuilder::new(design.clone())
            .config(config)
            .build()?
            .run()?;
        let elapsed = started.elapsed();
        let ours = detected_by_label(&report.outcome);
        let ok = matches_expectation(&report.outcome, info.expected);
        if !ok {
            mismatches += 1;
        }
        println!(
            "{:<16} {:<9} {:<15} {:<22} {:<22} {:>7} {:>9.2}  {}",
            info.name,
            info.payload_label,
            info.trigger_label,
            info.paper_detected_by,
            ours,
            report.properties_checked(),
            elapsed.as_secs_f64(),
            if ok { "yes" } else { "NO" }
        );
    }

    println!("{}", "-".repeat(112));
    println!("HT-free reference designs (must verify secure):");
    for benchmark in Benchmark::ht_free() {
        let info = benchmark.info();
        let design = benchmark.build()?;
        let config = DetectorConfig {
            benign_state: benchmark.benign_state(&design),
            ..DetectorConfig::default()
        };
        let started = Instant::now();
        let report = SessionBuilder::new(design.clone())
            .config(config)
            .build()?
            .run()?;
        let elapsed = started.elapsed();
        let ok = matches_expectation(&report.outcome, info.expected);
        if !ok {
            mismatches += 1;
        }
        println!(
            "{:<22} -> {:<22} ({} properties, {} spurious CEX resolved, {:.2}s)  {}",
            info.name,
            detected_by_label(&report.outcome),
            report.properties_checked(),
            report.spurious_resolved,
            elapsed.as_secs_f64(),
            if ok { "ok" } else { "MISMATCH" }
        );
    }

    println!(
        "\ntotal: {:.1}s, mismatches vs expectation: {mismatches}",
        start_all.elapsed().as_secs_f64()
    );
    if mismatches > 0 {
        std::process::exit(1);
    }
    Ok(())
}
