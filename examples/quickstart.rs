//! Quickstart (experiment E8 in DESIGN.md): build a small accelerator with a
//! sequential Trojan, show the triggered-vs-dormant divergence in simulation
//! (the miter intuition of Fig. 2 of the paper), and then let the formal flow
//! find the Trojan without any golden model.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use golden_free_htd::detect::{DetectionOutcome, FlowEvent, SessionBuilder};
use golden_free_htd::rtl::sim::Simulator;
use golden_free_htd::rtl::Design;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-bit "encryption" accelerator (a toy xor cipher) with a classic
    // sequential Trojan: after the plaintext 0xA5 has been observed, the
    // round register is corrupted.
    let mut d = Design::new("toy_xor_accelerator");
    let plaintext = d.add_input("plaintext", 8)?;
    let key = d.add_input("key", 8)?;
    let trigger = d.add_register("trojan_trigger", 1, 0)?;
    let round = d.add_register("round_reg", 8, 0)?;

    let magic = d.eq_const(d.signal(plaintext), 0xA5)?;
    let trigger_next = d.or(d.signal(trigger), magic)?;
    d.set_register_next(trigger, trigger_next)?;

    let encrypted = d.xor(d.signal(plaintext), d.signal(key))?;
    let corruption = d.zero_ext(d.signal(trigger), 8)?;
    let round_next = d.xor(encrypted, corruption)?;
    d.set_register_next(round, round_next)?;
    d.add_output("ciphertext", d.signal(round))?;
    let design = d.validated()?;

    // --- The miter intuition (Fig. 2): two instances, same inputs, one with
    // --- a triggered Trojan, one dormant. Their outputs diverge.
    println!("simulating two instances of the same design under identical inputs");
    let mut dormant = Simulator::new(&design);
    let mut triggered = Simulator::new(&design);
    let trigger_id = design.design().require("trojan_trigger")?;
    triggered.set_register(trigger_id, 1)?; // an earlier input history armed it

    for sim in [&mut dormant, &mut triggered] {
        sim.set_input_by_name("plaintext", 0x10)?;
        sim.set_input_by_name("key", 0x33)?;
        sim.step()?;
    }
    println!(
        "  dormant instance ciphertext:   {:#04x}",
        dormant.peek_by_name("ciphertext")?
    );
    println!(
        "  triggered instance ciphertext: {:#04x}",
        triggered.peek_by_name("ciphertext")?
    );

    // --- The formal flow finds this divergence exhaustively, without knowing
    // --- the trigger sequence and without a golden model.  The session keeps
    // --- one live miter encoding across the whole flow and streams progress
    // --- events while it runs.
    println!("\nrunning the detection flow");
    let mut session = SessionBuilder::new(design.clone()).build()?;
    let report = session.run_with_observer(&mut |event| match event {
        FlowEvent::LevelStarted { level, signals, .. } => {
            println!("  level {level}: proving {} signal(s) equal", signals.len());
        }
        FlowEvent::CounterexampleFound {
            property, diffs, ..
        } => {
            println!("  {property} fails — diverging: {}", diffs.join(", "));
        }
        _ => {}
    })?;
    let stats = session.session_stats();
    println!(
        "  ({} bit-blast, {} SAT queries for the whole flow)",
        stats.bit_blasts, stats.queries
    );
    println!("\n{report}");
    match report.outcome {
        DetectionOutcome::PropertyFailed { .. } | DetectionOutcome::UncoveredSignals { .. } => {
            println!("trojan found, as expected for this infected design");
            Ok(())
        }
        DetectionOutcome::Secure => Err("the toy trojan should have been detected".into()),
    }
}
