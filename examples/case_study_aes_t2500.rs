//! Case study AES-T2500 (Example 2 / Fig. 7 of the paper, experiment E5): a
//! Trojan triggered by a free-running counter (started at reset, independent
//! of the inputs) that flips the least-significant bit of the ciphertext.
//!
//! The paper reports detection by **fanout property 21**, whose
//! counterexample shows the LSB difference on the ciphertext outputs.  The
//! init property and all earlier fanout properties hold, because the trigger
//! never touches the input fan-out cone until the payload does.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example case_study_aes_t2500
//! ```

use golden_free_htd::detect::{DetectedBy, DetectionOutcome, SessionBuilder};
use golden_free_htd::trusthub::registry::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::AesT2500;
    let info = benchmark.info();
    println!(
        "benchmark {} ({} payload, {} trigger)",
        info.name, info.payload_label, info.trigger_label
    );

    let design = benchmark.build()?;
    let report = SessionBuilder::new(design.clone()).build()?.run()?;
    println!("{report}");

    match &report.outcome {
        DetectionOutcome::PropertyFailed {
            detected_by,
            counterexample,
        } => {
            assert_eq!(
                *detected_by,
                DetectedBy::FanoutProperty(21),
                "AES-T2500 must be caught by fanout property 21"
            );
            let ciphertext_diff = counterexample
                .diffs
                .iter()
                .find(|d| d.name == "ciphertext")
                .expect("the ciphertext output must diverge");
            let xor = ciphertext_diff.instance1 ^ ciphertext_diff.instance2;
            println!(
                "ciphertext difference between the instances: {:#x} (bit {} flipped)",
                xor,
                xor.trailing_zeros()
            );
            assert_eq!(xor, 1, "exactly the LSB must be flipped");
            println!(
                "\nall {} earlier properties hold; only the last one fails —",
                21
            );
            println!("the payload is caught exactly where it meets the input fan-out cone.");
            Ok(())
        }
        other => Err(format!("unexpected outcome: {other:?}").into()),
    }
}
