//! Experiment E11: compare the golden-free IPC flow against the baseline
//! detection techniques on a trigger-length sweep (the motivating claims of
//! Sec. I/II of the paper).
//!
//! Run with `cargo run --release --example baseline_comparison`.

use std::error::Error;
use std::time::Instant;

use golden_free_htd::baselines::bmc::{bounded_trojan_search, BmcOptions};
use golden_free_htd::baselines::designs::{clean_pipeline, sequence_trojan};
use golden_free_htd::baselines::fanci::{control_value_analysis, FanciOptions};
use golden_free_htd::baselines::testing::{random_equivalence_test, RandomTestOptions};
use golden_free_htd::baselines::uci::{unused_circuit_identification, UciOptions};
use golden_free_htd::detect::SessionBuilder;

fn main() -> Result<(), Box<dyn Error>> {
    println!("Trojan: input-sequence trigger of length L, ciphertext-corruption payload");
    println!("(detection = yes/no, time in milliseconds)\n");
    println!(
        "{:>4} | {:>16} | {:>22} | {:>18} | {:>20} | {:>12} | {:>12}",
        "L",
        "IPC flow (paper)",
        "BMC, bound = L",
        "BMC, bound = 8",
        "random test (10k cyc)",
        "UCI",
        "FANCI"
    );
    println!("{}", "-".repeat(125));

    let golden = clean_pipeline(1);
    for length in [2u64, 8, 32, 128] {
        let design = sequence_trojan(length);

        let start = Instant::now();
        let ipc = SessionBuilder::new(design.clone()).build()?.run()?;
        let ipc_cell = cell(
            !ipc.outcome.is_secure(),
            start.elapsed().as_secs_f64() * 1e3,
        );

        let start = Instant::now();
        let bmc_exact = bounded_trojan_search(
            &design,
            &BmcOptions {
                bound: length as usize,
                window: 1,
                ..BmcOptions::default()
            },
        );
        let bmc_exact_cell = cell(bmc_exact.detected(), start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let bmc_fixed = bounded_trojan_search(
            &design,
            &BmcOptions {
                bound: 8,
                window: 1,
                ..BmcOptions::default()
            },
        );
        let bmc_fixed_cell = cell(bmc_fixed.detected(), start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let random = random_equivalence_test(
            &design,
            &golden,
            &RandomTestOptions {
                cycles: 10_000,
                seed: 0xBEEF,
            },
        )?;
        let random_cell = cell(random.detected(), start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let uci = unused_circuit_identification(&design, &UciOptions::default())?;
        let uci_cell = cell(
            uci.flags_target("data"),
            start.elapsed().as_secs_f64() * 1e3,
        );

        let start = Instant::now();
        let fanci = control_value_analysis(&design, &FanciOptions::default());
        let fanci_cell = cell(
            fanci.flags_signal("data"),
            start.elapsed().as_secs_f64() * 1e3,
        );

        println!(
            "{length:>4} | {ipc_cell:>16} | {bmc_exact_cell:>22} | {bmc_fixed_cell:>18} | {random_cell:>20} | {uci_cell:>12} | {fanci_cell:>12}"
        );
    }

    println!();
    println!("Reading the table:");
    println!(
        "  * the IPC flow detects every length at near-constant cost and needs no golden model;"
    );
    println!("  * BMC detects only when the unrolled bound covers the trigger, at a cost that grows with it;");
    println!("  * random testing (against a golden model) never produces the stealthy sequence;");
    println!("  * UCI / FANCI flag the dormant payload but provide no exhaustiveness guarantee");
    println!("    (and UCI flags benign pass-through logic of the clean design as well).");
    Ok(())
}

fn cell(detected: bool, millis: f64) -> String {
    format!("{} {:7.1} ms", if detected { "yes" } else { " no" }, millis)
}
