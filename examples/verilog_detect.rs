//! Golden-free Trojan detection straight from Verilog source.
//!
//! The paper's flow takes the RTL of a (possibly infected) accelerator — no
//! golden model, no functional specification.  This example compiles two
//! versions of a small streaming cipher with the `htd-verilog` front-end and
//! runs the detection flow on both; only the infected one is reported.
//!
//! Run with `cargo run --release --example verilog_detect`.

use std::error::Error;

use golden_free_htd::detect::SessionBuilder;
use golden_free_htd::verilog::compile;

const CLEAN: &str = "
module stream_cipher(
  input clk,
  input rst,
  input  [15:0] din,
  input  [15:0] key,
  output [15:0] dout
);
  reg [15:0] whitened;
  reg [15:0] rotated;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      whitened <= 16'h0000;
      rotated  <= 16'h0000;
    end else begin
      whitened <= din ^ key;
      rotated  <= {whitened[7:0], whitened[15:8]};
    end
  end
  assign dout = rotated;
endmodule
";

/// The same design with a sequential Trojan: a counter of occurrences of the
/// magic plaintext 16'hCAFE; after the fourth occurrence the key is leaked to
/// the output one nibble at a time (a BasicRSA-T300-style "leak to output"
/// payload with a "# values" trigger).
const INFECTED: &str = "
module stream_cipher(
  input clk,
  input rst,
  input  [15:0] din,
  input  [15:0] key,
  output [15:0] dout
);
  reg [15:0] whitened;
  reg [15:0] rotated;
  reg [2:0]  seen;
  reg [1:0]  nibble;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      seen   <= 3'd0;
      nibble <= 2'd0;
    end else begin
      if (din == 16'hCAFE && seen != 3'd4) seen <= seen + 3'd1;
      if (seen == 3'd4) nibble <= nibble + 2'd1;
    end
  end
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      whitened <= 16'h0000;
      rotated  <= 16'h0000;
    end else begin
      whitened <= din ^ key;
      rotated  <= (seen == 3'd4)
                  ? {12'h000, key[3:0]}
                  : {whitened[7:0], whitened[15:8]};
    end
  end
  assign dout = rotated;
endmodule
";

fn main() -> Result<(), Box<dyn Error>> {
    for (label, source) in [("HT-free", CLEAN), ("infected", INFECTED)] {
        let design = compile(source)?;
        let report = SessionBuilder::new(design.clone()).build()?.run()?;
        println!(
            "=== {} version ({} registers) ===",
            label,
            design.design().registers().len()
        );
        println!("{report}");
    }
    println!("The infected version is reported from the RTL alone — no golden model was used.");
    Ok(())
}
