//! Case study AES-T1400 (Example 1 / Fig. 6 of the paper, experiment E4):
//! a plaintext-sequence-triggered Trojan that leaks round-key bits through a
//! power side channel implemented as a leakage shift register.
//!
//! The paper reports that the **init property** fails and the counterexample
//! shows different values in the shift registers of the two instances.  This
//! example reproduces both observations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example case_study_aes_t1400
//! ```

use golden_free_htd::detect::{DetectedBy, DetectionOutcome, SessionBuilder};
use golden_free_htd::trusthub::registry::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::AesT1400;
    let info = benchmark.info();
    println!(
        "benchmark {} ({} payload, {} trigger)",
        info.name, info.payload_label, info.trigger_label
    );

    let design = benchmark.build()?;
    let report = SessionBuilder::new(design.clone()).build()?.run()?;
    println!("{report}");

    match &report.outcome {
        DetectionOutcome::PropertyFailed {
            detected_by,
            counterexample,
        } => {
            assert_eq!(
                *detected_by,
                DetectedBy::InitProperty,
                "AES-T1400 must be caught by the init property"
            );
            println!(
                "diverging signals at t+1: {}",
                counterexample.diff_names().join(", ")
            );
            println!("registers with different starting state (trigger / payload candidates):");
            for state in counterexample.differing_state() {
                println!("  {state}");
            }
            // The paper's observation: the leakage shift register (or the
            // trigger FSM feeding it) shows different values in the two
            // instances.
            let touches_trojan_state = counterexample
                .diffs
                .iter()
                .chain(counterexample.differing_state())
                .any(|p| p.name.starts_with("trojan_"));
            assert!(
                touches_trojan_state,
                "counterexample should localise the trojan state"
            );
            println!("\ncounterexample localises the Trojan, as reported in the paper");
            Ok(())
        }
        other => Err(format!("unexpected outcome: {other:?}").into()),
    }
}
