//! HT-free verification (experiment E2): the flow must prove the *clean*
//! accelerators secure — the absence-of-Trojan guarantee the paper derives
//! from the exhaustiveness argument of Sec. IV-D.
//!
//! The paper reports: all HT-free AES versions verify secure without spurious
//! counterexamples; the manually cleaned RSA designs verify secure after two
//! spurious counterexamples were discharged.  This example reports the same
//! quantities for our models.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ht_free_verification
//! ```

use golden_free_htd::detect::{DetectorConfig, SessionBuilder};
use golden_free_htd::rtl::stats::DesignStats;
use golden_free_htd::trusthub::registry::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "design", "registers", "state bits", "properties", "spurious CEX", "verdict"
    );
    for benchmark in Benchmark::ht_free() {
        let design = benchmark.build()?;
        let stats = DesignStats::of(&design);
        let config = DetectorConfig {
            benign_state: benchmark.benign_state(&design),
            ..DetectorConfig::default()
        };
        let report = SessionBuilder::new(design.clone())
            .config(config)
            .build()?
            .run()?;
        println!(
            "{:<22} {:>10} {:>12} {:>12} {:>14} {:>10}",
            benchmark.info().name,
            stats.registers,
            stats.state_bits,
            report.properties_checked(),
            report.spurious_resolved,
            if report.outcome.is_secure() {
                "SECURE"
            } else {
                "SUSPECT"
            }
        );
        if !report.outcome.is_secure() {
            return Err(format!("{} failed to verify secure", benchmark.info().name).into());
        }
    }
    println!("\nall HT-free designs verified secure (paper: same result, 0/2/3 spurious CEXs)");
    Ok(())
}
