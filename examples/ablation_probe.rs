//! Internal probe used while tuning the ablation benchmark: measures one
//! shared vs. unshared property check on a few designs and prints the times.
//! (Kept as an example so it can be run on demand; the Criterion benchmark
//! `ablation_hashing` is the curated version.)

use std::time::Instant;

use golden_free_htd::ipc::IntervalProperty;
use golden_free_htd::ipc::{CheckerOptions, PropertyChecker};
use golden_free_htd::rtl::structural::fanout_levels;
use golden_free_htd::trusthub::registry::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (benchmark, index) in [
        (Benchmark::BasicRsaHtFree, 1usize),
        (Benchmark::AesHtFree, 3),
        (Benchmark::AesHtFree, 10),
    ] {
        let design = benchmark.build()?;
        let levels = fanout_levels(&design);
        let property = if index == 0 || index > levels.len() - 1 {
            continue;
        } else {
            IntervalProperty::new(
                format!("fanout_property_{index}"),
                levels[index - 1].clone(),
                levels[index].clone(),
            )
        };
        for share in [true, false] {
            let checker = PropertyChecker::with_options(
                &design,
                CheckerOptions {
                    share_assumed_equal: share,
                    ..CheckerOptions::default()
                },
            );
            let start = Instant::now();
            let report = checker.check(&property);
            println!(
                "{:<20} {:<20} share={:<5} holds={:<5} aig={:>8} cnf_vars={:>8} conflicts={:>8} {:?}",
                benchmark.name(),
                property.name,
                share,
                report.holds(),
                report.stats.aig_nodes,
                report.stats.cnf_vars,
                report.stats.solver.conflicts,
                start.elapsed()
            );
        }
    }
    Ok(())
}
