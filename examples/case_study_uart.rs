//! Case study RS232-T2400 (experiment E6): the UART from the benchmark suite,
//! a design with *interfering* control behaviour (baud counters, busy flags).
//!
//! The paper reports that the Trojan is detected by a failed fanout property,
//! after a few spurious counterexamples have been resolved by re-verification
//! with additional equality assumptions (Sec. V-B).  This example shows both
//! the spurious-counterexample triage on the HT-free UART and the detection
//! on the infected one.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example case_study_uart
//! ```

use golden_free_htd::detect::{DetectedBy, DetectionOutcome, DetectorConfig, SessionBuilder};
use golden_free_htd::trusthub::registry::Benchmark;

fn run(benchmark: Benchmark) -> Result<(), Box<dyn std::error::Error>> {
    let info = benchmark.info();
    let design = benchmark.build()?;
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    let report = SessionBuilder::new(design.clone())
        .config(config)
        .build()?
        .run()?;
    println!("=== {} ===", info.name);
    println!("{report}");
    match (&report.outcome, info.expected) {
        (DetectionOutcome::Secure, _) if info.trojan.is_none() => {
            println!(
                "verified secure; {} spurious counterexamples were resolved with equality \
                 assumptions on the benign control state (baud/bit counters, busy flags)\n",
                report.spurious_resolved
            );
            Ok(())
        }
        (
            DetectionOutcome::PropertyFailed {
                detected_by,
                counterexample,
            },
            _,
        ) => {
            match detected_by {
                DetectedBy::FanoutProperty(k) => {
                    println!("trojan detected by fanout property {k}");
                }
                other => println!("trojan detected by {other}"),
            }
            println!(
                "diverging signals: {} ({} spurious counterexamples resolved on the way)\n",
                counterexample.diff_names().join(", "),
                report.spurious_resolved
            );
            Ok(())
        }
        (other, _) => Err(format!("unexpected outcome for {}: {other:?}", info.name).into()),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(Benchmark::Rs232HtFree)?;
    run(Benchmark::Rs232T2400)?;
    Ok(())
}
