//! Head-to-head comparison of the baseline detectors against the golden-free
//! IPC flow (experiment E11 of DESIGN.md) on the parameterised Trojan
//! designs.
//!
//! The qualitative shape the paper argues for must hold:
//!
//! * the IPC flow detects every Trojan class regardless of trigger length,
//!   without a golden model;
//! * bounded model checking detects input-sequence triggers only when the
//!   bound covers the sequence, and input-independent triggers never;
//! * random testing against a golden model misses stealthy triggers;
//! * UCI / FANCI flag dormant payload logic but also benign logic, and give
//!   no guarantee.

use htd_baselines::bmc::{bounded_trojan_search, BmcOptions};
use htd_baselines::designs::{clean_pipeline, sequence_trojan, timer_trojan, value_counter_trojan};
use htd_baselines::fanci::{control_value_analysis, FanciOptions};
use htd_baselines::testing::{random_equivalence_test, RandomTestOptions};
use htd_baselines::uci::{unused_circuit_identification, UciOptions};
use htd_core::{DetectionOutcome, SessionBuilder};
use htd_rtl::ValidatedDesign;

fn ipc_detects(design: &ValidatedDesign) -> bool {
    let report = SessionBuilder::new(design.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    !matches!(report.outcome, DetectionOutcome::Secure)
}

#[test]
fn ipc_flow_detects_every_trojan_class_and_passes_the_clean_design() {
    assert!(!ipc_detects(&clean_pipeline(3)));
    for length in [2, 8, 32] {
        assert!(
            ipc_detects(&sequence_trojan(length)),
            "sequence length {length}"
        );
    }
    assert!(ipc_detects(&timer_trojan(1_000_000)));
    assert!(ipc_detects(&value_counter_trojan(100_000)));
}

#[test]
fn ipc_detection_is_independent_of_the_trigger_length() {
    // The number of properties checked (and therefore the work) depends on
    // the structural depth only, not on how long the trigger sequence is.
    let short = SessionBuilder::new(sequence_trojan(2))
        .build()
        .unwrap()
        .run()
        .unwrap();
    let long = SessionBuilder::new(sequence_trojan(64))
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(short.properties_checked(), long.properties_checked());
    assert!(!short.outcome.is_secure());
    assert!(!long.outcome.is_secure());
}

#[test]
fn bmc_needs_a_bound_matching_the_trigger_length() {
    let design = sequence_trojan(10);
    let shallow = bounded_trojan_search(
        &design,
        &BmcOptions {
            bound: 2,
            window: 1,
            ..BmcOptions::default()
        },
    );
    let deep = bounded_trojan_search(
        &design,
        &BmcOptions {
            bound: 12,
            window: 1,
            ..BmcOptions::default()
        },
    );
    assert!(
        !shallow.detected(),
        "a 2-cycle prefix cannot arm a 10-value sequence"
    );
    assert!(deep.detected());
    assert!(deep.cnf_clauses > shallow.cnf_clauses);
    // The IPC flow detects the same design with no bound at all.
    assert!(ipc_detects(&design));
}

#[test]
fn bmc_never_sees_input_independent_triggers_that_ipc_catches() {
    let design = timer_trojan(20);
    let bmc = bounded_trojan_search(
        &design,
        &BmcOptions {
            bound: 30,
            ..BmcOptions::default()
        },
    );
    assert!(
        !bmc.detected(),
        "the self-miter from reset cannot diverge on a timer Trojan"
    );
    assert!(ipc_detects(&design));
}

#[test]
fn random_testing_needs_a_golden_model_and_still_misses_stealthy_triggers() {
    let golden = clean_pipeline(1);
    let stealthy = sequence_trojan(6);
    let report = random_equivalence_test(
        &stealthy,
        &golden,
        &RandomTestOptions {
            cycles: 20_000,
            seed: 11,
        },
    )
    .unwrap();
    assert!(
        !report.detected(),
        "the 6-value sequence is never produced by chance"
    );
    assert!(ipc_detects(&stealthy));
}

#[test]
fn structural_heuristics_flag_the_payload_but_also_benign_logic() {
    let infected = sequence_trojan(8);
    let clean = clean_pipeline(2);

    let uci_infected = unused_circuit_identification(
        &infected,
        &UciOptions {
            cycles: 1_000,
            seed: 5,
        },
    )
    .unwrap();
    let uci_clean = unused_circuit_identification(
        &clean,
        &UciOptions {
            cycles: 1_000,
            seed: 5,
        },
    )
    .unwrap();
    assert!(uci_infected.flags_target("data"), "dormant payload flagged");
    assert!(
        !uci_clean.flagged.is_empty(),
        "benign pass-through logic flagged as well"
    );

    let fanci_infected = control_value_analysis(&infected, &FanciOptions::default());
    let fanci_clean = control_value_analysis(&clean, &FanciOptions::default());
    assert!(fanci_infected.flags_signal("data"));
    assert!(fanci_clean.suspicious.is_empty());
}
