//! # htd-baselines
//!
//! Baseline hardware-Trojan detection techniques, implemented so the
//! golden-free IPC flow of `htd-core` can be compared against the methods
//! the paper's related-work section argues against (Sec. I and II of the
//! DATE'24 paper):
//!
//! * [`bmc`] — 2-safety **bounded** model checking from the reset state.
//!   Sound for Trojans whose trigger sequence fits inside the bound, but the
//!   bound (and the runtime) must grow with the trigger length — exactly the
//!   limitation the paper's symbolic-starting-state properties remove.
//! * [`testing`] — random functional testing against a **golden model**.
//!   Needs the golden design the paper's method does without, and the
//!   probability of hitting a stealthy trigger collapses as the trigger
//!   sequence grows.
//! * [`uci`] — Unused Circuit Identification (Hicks et al.): flags logic
//!   whose output always tracked one of its inputs during testing.  Cheap,
//!   golden-free, but neither sound nor complete — and defeated by
//!   DeTrust-style Trojans.
//! * [`fanci`] — FANCI-style control-value analysis (Waksman et al.): flags
//!   signals with nearly-unused control inputs by sampling their
//!   combinational cones.  Golden-free and effective against many stealthy
//!   triggers, but statistical rather than exhaustive.
//!
//! Each module returns a structured report so the benchmark harness can
//! tabulate detection success and runtime against the IPC flow (experiment
//! E11 of DESIGN.md).
//!
//! # Example
//!
//! A Trojan armed by a 16-value input sequence is missed by bounded search
//! with a 2-cycle prefix but found once the unrolled bound covers the
//! trigger sequence — at a visibly higher encoding cost.  The IPC flow in
//! `htd-core` detects it regardless of the sequence length.
//!
//! ```
//! use htd_baselines::bmc::{bounded_trojan_search, BmcOptions};
//! use htd_baselines::designs::sequence_trojan;
//!
//! let design = sequence_trojan(16);
//! let shallow = bounded_trojan_search(&design, &BmcOptions { bound: 2, ..BmcOptions::default() });
//! assert!(!shallow.detected());
//! let deep = bounded_trojan_search(&design, &BmcOptions { bound: 18, ..BmcOptions::default() });
//! assert!(deep.detected());
//! assert!(deep.cnf_vars > shallow.cnf_vars);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bmc;
pub mod designs;
pub mod fanci;
pub mod testing;
pub mod uci;

pub use bmc::{bounded_trojan_search, BmcOptions, BmcOutcome, BmcReport};
pub use fanci::{control_value_analysis, FanciOptions, FanciReport, SuspiciousSignal};
pub use testing::{
    random_equivalence_test, RandomTestOptions, RandomTestOutcome, RandomTestReport,
};
pub use uci::{unused_circuit_identification, UciOptions, UciPair, UciReport};
