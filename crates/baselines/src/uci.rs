//! Unused Circuit Identification (UCI).
//!
//! Hicks et al. (Oakland 2010) observe that malicious logic is dormant
//! during functional verification: the logic between some signal pair never
//! does anything, i.e. the pair stays equal throughout all tests.  UCI flags
//! such pairs as candidate Trojan logic for manual inspection.
//!
//! This word-level adaptation simulates the design under random stimuli and
//! flags every `(target, source)` pair — a register or output together with
//! one same-width signal in its combinational support — whose values stayed
//! identical across the whole run (the source sampled before the clock edge,
//! the target after it, so "the logic in between never changed the data").
//!
//! The known weaknesses are reproduced faithfully: the report is neither
//! sound (benign pass-through logic is flagged too) nor complete
//! (DeTrust-style Trojans whose payload partially toggles during tests
//! escape), and it depends entirely on the quality of the stimuli — in
//! contrast to the exhaustive guarantee of the IPC flow.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use htd_rtl::sim::Simulator;
use htd_rtl::structural::combinational_support;
use htd_rtl::{DesignError, SignalId, ValidatedDesign};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the UCI analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UciOptions {
    /// Number of simulated clock cycles of random stimulus.
    pub cycles: u64,
    /// Seed for the stimulus generator.
    pub seed: u64,
}

impl Default for UciOptions {
    fn default() -> Self {
        UciOptions {
            cycles: 4_096,
            seed: 0x0C1,
        }
    }
}

/// One signal pair whose connecting logic never changed the data during the
/// tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UciPair {
    /// The downstream signal (a register or primary output).
    pub target: String,
    /// The upstream signal in its combinational support.
    pub source: String,
}

/// Result of [`unused_circuit_identification`].
#[derive(Clone, Debug)]
pub struct UciReport {
    /// Pairs that stayed equal for the entire run — candidate locations of
    /// dormant (possibly malicious) logic.
    pub flagged: Vec<UciPair>,
    /// Total candidate pairs examined.
    pub pairs_examined: usize,
    /// Cycles simulated.
    pub cycles_run: u64,
    /// Wall-clock time of the analysis.
    pub duration: Duration,
}

impl UciReport {
    /// `true` if the given target signal appears in at least one flagged
    /// pair.
    #[must_use]
    pub fn flags_target(&self, name: &str) -> bool {
        self.flagged.iter().any(|p| p.target == name)
    }
}

/// Runs the UCI analysis under random stimuli.
///
/// # Errors
///
/// Propagates simulator errors (these indicate an invalid design, not a
/// property of the analysis).
///
/// # Example
///
/// ```
/// use htd_baselines::designs::sequence_trojan;
/// use htd_baselines::uci::{unused_circuit_identification, UciOptions};
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// // The payload XOR between the input and the data register never fires
/// // during random tests, so UCI flags the (data, in) pair.
/// let report = unused_circuit_identification(&sequence_trojan(4), &UciOptions::default())?;
/// assert!(report.flags_target("data"));
/// # Ok(())
/// # }
/// ```
pub fn unused_circuit_identification(
    design: &ValidatedDesign,
    options: &UciOptions,
) -> Result<UciReport, DesignError> {
    // htd-lint: allow(determinism): runtime only fills UciReport.duration for the comparison table; it never reaches a detection report
    let start = Instant::now();
    let d = design.design();

    // Candidate pairs: every state/output signal against every same-width
    // signal in its driver's combinational support.
    let mut pairs: Vec<(SignalId, SignalId)> = Vec::new();
    for target in d.state_and_output_signals() {
        let driver = d.signal_info(target).driver().expect("validated design");
        for source in combinational_support(design, driver) {
            if d.signal_width(source) == d.signal_width(target) && source != target {
                pairs.push((target, source));
            }
        }
    }
    let mut still_equal: Vec<bool> = vec![true; pairs.len()];

    let inputs = d.inputs();
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut sim = Simulator::new(design);
    for _ in 0..options.cycles {
        for &input in &inputs {
            let width = d.signal_width(input);
            sim.set_input(input, random_word(&mut rng, width))?;
        }
        // Source values before the edge, target values after it.
        let before: BTreeMap<SignalId, u128> =
            pairs.iter().map(|&(_, s)| (s, sim.peek(s))).collect();
        sim.step()?;
        for (i, &(target, source)) in pairs.iter().enumerate() {
            if still_equal[i] && sim.peek(target) != before[&source] {
                still_equal[i] = false;
            }
        }
    }

    let flagged = pairs
        .iter()
        .zip(&still_equal)
        .filter(|(_, &eq)| eq)
        .map(|(&(target, source), _)| UciPair {
            target: d.signal_name(target).to_string(),
            source: d.signal_name(source).to_string(),
        })
        .collect();
    Ok(UciReport {
        flagged,
        pairs_examined: pairs.len(),
        cycles_run: options.cycles,
        duration: start.elapsed(),
    })
}

fn random_word(rng: &mut StdRng, width: u32) -> u128 {
    let raw: u128 = rng.gen();
    if width >= 128 {
        raw
    } else {
        raw & ((1u128 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{sequence_trojan, timer_trojan};
    use htd_rtl::Design;

    #[test]
    fn dormant_payload_logic_is_flagged() {
        let design = sequence_trojan(4);
        let report = unused_circuit_identification(
            &design,
            &UciOptions {
                cycles: 2_000,
                seed: 7,
            },
        )
        .unwrap();
        // The payload XOR never fired, so `data` tracked `in` exactly.
        assert!(report.flags_target("data"));
        assert!(report.pairs_examined >= 2);
    }

    #[test]
    fn exercised_logic_is_not_flagged() {
        // An adder is exercised by random stimuli: the sum rarely equals
        // either operand, so no pair survives the run.
        let mut d = Design::new("adder");
        let a = d.add_input("a", 8).unwrap();
        let b = d.add_input("b", 8).unwrap();
        let acc = d.add_register("acc", 8, 0).unwrap();
        let sum = d.add(d.signal(a), d.signal(b)).unwrap();
        d.set_register_next(acc, sum).unwrap();
        d.add_output("out", d.signal(acc)).unwrap();
        let design = d.validated().unwrap();
        let report = unused_circuit_identification(
            &design,
            &UciOptions {
                cycles: 1_000,
                seed: 8,
            },
        )
        .unwrap();
        assert!(!report.flags_target("acc"));
    }

    #[test]
    fn benign_pass_through_logic_is_a_known_false_positive() {
        // A clean pipeline stage latches its input unchanged, so the
        // (stage0, in) pair stays equal for the whole run and is flagged
        // although it is perfectly benign — the imprecision that motivates
        // formal approaches.
        let design = crate::designs::clean_pipeline(2);
        let report = unused_circuit_identification(
            &design,
            &UciOptions {
                cycles: 500,
                seed: 9,
            },
        )
        .unwrap();
        assert!(report.flags_target("stage0"));
    }

    #[test]
    fn deeply_triggered_payloads_are_still_flagged_while_dormant() {
        // Unlike bounded model checking, UCI does not care how long the
        // trigger sequence is — as long as the payload stays dormant during
        // the tests its pass-through behaviour is flagged.
        let design = timer_trojan(1_000_000);
        let report = unused_circuit_identification(
            &design,
            &UciOptions {
                cycles: 500,
                seed: 9,
            },
        )
        .unwrap();
        assert!(report.flags_target("data"));
    }

    #[test]
    fn reports_are_deterministic_for_a_fixed_seed() {
        let design = sequence_trojan(3);
        let a = unused_circuit_identification(
            &design,
            &UciOptions {
                cycles: 300,
                seed: 42,
            },
        )
        .unwrap();
        let b = unused_circuit_identification(
            &design,
            &UciOptions {
                cycles: 300,
                seed: 42,
            },
        )
        .unwrap();
        assert_eq!(a.flagged, b.flagged);
    }
}
