//! Small parameterised benchmark designs shared by the baseline tests and
//! the comparison benchmarks.
//!
//! These are deliberately tiny (a handful of registers) so that sweeps over
//! the trigger-sequence length stay cheap; the structural situations they
//! reproduce — input-sequence triggers, input-value counters, free-running
//! timers, clean pipelines — are the ones that differentiate the baselines
//! from the IPC flow.

use htd_rtl::{Design, ValidatedDesign};

/// A clean pass-through pipeline of `depth` registers with an 8-bit datapath.
///
/// # Panics
///
/// Panics if `depth` is 0.
#[must_use]
pub fn clean_pipeline(depth: usize) -> ValidatedDesign {
    assert!(depth > 0, "a pipeline needs at least one stage");
    let mut d = Design::new("clean_pipeline");
    let input = d.add_input("in", 8).expect("fresh name");
    let mut prev = d.signal(input);
    for i in 0..depth {
        let stage = d
            .add_register(format!("stage{i}"), 8, 0)
            .expect("fresh name");
        d.set_register_next(stage, prev).expect("same width");
        prev = d.signal(stage);
    }
    d.add_output("out", prev).expect("fresh name");
    d.validated().expect("well-formed")
}

/// An 8-bit pass-through stage infected with a Trojan whose trigger is the
/// input sequence `1, 2, …, sequence_len` observed in order; once armed it
/// stays armed and flips the LSB written into the data register
/// (an AES-T1400-style input-sequence trigger with a ciphertext-corruption
/// payload).
///
/// # Panics
///
/// Panics if `sequence_len` is 0 or larger than 200.
#[must_use]
pub fn sequence_trojan(sequence_len: u64) -> ValidatedDesign {
    assert!(
        (1..=200).contains(&sequence_len),
        "sequence length must be in 1..=200"
    );
    let mut d = Design::new("sequence_trojan");
    let input = d.add_input("in", 8).expect("fresh name");
    let data = d.add_register("data", 8, 0).expect("fresh name");
    let progress = d.add_register("trojan_state", 8, 0).expect("fresh name");

    // armed <=> progress == sequence_len (and stays there).
    let armed = d
        .eq_const(d.signal(progress), u128::from(sequence_len))
        .expect("narrow constant");

    // next progress: armed -> hold; input == progress + 1 -> progress + 1;
    // otherwise -> 0 (the sequence must be contiguous).
    let one = d.constant(1, 8).expect("fits");
    let expected = d.add(d.signal(progress), one).expect("same width");
    let advance = d.cmp_eq(d.signal(input), expected).expect("same width");
    let zero = d.constant(0, 8).expect("fits");
    let advanced = d.mux(advance, expected, zero).expect("same width");
    let next_progress = d
        .mux(armed, d.signal(progress), advanced)
        .expect("same width");
    d.set_register_next(progress, next_progress)
        .expect("same width");

    // payload: flip the LSB of the latched data once armed.
    let flip = d.zero_ext(armed, 8).expect("widening");
    let payload = d.xor(d.signal(input), flip).expect("same width");
    d.set_register_next(data, payload).expect("same width");
    d.add_output("out", d.signal(data)).expect("fresh name");
    d.validated().expect("well-formed")
}

/// An 8-bit pass-through stage infected with a Trojan armed by a free-running
/// timer that saturates after `threshold` cycles from reset — independent of
/// the inputs (the AES-T2500 / AES-T1900 trigger class).  Once armed it flips
/// the LSB written into the data register.
#[must_use]
pub fn timer_trojan(threshold: u64) -> ValidatedDesign {
    let mut d = Design::new("timer_trojan");
    let input = d.add_input("in", 8).expect("fresh name");
    let data = d.add_register("data", 8, 0).expect("fresh name");
    let timer = d.add_register("trojan_timer", 32, 0).expect("fresh name");
    let limit = d.constant(u128::from(threshold), 32).expect("fits");
    let at_limit = d.cmp_eq(d.signal(timer), limit).expect("same width");
    let one = d.constant(1, 32).expect("fits");
    let tick = d.add(d.signal(timer), one).expect("same width");
    let next_timer = d.mux(at_limit, d.signal(timer), tick).expect("same width");
    d.set_register_next(timer, next_timer).expect("same width");
    let flip = d.zero_ext(at_limit, 8).expect("widening");
    let payload = d.xor(d.signal(input), flip).expect("same width");
    d.set_register_next(data, payload).expect("same width");
    d.add_output("out", d.signal(data)).expect("fresh name");
    d.validated().expect("well-formed")
}

/// An 8-bit pass-through stage infected with a Trojan that counts occurrences
/// of the magic input value `0xA5` and arms after `threshold` of them (the
/// "# encryptions" / "# values" trigger class of Table I).  Once armed it
/// flips the LSB written into the data register.
///
/// # Panics
///
/// Panics if `threshold` is 0.
#[must_use]
pub fn value_counter_trojan(threshold: u64) -> ValidatedDesign {
    assert!(threshold > 0, "the counter threshold must be positive");
    let mut d = Design::new("value_counter_trojan");
    let input = d.add_input("in", 8).expect("fresh name");
    let data = d.add_register("data", 8, 0).expect("fresh name");
    let counter = d.add_register("trojan_counter", 32, 0).expect("fresh name");
    let limit = d.constant(u128::from(threshold), 32).expect("fits");
    let armed = d.cmp_eq(d.signal(counter), limit).expect("same width");
    let magic = d.eq_const(d.signal(input), 0xA5).expect("fits");
    let one = d.constant(1, 32).expect("fits");
    let bumped = d.add(d.signal(counter), one).expect("same width");
    let counted = d.mux(magic, bumped, d.signal(counter)).expect("same width");
    let next_counter = d
        .mux(armed, d.signal(counter), counted)
        .expect("same width");
    d.set_register_next(counter, next_counter)
        .expect("same width");
    let flip = d.zero_ext(armed, 8).expect("widening");
    let payload = d.xor(d.signal(input), flip).expect("same width");
    d.set_register_next(data, payload).expect("same width");
    d.add_output("out", d.signal(data)).expect("fresh name");
    d.validated().expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_rtl::sim::Simulator;

    #[test]
    fn clean_pipeline_passes_data_through() {
        let design = clean_pipeline(3);
        let mut sim = Simulator::new(&design);
        for v in [7u128, 9, 11, 13] {
            sim.set_input_by_name("in", v).unwrap();
            sim.step().unwrap();
        }
        assert_eq!(sim.peek_by_name("out").unwrap(), 9);
    }

    #[test]
    fn sequence_trojan_arms_exactly_after_the_full_sequence() {
        let design = sequence_trojan(3);
        let mut sim = Simulator::new(&design);
        // A partial sequence (1, 2, 7) resets the progress.
        for v in [1u128, 2, 7] {
            sim.set_input_by_name("in", v).unwrap();
            sim.step().unwrap();
        }
        assert_eq!(sim.peek_by_name("trojan_state").unwrap(), 0);
        // The full sequence arms it; afterwards the payload corrupts the LSB.
        for v in [1u128, 2, 3] {
            sim.set_input_by_name("in", v).unwrap();
            sim.step().unwrap();
        }
        assert_eq!(sim.peek_by_name("trojan_state").unwrap(), 3);
        sim.set_input_by_name("in", 0x40).unwrap();
        sim.step().unwrap();
        assert_eq!(
            sim.peek_by_name("data").unwrap(),
            0x41,
            "LSB flipped once armed"
        );
    }

    #[test]
    fn timer_trojan_arms_without_any_input_activity() {
        let design = timer_trojan(5);
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("in", 0x10).unwrap();
        for _ in 0..5 {
            sim.step().unwrap();
        }
        sim.step().unwrap();
        assert_eq!(sim.peek_by_name("data").unwrap(), 0x11);
    }

    #[test]
    fn value_counter_trojan_counts_only_the_magic_value() {
        let design = value_counter_trojan(2);
        let mut sim = Simulator::new(&design);
        for v in [0xA5u128, 0x00, 0xA5, 0x00] {
            sim.set_input_by_name("in", v).unwrap();
            sim.step().unwrap();
        }
        assert_eq!(sim.peek_by_name("trojan_counter").unwrap(), 2);
        sim.set_input_by_name("in", 0x20).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek_by_name("data").unwrap(), 0x21);
    }
}
