//! 2-safety bounded model checking from the reset state.
//!
//! This is the baseline the paper's Sec. II criticises: formal approaches
//! built on Bounded Model Checking "are unable to detect trojans with very
//! long trigger sequences", because the trigger has to fire *within the
//! unrolled bound*.
//!
//! The encoding keeps everything else identical to the IPC flow — the same
//! miter idea, the same bit-blaster, the same SAT solver — and changes only
//! what the paper changes: instead of a **symbolic starting state**, both
//! instances start from the concrete reset state and the solver must find
//! two input *prefixes* (one per instance, each exactly `bound` cycles long)
//! after which the externally visible behaviour diverges under shared
//! inputs.
//!
//! Two structural consequences follow, and both are exercised by the tests:
//!
//! * an input-dependent trigger (plaintext sequences, value counters) is
//!   only found once the unrolled prefix is long enough to arm it — the
//!   bound, the CNF size and the runtime all grow with the trigger length,
//!   whereas the IPC properties are independent of it;
//! * an input-*independent* trigger (a free-running timer) advances
//!   identically in both instances, so this golden-free bounded search can
//!   never observe a divergence at any bound — the situation the paper's
//!   coverage check (Sec. IV-D, case 2) exists for.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use htd_ipc::aig::{Aig, AigLit};
use htd_ipc::bitblast::{const_bits, equal, BitVec, BlastContext};
use htd_ipc::cnf::{encode, sat_lit};
use htd_rtl::structural::structural_depth;
use htd_rtl::{SignalId, SignalKind, ValidatedDesign};
use htd_sat::SolveResult;

/// Options for the bounded search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BmcOptions {
    /// Number of unconstrained prefix cycles per instance (the trigger
    /// budget the bounded proof can explore).
    pub bound: usize,
    /// Number of shared-input cycles executed after the prefix before
    /// outputs are compared, to flush prefix data out of the pipeline.
    /// `None` uses the design's structural depth.
    pub settle: Option<usize>,
    /// Number of shared-input cycles during which the primary outputs are
    /// compared after settling.
    pub window: usize,
}

impl Default for BmcOptions {
    fn default() -> Self {
        BmcOptions {
            bound: 8,
            settle: None,
            window: 2,
        }
    }
}

/// Outcome of the bounded search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BmcOutcome {
    /// A pair of input prefixes drives the two instances' outputs apart.
    Diverges {
        /// Names of the diverging primary outputs.
        signals: Vec<String>,
        /// Comparison frame (0-based within the window) at which the
        /// divergence appears.
        frame: usize,
    },
    /// No output divergence exists within the bound: any Trojan whose
    /// trigger sequence does not fit in the unrolled prefix remains
    /// undetected.
    BoundExhausted,
}

/// Result of [`bounded_trojan_search`]: outcome plus work metrics.
#[derive(Clone, Debug)]
pub struct BmcReport {
    /// The outcome.
    pub outcome: BmcOutcome,
    /// The options used.
    pub options: BmcOptions,
    /// Total unrolled frames (per instance).
    pub unrolled_frames: usize,
    /// CNF variables handed to the solver.
    pub cnf_vars: usize,
    /// CNF clauses handed to the solver.
    pub cnf_clauses: usize,
    /// Wall-clock time for encoding plus solving.
    pub duration: Duration,
}

impl BmcReport {
    /// `true` if the bounded search found an output divergence (i.e.
    /// detected the Trojan).
    #[must_use]
    pub fn detected(&self) -> bool {
        matches!(self.outcome, BmcOutcome::Diverges { .. })
    }
}

/// Runs the bounded 2-safety search.
///
/// Both instances start from the design's reset state.  During the first
/// `options.bound` cycles each instance receives its own, unconstrained
/// inputs (this is where the solver can enact a trigger sequence in one
/// instance but not the other).  Both instances then receive the same inputs
/// for the settle period and the comparison window; a difference in any
/// primary output during the window is a detection.
///
/// # Example
///
/// See the [crate-level example](crate).
#[must_use]
pub fn bounded_trojan_search(design: &ValidatedDesign, options: &BmcOptions) -> BmcReport {
    // htd-lint: allow(determinism): runtime only fills BmcReport.duration for the comparison table; it never reaches a detection report
    let start = Instant::now();
    let d = design.design();
    let settle = options.settle.unwrap_or_else(|| structural_depth(design));
    let unrolled_frames = options.bound + settle + options.window;
    let mut aig = Aig::new();

    // Reset state, identical in both instances.
    let mut state: [HashMap<SignalId, BitVec>; 2] = [HashMap::new(), HashMap::new()];
    for r in d.registers() {
        let width = d.signal_width(r);
        let init = reset_value(design, r);
        for frame in &mut state {
            frame.insert(r, const_bits(init, width));
        }
    }

    // Prefix: per-instance free inputs.
    for _ in 0..options.bound {
        for frame in &mut state {
            let inputs = fresh_inputs(&mut aig, design);
            *frame = step(design, &mut aig, frame, &inputs);
        }
    }

    // Settle: shared inputs, no comparison yet.
    for _ in 0..settle {
        let shared = fresh_inputs(&mut aig, design);
        for frame in &mut state {
            *frame = step(design, &mut aig, frame, &shared);
        }
    }

    // Window: shared inputs, compare the primary outputs each frame.
    let outputs = d.outputs();
    let mut diff_lits: Vec<AigLit> = Vec::new();
    let mut observed: Vec<(usize, SignalId, BitVec, BitVec)> = Vec::new();
    for frame in 0..options.window {
        let shared = fresh_inputs(&mut aig, design);
        for &out in &outputs {
            let b0 = comb_value(design, &mut aig, &state[0], &shared, out);
            let b1 = comb_value(design, &mut aig, &state[1], &shared, out);
            diff_lits.push(equal(&mut aig, &b0, &b1).invert());
            observed.push((frame, out, b0, b1));
        }
        state[0] = step(design, &mut aig, &state[0], &shared);
        state[1] = step(design, &mut aig, &state[1], &shared);
    }

    let miter = aig.or_all(&diff_lits);
    if miter == AigLit::FALSE {
        return BmcReport {
            outcome: BmcOutcome::BoundExhausted,
            options: *options,
            unrolled_frames,
            cnf_vars: 0,
            cnf_clauses: 0,
            duration: start.elapsed(),
        };
    }
    let (mut solver, node_vars) = encode(&aig, &[miter]);
    if miter != AigLit::TRUE {
        solver.add_clause([sat_lit(&node_vars, miter)]);
    }
    let result = solver.solve();
    let outcome = match result {
        SolveResult::Unsat => BmcOutcome::BoundExhausted,
        SolveResult::Interrupted => unreachable!("no interrupt check installed"),
        SolveResult::Sat => {
            // Evaluate the AIG under the model to recover the diverging
            // outputs of the earliest diverging frame.
            let mut env: HashMap<u32, bool> = HashMap::new();
            for (&node, &var) in &node_vars {
                if aig.is_input(AigLit::positive(node)) {
                    env.insert(node, solver.value(var).unwrap_or(false));
                }
            }
            let values = aig.eval_all(&env);
            let word = |bits: &BitVec| -> u128 {
                bits.iter().enumerate().fold(0u128, |acc, (i, &b)| {
                    acc | (u128::from(aig.lit_value(&values, b)) << i)
                })
            };
            let mut signals = Vec::new();
            let mut diverging_frame = 0;
            'outer: for frame in 0..options.window {
                for (f, _, b0, b1) in &observed {
                    if *f == frame && word(b0) != word(b1) {
                        diverging_frame = frame;
                        for (g, sig, c0, c1) in &observed {
                            if *g == frame && word(c0) != word(c1) {
                                signals.push(d.signal_name(*sig).to_string());
                            }
                        }
                        break 'outer;
                    }
                }
            }
            BmcOutcome::Diverges {
                signals,
                frame: diverging_frame,
            }
        }
    };
    BmcReport {
        outcome,
        options: *options,
        unrolled_frames,
        cnf_vars: solver.num_vars(),
        cnf_clauses: solver.num_clauses(),
        duration: start.elapsed(),
    }
}

/// The reset value of a register.
fn reset_value(design: &ValidatedDesign, reg: SignalId) -> u128 {
    match design.design().signal_info(reg).kind() {
        SignalKind::Register { reset } => reset,
        _ => 0,
    }
}

fn fresh_inputs(aig: &mut Aig, design: &ValidatedDesign) -> HashMap<SignalId, BitVec> {
    let d = design.design();
    d.inputs()
        .into_iter()
        .map(|i| {
            let width = d.signal_width(i);
            (i, (0..width).map(|_| aig.new_input()).collect())
        })
        .collect()
}

/// One transition: lowers every register's next-state function under the
/// given state/input binding.
fn step(
    design: &ValidatedDesign,
    aig: &mut Aig,
    state: &HashMap<SignalId, BitVec>,
    inputs: &HashMap<SignalId, BitVec>,
) -> HashMap<SignalId, BitVec> {
    let d = design.design();
    let mut ctx = BlastContext::new();
    for (s, bits) in state {
        ctx.bind(*s, bits.clone());
    }
    for (s, bits) in inputs {
        ctx.bind(*s, bits.clone());
    }
    d.registers()
        .into_iter()
        .map(|r| {
            let driver = d.signal_info(r).driver().expect("validated design");
            (r, ctx.expr(d, aig, driver))
        })
        .collect()
}

/// The value of a combinational (output or wire) signal under the given
/// register/input binding.
fn comb_value(
    design: &ValidatedDesign,
    aig: &mut Aig,
    state: &HashMap<SignalId, BitVec>,
    inputs: &HashMap<SignalId, BitVec>,
    sig: SignalId,
) -> BitVec {
    let d = design.design();
    let mut ctx = BlastContext::new();
    for (s, bits) in state {
        ctx.bind(*s, bits.clone());
    }
    for (s, bits) in inputs {
        ctx.bind(*s, bits.clone());
    }
    ctx.signal(d, aig, sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{clean_pipeline, sequence_trojan, timer_trojan};

    #[test]
    fn clean_designs_never_diverge() {
        let design = clean_pipeline(2);
        let report = bounded_trojan_search(
            &design,
            &BmcOptions {
                bound: 5,
                ..BmcOptions::default()
            },
        );
        assert!(!report.detected());
        assert_eq!(report.outcome, BmcOutcome::BoundExhausted);
    }

    #[test]
    fn sequence_trojan_within_the_bound_is_found() {
        let design = sequence_trojan(3);
        let report = bounded_trojan_search(
            &design,
            &BmcOptions {
                bound: 4,
                ..BmcOptions::default()
            },
        );
        match report.outcome {
            BmcOutcome::Diverges { ref signals, .. } => {
                assert!(signals.iter().any(|s| s == "out"), "{signals:?}");
            }
            BmcOutcome::BoundExhausted => panic!("bound 4 covers a 3-value trigger sequence"),
        }
    }

    #[test]
    fn sequence_trojan_beyond_the_bound_is_missed() {
        // The central limitation the paper exploits: the same design, the
        // same solver, but the trigger sequence does not fit in the bound
        // (plus the small shared window).
        let design = sequence_trojan(12);
        let report = bounded_trojan_search(
            &design,
            &BmcOptions {
                bound: 2,
                window: 1,
                ..BmcOptions::default()
            },
        );
        assert!(!report.detected());
    }

    #[test]
    fn growing_the_bound_recovers_detection_at_higher_cost() {
        let design = sequence_trojan(6);
        let missed = bounded_trojan_search(
            &design,
            &BmcOptions {
                bound: 1,
                window: 1,
                ..BmcOptions::default()
            },
        );
        let found = bounded_trojan_search(
            &design,
            &BmcOptions {
                bound: 8,
                window: 1,
                ..BmcOptions::default()
            },
        );
        assert!(!missed.detected());
        assert!(found.detected());
        assert!(
            found.cnf_vars > missed.cnf_vars,
            "deeper unrolling costs more CNF"
        );
        assert!(found.unrolled_frames > missed.unrolled_frames);
    }

    #[test]
    fn input_independent_timer_trojan_is_invisible_at_any_bound() {
        // Both instances' timers advance in lock step from reset, so the
        // golden-free bounded miter can never diverge — this Trojan class
        // needs either the symbolic starting state (IPC) or the coverage
        // check of the paper's flow.
        let design = timer_trojan(4);
        for bound in [0, 2, 8, 16] {
            let report = bounded_trojan_search(
                &design,
                &BmcOptions {
                    bound,
                    ..BmcOptions::default()
                },
            );
            assert!(!report.detected(), "unexpected detection at bound {bound}");
        }
    }

    #[test]
    fn window_of_zero_observes_nothing() {
        let design = sequence_trojan(2);
        let report = bounded_trojan_search(
            &design,
            &BmcOptions {
                bound: 4,
                settle: Some(0),
                window: 0,
            },
        );
        assert!(!report.detected());
    }
}
