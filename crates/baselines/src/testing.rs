//! Random functional testing against a golden model.
//!
//! This is the conventional pre-silicon baseline the paper's introduction
//! argues is insufficient: feed (many) random stimuli to the design under
//! verification and to a known-good reference, and compare the outputs.
//! Two weaknesses are reproduced here deliberately:
//!
//! * a **golden model is required** — precisely what the paper's method does
//!   away with; and
//! * the probability of randomly producing a stealthy trigger sequence
//!   collapses exponentially with the sequence length, so Trojans with long
//!   triggers survive practically unlimited amounts of random testing
//!   ([`RandomTestOutcome::NoDivergence`] on the infected design is a *false
//!   negative*, not a proof).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use htd_rtl::sim::Simulator;
use htd_rtl::{DesignError, SignalId, ValidatedDesign};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the random equivalence test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomTestOptions {
    /// Number of simulated clock cycles.
    pub cycles: u64,
    /// Seed for the stimulus generator, so runs are reproducible.
    pub seed: u64,
}

impl Default for RandomTestOptions {
    fn default() -> Self {
        RandomTestOptions {
            cycles: 10_000,
            seed: 0xD1CE,
        }
    }
}

/// Outcome of a random equivalence test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RandomTestOutcome {
    /// The design under verification diverged from the golden model.
    Diverges {
        /// Cycle (0-based) at which the first mismatch was observed.
        cycle: u64,
        /// Name of the first mismatching output.
        output: String,
        /// Value produced by the design under verification.
        dut_value: u128,
        /// Value produced by the golden model.
        golden_value: u128,
    },
    /// No mismatch was observed within the budget.  For an infected design
    /// this is a false negative: the trigger was simply never produced.
    NoDivergence,
}

/// Result of [`random_equivalence_test`].
#[derive(Clone, Debug)]
pub struct RandomTestReport {
    /// The outcome.
    pub outcome: RandomTestOutcome,
    /// Cycles actually simulated (equals the budget unless a divergence
    /// stopped the run early).
    pub cycles_run: u64,
    /// Wall-clock time of the simulation.
    pub duration: Duration,
}

impl RandomTestReport {
    /// `true` if a divergence from the golden model was observed.
    #[must_use]
    pub fn detected(&self) -> bool {
        matches!(self.outcome, RandomTestOutcome::Diverges { .. })
    }
}

/// Simulates `dut` and `golden` in lock step under identical random stimuli
/// and compares every primary output each cycle.
///
/// The two designs must have the same input and output port names (the usual
/// situation: the golden model is the IP as specified, the DUT is the
/// possibly-infected deliverable).
///
/// # Errors
///
/// Returns an error if the port lists differ or a stimulus does not fit an
/// input.
///
/// # Example
///
/// ```
/// use htd_baselines::designs::{clean_pipeline, sequence_trojan};
/// use htd_baselines::testing::{random_equivalence_test, RandomTestOptions};
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// // A Trojan with a 6-value trigger sequence survives ten thousand cycles
/// // of random testing: the trigger is never produced by chance.
/// let golden = clean_pipeline(1);
/// let infected = sequence_trojan(6);
/// let report = random_equivalence_test(&infected, &golden, &RandomTestOptions::default())?;
/// assert!(!report.detected());
/// # Ok(())
/// # }
/// ```
pub fn random_equivalence_test(
    dut: &ValidatedDesign,
    golden: &ValidatedDesign,
    options: &RandomTestOptions,
) -> Result<RandomTestReport, DesignError> {
    // htd-lint: allow(determinism): runtime only fills RandomTestReport.duration for the comparison table; it never reaches a detection report
    let start = Instant::now();
    let dut_d = dut.design();
    let golden_d = golden.design();

    let dut_inputs = named_signals(dut, &dut_d.inputs());
    let golden_inputs = named_signals(golden, &golden_d.inputs());
    let dut_outputs = named_signals(dut, &dut_d.outputs());
    let golden_outputs = named_signals(golden, &golden_d.outputs());
    for name in dut_inputs.keys() {
        if !golden_inputs.contains_key(name) {
            return Err(DesignError::UnknownSignal { name: name.clone() });
        }
    }
    for name in dut_outputs.keys() {
        if !golden_outputs.contains_key(name) {
            return Err(DesignError::UnknownSignal { name: name.clone() });
        }
    }

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut dut_sim = Simulator::new(dut);
    let mut golden_sim = Simulator::new(golden);

    for cycle in 0..options.cycles {
        for (name, &dut_id) in &dut_inputs {
            let width = dut_d.signal_width(dut_id);
            let value = random_word(&mut rng, width);
            dut_sim.set_input(dut_id, value)?;
            golden_sim.set_input(golden_inputs[name], value)?;
        }
        dut_sim.step()?;
        golden_sim.step()?;
        for (name, &dut_id) in &dut_outputs {
            let dut_value = dut_sim.peek(dut_id);
            let golden_value = golden_sim.peek(golden_outputs[name]);
            if dut_value != golden_value {
                return Ok(RandomTestReport {
                    outcome: RandomTestOutcome::Diverges {
                        cycle,
                        output: name.clone(),
                        dut_value,
                        golden_value,
                    },
                    cycles_run: cycle + 1,
                    duration: start.elapsed(),
                });
            }
        }
    }
    Ok(RandomTestReport {
        outcome: RandomTestOutcome::NoDivergence,
        cycles_run: options.cycles,
        duration: start.elapsed(),
    })
}

fn named_signals(design: &ValidatedDesign, ids: &[SignalId]) -> BTreeMap<String, SignalId> {
    ids.iter()
        .map(|&id| (design.design().signal_name(id).to_string(), id))
        .collect()
}

fn random_word(rng: &mut StdRng, width: u32) -> u128 {
    let raw: u128 = rng.gen();
    if width >= 128 {
        raw
    } else {
        raw & ((1u128 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{clean_pipeline, sequence_trojan, timer_trojan, value_counter_trojan};

    #[test]
    fn identical_designs_never_diverge() {
        let golden = clean_pipeline(2);
        let dut = clean_pipeline(2);
        let report = random_equivalence_test(
            &dut,
            &golden,
            &RandomTestOptions {
                cycles: 500,
                seed: 1,
            },
        )
        .unwrap();
        assert!(!report.detected());
        assert_eq!(report.cycles_run, 500);
    }

    #[test]
    fn short_timer_trojan_is_caught_because_time_alone_triggers_it() {
        // A timer that arms after 50 cycles fires during any reasonably long
        // test run — random testing does catch *cheap* triggers.
        let golden = clean_pipeline(1);
        let dut = timer_trojan(50);
        let report = random_equivalence_test(
            &dut,
            &golden,
            &RandomTestOptions {
                cycles: 500,
                seed: 2,
            },
        )
        .unwrap();
        assert!(report.detected());
        if let RandomTestOutcome::Diverges { cycle, .. } = report.outcome {
            assert!(cycle >= 50);
        }
    }

    #[test]
    fn sequence_trigger_survives_random_testing() {
        // Even a 4-value sequence has probability (1/256)^4 per window of
        // being produced by uniform random stimuli; 20 000 cycles of testing
        // pass without ever arming the Trojan.
        let golden = clean_pipeline(1);
        let dut = sequence_trojan(4);
        let report = random_equivalence_test(
            &dut,
            &golden,
            &RandomTestOptions {
                cycles: 20_000,
                seed: 3,
            },
        )
        .unwrap();
        assert!(
            !report.detected(),
            "false positive-free run expected: {:?}",
            report.outcome
        );
    }

    #[test]
    fn value_counter_with_large_threshold_survives_random_testing() {
        // Each cycle hits the magic value with probability 1/256, so a
        // threshold of 2000 occurrences needs ~512k cycles on average —
        // far beyond this budget.
        let golden = clean_pipeline(1);
        let dut = value_counter_trojan(2_000);
        let report = random_equivalence_test(
            &dut,
            &golden,
            &RandomTestOptions {
                cycles: 30_000,
                seed: 4,
            },
        )
        .unwrap();
        assert!(!report.detected());
    }

    #[test]
    fn mismatched_port_names_are_rejected() {
        let golden = clean_pipeline(1);
        let mut d = htd_rtl::Design::new("other_ports");
        let input = d.add_input("different_input", 8).unwrap();
        let r = d.add_register("r", 8, 0).unwrap();
        d.set_register_next(r, d.signal(input)).unwrap();
        d.add_output("out", d.signal(r)).unwrap();
        let dut = d.validated().unwrap();
        let err =
            random_equivalence_test(&dut, &golden, &RandomTestOptions::default()).unwrap_err();
        assert!(matches!(err, DesignError::UnknownSignal { .. }));
    }
}
