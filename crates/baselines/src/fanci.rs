//! FANCI-style control-value analysis.
//!
//! Waksman et al. (CCS 2013) flag "weakly-affecting" wires: signals with an
//! input whose value almost never influences them.  Stealthy Trojan triggers
//! are exactly such logic — a 128-bit compare that is true for one plaintext
//! out of 2¹²⁸ contributes essentially nothing to the truth table of the
//! logic it gates.
//!
//! This word-level adaptation bit-blasts the combinational cone of every
//! state and output signal, then estimates the *control value* of each
//! support bit by sampling: the fraction of random cone-input assignments
//! for which flipping that bit changes the signal.  A signal with a support
//! bit whose control value falls below the threshold is reported as
//! suspicious.
//!
//! Like the original, the analysis is golden-free and catches many stealthy
//! triggers, but it is statistical: thresholds trade false positives against
//! false negatives, and a careful adversary can spread the trigger so that
//! every individual wire stays above the threshold.  The IPC flow needs no
//! such threshold.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use htd_ipc::aig::{Aig, AigLit};
use htd_ipc::bitblast::{BitVec, BlastContext};
use htd_rtl::structural::combinational_support;
use htd_rtl::{SignalId, ValidatedDesign};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the control-value analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FanciOptions {
    /// Random cone-input assignments sampled per signal.
    pub samples: u32,
    /// Signals with a support bit whose estimated control value is strictly
    /// below this threshold are flagged.
    pub threshold: f64,
    /// Seed for the sampling, so runs are reproducible.
    pub seed: u64,
}

impl Default for FanciOptions {
    fn default() -> Self {
        FanciOptions {
            samples: 64,
            threshold: 0.01,
            seed: 0xFA_C1,
        }
    }
}

/// One suspicious signal: some bit of its combinational support almost never
/// influences it.
#[derive(Clone, Debug, PartialEq)]
pub struct SuspiciousSignal {
    /// The flagged state/output signal.
    pub signal: String,
    /// The support signal owning the weakly-affecting bit.
    pub weak_source: String,
    /// Bit index within `weak_source`.
    pub weak_bit: u32,
    /// The estimated control value of that bit (fraction of samples in which
    /// flipping it changed the flagged signal).
    pub control_value: f64,
}

/// Result of [`control_value_analysis`].
#[derive(Clone, Debug)]
pub struct FanciReport {
    /// Flagged signals with their weakest support bit.
    pub suspicious: Vec<SuspiciousSignal>,
    /// Number of state/output signals analysed.
    pub signals_analysed: usize,
    /// Wall-clock time of the analysis.
    pub duration: Duration,
}

impl FanciReport {
    /// `true` if the given signal was flagged.
    #[must_use]
    pub fn flags_signal(&self, name: &str) -> bool {
        self.suspicious.iter().any(|s| s.signal == name)
    }
}

/// Runs the control-value analysis on every state and output signal.
///
/// # Example
///
/// ```
/// use htd_baselines::designs::{clean_pipeline, sequence_trojan};
/// use htd_baselines::fanci::{control_value_analysis, FanciOptions};
///
/// // The trigger-gated payload has weakly-affecting inputs; a plain
/// // pass-through pipeline does not.
/// let infected = control_value_analysis(&sequence_trojan(4), &FanciOptions::default());
/// assert!(infected.flags_signal("data"));
/// let clean = control_value_analysis(&clean_pipeline(2), &FanciOptions::default());
/// assert!(clean.suspicious.is_empty());
/// ```
#[must_use]
pub fn control_value_analysis(design: &ValidatedDesign, options: &FanciOptions) -> FanciReport {
    // htd-lint: allow(determinism): runtime only fills FanciReport.duration for the comparison table; it never reaches a detection report
    let start = Instant::now();
    let d = design.design();
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut suspicious = Vec::new();
    let targets = d.state_and_output_signals();

    for &target in &targets {
        let driver = d.signal_info(target).driver().expect("validated design");
        let support: Vec<SignalId> = combinational_support(design, driver).into_iter().collect();
        if support.is_empty() {
            continue;
        }

        // Bit-blast the cone once with a fresh free variable per support bit.
        let mut aig = Aig::new();
        let mut ctx = BlastContext::new();
        let mut support_bits: Vec<(SignalId, u32, AigLit)> = Vec::new();
        for &s in &support {
            let width = d.signal_width(s);
            let bits: BitVec = (0..width).map(|_| aig.new_input()).collect();
            for (i, &bit) in bits.iter().enumerate() {
                support_bits.push((s, i as u32, bit));
            }
            ctx.bind(s, bits);
        }
        let value_bits = ctx.expr(d, &mut aig, driver);

        // Estimate the control value of every support bit.
        let mut weakest: Option<SuspiciousSignal> = None;
        for &(source, bit_index, bit_lit) in &support_bits {
            let mut changed = 0u32;
            for _ in 0..options.samples {
                let mut env: HashMap<u32, bool> = HashMap::new();
                for &(_, _, lit) in &support_bits {
                    env.insert(lit.node(), rng.gen());
                }
                let baseline = evaluate(&aig, &env, &value_bits);
                let current = env[&bit_lit.node()];
                env.insert(bit_lit.node(), !current);
                let flipped = evaluate(&aig, &env, &value_bits);
                if baseline != flipped {
                    changed += 1;
                }
            }
            let control_value = f64::from(changed) / f64::from(options.samples.max(1));
            if control_value < options.threshold {
                let candidate = SuspiciousSignal {
                    signal: d.signal_name(target).to_string(),
                    weak_source: d.signal_name(source).to_string(),
                    weak_bit: bit_index,
                    control_value,
                };
                let replace = match &weakest {
                    None => true,
                    Some(existing) => control_value < existing.control_value,
                };
                if replace {
                    weakest = Some(candidate);
                }
            }
        }
        if let Some(finding) = weakest {
            suspicious.push(finding);
        }
    }

    FanciReport {
        suspicious,
        signals_analysed: targets.len(),
        duration: start.elapsed(),
    }
}

fn evaluate(aig: &Aig, env: &HashMap<u32, bool>, bits: &[AigLit]) -> u128 {
    let values = aig.eval_all(env);
    bits.iter().enumerate().fold(0u128, |acc, (i, &b)| {
        acc | (u128::from(aig.lit_value(&values, b)) << i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{clean_pipeline, sequence_trojan, value_counter_trojan};

    #[test]
    fn trigger_gated_payload_is_flagged() {
        let report = control_value_analysis(&sequence_trojan(6), &FanciOptions::default());
        assert!(report.flags_signal("data"), "{:?}", report.suspicious);
        let finding = report
            .suspicious
            .iter()
            .find(|s| s.signal == "data")
            .expect("flagged above");
        assert!(finding.weak_source.contains("trojan"));
        assert!(finding.control_value < 0.01);
    }

    #[test]
    fn clean_pipelines_have_no_weak_inputs() {
        let report = control_value_analysis(&clean_pipeline(3), &FanciOptions::default());
        assert!(report.suspicious.is_empty(), "{:?}", report.suspicious);
        assert_eq!(report.signals_analysed, 4);
    }

    #[test]
    fn counter_gated_payload_is_flagged_too() {
        let report = control_value_analysis(&value_counter_trojan(1_000), &FanciOptions::default());
        assert!(report.flags_signal("data"));
    }

    #[test]
    fn a_zero_threshold_flags_nothing() {
        // Control values are compared strictly against the threshold, so a
        // zero threshold disables the analysis — the knob that trades false
        // positives against false negatives has no analogue in the IPC flow.
        let options = FanciOptions {
            threshold: 0.0,
            ..FanciOptions::default()
        };
        let report = control_value_analysis(&sequence_trojan(6), &options);
        assert!(report.suspicious.is_empty());
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let a = control_value_analysis(&sequence_trojan(4), &FanciOptions::default());
        let b = control_value_analysis(&sequence_trojan(4), &FanciOptions::default());
        assert_eq!(a.suspicious, b.suspicious);
    }
}
