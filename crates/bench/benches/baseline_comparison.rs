//! Experiment E11: the golden-free IPC flow against the baseline detection
//! techniques on a trigger-length sweep.
//!
//! Reproduces the qualitative claims of Sec. I/II of the paper:
//!
//! * `ipc_flow`: runtime is flat in the trigger-sequence length — the
//!   symbolic starting state fast-forwards over any trigger history.
//! * `bmc_minimal_bound`: bounded model checking must unroll at least as
//!   many frames as the trigger sequence is long, so its runtime (and CNF
//!   size) grows with the sequence length.
//! * `bmc_fixed_bound`: at a fixed bound the runtime stays flat but the
//!   Trojan is simply missed beyond that bound (the series exists to make
//!   the miss visible in the report, not to claim a speedup).
//! * `random_testing`: a fixed simulation budget that never produces the
//!   stealthy trigger sequence.
//! * `uci` / `fanci`: the statistical structural analyses, included for
//!   runtime context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htd_baselines::bmc::{bounded_trojan_search, BmcOptions};
use htd_baselines::designs::{clean_pipeline, sequence_trojan};
use htd_baselines::fanci::{control_value_analysis, FanciOptions};
use htd_baselines::testing::{random_equivalence_test, RandomTestOptions};
use htd_baselines::uci::{unused_circuit_identification, UciOptions};
use htd_core::SessionBuilder;

const TRIGGER_LENGTHS: [u64; 4] = [4, 16, 64, 128];

fn ipc_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison/ipc_flow");
    group.sample_size(20);
    for length in TRIGGER_LENGTHS {
        let design = sequence_trojan(length);
        group.bench_with_input(BenchmarkId::from_parameter(length), &design, |b, design| {
            b.iter(|| {
                let report = SessionBuilder::new(design.clone())
                    .build()
                    .unwrap()
                    .run()
                    .unwrap();
                assert!(
                    !report.outcome.is_secure(),
                    "the flow must detect the Trojan"
                );
                report
            });
        });
    }
    group.finish();
}

fn bmc_minimal_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison/bmc_minimal_bound");
    group.sample_size(10);
    for length in TRIGGER_LENGTHS {
        let design = sequence_trojan(length);
        // The smallest prefix that still detects the Trojan: the sequence
        // length itself (the shared settle/window frames contribute the
        // remaining progress).
        let options = BmcOptions {
            bound: length as usize,
            window: 1,
            ..BmcOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(length), &design, |b, design| {
            b.iter(|| {
                let report = bounded_trojan_search(design, &options);
                assert!(
                    report.detected(),
                    "bound {} must cover trigger length {length}",
                    length
                );
                report
            });
        });
    }
    group.finish();
}

fn bmc_fixed_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison/bmc_fixed_bound_8");
    group.sample_size(10);
    for length in TRIGGER_LENGTHS {
        let design = sequence_trojan(length);
        let options = BmcOptions {
            bound: 8,
            window: 1,
            ..BmcOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(length), &design, |b, design| {
            b.iter(|| {
                let report = bounded_trojan_search(design, &options);
                // Bound 8 covers the short sequences and misses the long
                // ones — exactly the gap the paper's method closes.
                assert_eq!(report.detected(), length <= 8 + 2);
                report
            });
        });
    }
    group.finish();
}

fn random_testing(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison/random_testing_10k");
    group.sample_size(10);
    let golden = clean_pipeline(1);
    for length in TRIGGER_LENGTHS {
        let design = sequence_trojan(length);
        let options = RandomTestOptions {
            cycles: 10_000,
            seed: 0xBEEF,
        };
        group.bench_with_input(BenchmarkId::from_parameter(length), &design, |b, design| {
            b.iter(|| {
                let report = random_equivalence_test(design, &golden, &options).unwrap();
                assert!(
                    !report.detected(),
                    "random stimuli never produce the sequence"
                );
                report
            });
        });
    }
    group.finish();
}

fn structural_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison/structural_heuristics");
    group.sample_size(10);
    let design = sequence_trojan(16);
    group.bench_function("uci_4k_cycles", |b| {
        b.iter(|| unused_circuit_identification(&design, &UciOptions::default()).unwrap())
    });
    group.bench_function("fanci_64_samples", |b| {
        b.iter(|| control_value_analysis(&design, &FanciOptions::default()))
    });
    group.finish();
}

criterion_group!(
    benches,
    ipc_flow,
    bmc_minimal_bound,
    bmc_fixed_bound,
    random_testing,
    structural_heuristics
);
criterion_main!(benches);
