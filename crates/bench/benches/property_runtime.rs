//! Experiment E3: per-property proof runtime.
//!
//! Sec. VI of the paper reports 1–3 s and <1 GB per property on a commercial
//! property checker.  This benchmark measures the runtime of individual
//! interval properties on our engine: the init property, a shallow, a middle
//! and the deepest fanout property of the clean AES, and the failing fanout
//! property 21 of the AES-T2500 Trojan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htd_bench::{check_property, flow_properties, prepared_benchmark};
use htd_trusthub::registry::Benchmark;

fn property_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("property_runtime");
    group.sample_size(10);

    let (clean_aes, _) = prepared_benchmark(Benchmark::AesHtFree);
    let clean_properties = flow_properties(&clean_aes);
    let picks = [0usize, 1, 10, clean_properties.len() - 1];
    for index in picks {
        let property = &clean_properties[index];
        group.bench_with_input(
            BenchmarkId::new("aes_ht_free", &property.name),
            property,
            |b, property| b.iter(|| check_property(&clean_aes, property, true)),
        );
    }

    let (infected, _) = prepared_benchmark(Benchmark::AesT2500);
    let infected_properties = flow_properties(&infected);
    let failing = infected_properties.last().expect("AES has fanout levels");
    group.bench_with_input(
        BenchmarkId::new("aes_t2500", &failing.name),
        failing,
        |b, property| b.iter(|| check_property(&infected, property, true)),
    );

    group.finish();
}

criterion_group!(benches, property_runtime);
criterion_main!(benches);
