//! Experiment E3: per-property proof runtime, and the incremental-session
//! ablation.
//!
//! Sec. VI of the paper reports 1–3 s and <1 GB per property on a commercial
//! property checker.  This benchmark measures two things on our engine:
//!
//! * `property_runtime`: the runtime of individual interval properties — the
//!   init property, a shallow, a middle and the deepest fanout property of
//!   the clean AES, and the failing fanout property 21 of the AES-T2500
//!   Trojan.  Per-property times for the *session* path come from the
//!   streaming `FlowEvent` API, so the flow is not instrumented or re-run.
//! * `flow_encode_ablation`: the whole flow through the legacy re-encode
//!   path (one fresh AIG + CNF + solver per property) against the
//!   incremental `DetectionSession` path (one bit-blast, one live solver) —
//!   the headline speedup of the session API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htd_bench::{
    check_property, flow_properties, prepared_benchmark, run_detection, run_session_detection,
    session_property_timings,
};
use htd_trusthub::registry::Benchmark;

fn property_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("property_runtime");
    group.sample_size(10);

    let (clean_aes, _) = prepared_benchmark(Benchmark::AesHtFree);
    let clean_properties = flow_properties(&clean_aes);
    let picks = [0usize, 1, 10, clean_properties.len() - 1];
    for index in picks {
        let property = &clean_properties[index];
        group.bench_with_input(
            BenchmarkId::new("aes_ht_free", &property.name),
            property,
            |b, property| b.iter(|| check_property(&clean_aes, property, true)),
        );
    }

    let (infected, _) = prepared_benchmark(Benchmark::AesT2500);
    let infected_properties = flow_properties(&infected);
    let failing = infected_properties.last().expect("AES has fanout levels");
    group.bench_with_input(
        BenchmarkId::new("aes_t2500", &failing.name),
        failing,
        |b, property| b.iter(|| check_property(&infected, property, true)),
    );

    group.finish();
}

/// Legacy per-property re-encode vs. the incremental session, end to end.
fn flow_encode_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_encode_ablation");
    group.sample_size(10);

    for benchmark in [
        Benchmark::AesHtFree,
        Benchmark::AesT2500,
        Benchmark::BasicRsaHtFree,
    ] {
        let (design, config) = prepared_benchmark(benchmark);
        group.bench_with_input(
            BenchmarkId::new("reencode_per_property", benchmark.name()),
            &(design.clone(), config.clone()),
            |b, (design, config)| b.iter(|| run_detection(design, config)),
        );
        group.bench_with_input(
            BenchmarkId::new("incremental_session", benchmark.name()),
            &(design, config),
            |b, (design, config)| b.iter(|| run_session_detection(design, config)),
        );
    }
    group.finish();
}

/// Per-property timing of one session run, harvested from `FlowEvent`s.
fn session_property_breakdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_property_breakdown");
    group.sample_size(10);

    let (clean_aes, config) = prepared_benchmark(Benchmark::AesHtFree);
    // One un-timed pass prints the per-property breakdown the events carry;
    // the benchmark then times the full observed run.
    for (property, duration) in session_property_timings(&clean_aes, &config) {
        println!(
            "  event-timed {property:<24} {:>9.3} ms",
            duration.as_secs_f64() * 1e3
        );
    }
    group.bench_with_input(
        BenchmarkId::from_parameter("aes_ht_free"),
        &(clean_aes, config),
        |b, (design, config)| b.iter(|| session_property_timings(design, config)),
    );
    group.finish();
}

criterion_group!(
    benches,
    property_runtime,
    flow_encode_ablation,
    session_property_breakdown
);
criterion_main!(benches);
