//! Experiment E10 (ablation): the effect of cross-instance variable sharing /
//! structural hashing on property-checking effort.
//!
//! With sharing enabled (the default), registers assumed equal by a property
//! use the same AIG variables in both instances, so identical logic cones
//! collapse and the SAT query shrinks to the logic that depends on un-shared
//! state.  With sharing disabled the encoding carries two copies of every
//! cone plus explicit equality constraints, and the solver has to prove the
//! equivalence of the duplicated logic itself.
//!
//! The contrast is measured on designs where the unshared proof is still
//! tractable (a wide xor pipeline and the UART).  For the arithmetic-heavy
//! accelerators the difference is not a constant factor but a cliff: the
//! unshared encoding of one RSA fanout property asks the SAT solver for a
//! combinational equivalence proof of two 32-bit multiplier/reduction cones,
//! which does not terminate within minutes, while the shared encoding
//! discharges the same property in milliseconds — exactly why the option
//! defaults to `true` (see `CheckerOptions::share_assumed_equal`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htd_bench::{check_property, flow_properties, prepared_benchmark, xor_pipeline};
use htd_trusthub::registry::Benchmark;

fn ablation_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hashing");
    group.sample_size(10);

    // A wide, purely combinational pipeline: every stage is a 64-bit xor cone.
    let pipeline = xor_pipeline(32, 64).expect("pipeline builds");
    let pipeline_properties = flow_properties(&pipeline);
    let mid = &pipeline_properties[pipeline_properties.len() / 2];
    for share in [true, false] {
        group.bench_with_input(
            BenchmarkId::new(
                format!("xor_pipeline_{}", if share { "shared" } else { "unshared" }),
                &mid.name,
            ),
            mid,
            |b, property| b.iter(|| check_property(&pipeline, property, share)),
        );
    }

    // The UART: small arithmetic (counters, comparators) where the unshared
    // equivalence proof is still cheap enough to measure.
    let (uart, _) = prepared_benchmark(Benchmark::Rs232HtFree);
    let uart_properties = flow_properties(&uart);
    for property in uart_properties.iter().skip(1).take(2) {
        for share in [true, false] {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("uart_{}", if share { "shared" } else { "unshared" }),
                    &property.name,
                ),
                property,
                |b, property| b.iter(|| check_property(&uart, property, share)),
            );
        }
    }

    // The shared encoding of the deep AES properties, for scale: the unshared
    // variant is omitted here because it would require a monolithic
    // equivalence proof of two full AES round cones.
    let (aes, _) = prepared_benchmark(Benchmark::AesHtFree);
    let aes_properties = flow_properties(&aes);
    let deep = &aes_properties[aes_properties.len() - 2];
    group.bench_with_input(
        BenchmarkId::new("aes_shared", &deep.name),
        deep,
        |b, property| b.iter(|| check_property(&aes, property, true)),
    );

    group.finish();
}

criterion_group!(benches, ablation_hashing);
criterion_main!(benches);
