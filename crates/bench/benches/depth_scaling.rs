//! Experiment E9: the number of properties — and therefore the total flow
//! runtime — scales with the *structural* depth of the design, not with its
//! sequential depth (Sec. V of the paper: "the number of loop iterations is
//! limited by the structural, not the sequential, depth of the design").
//!
//! Two series:
//!
//! * `structural_depth`: synthetic pipelines of increasing depth; properties
//!   and runtime grow linearly with the depth.
//! * `sequential_depth_independence`: a design containing a 2^N-cycle
//!   counter (astronomical sequential depth) is verified with a handful of
//!   properties regardless of N, because the symbolic starting state
//!   fast-forwards over any trigger history.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htd_bench::{deep_sequential_design, run_detection, xor_pipeline};
use htd_core::DetectorConfig;

fn depth_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("depth_scaling");
    group.sample_size(10);

    for depth in [4usize, 8, 16, 32, 64] {
        let design = xor_pipeline(depth, 32).expect("pipeline builds");
        group.bench_with_input(
            BenchmarkId::new("structural_depth", depth),
            &design,
            |b, design| b.iter(|| run_detection(design, &DetectorConfig::default())),
        );
    }

    for counter_bits in [8u32, 32, 64, 128] {
        let design = deep_sequential_design(counter_bits).expect("design builds");
        group.bench_with_input(
            BenchmarkId::new("sequential_depth_independence", counter_bits),
            &design,
            |b, design| b.iter(|| run_detection(design, &DetectorConfig::default())),
        );
    }

    group.finish();
}

criterion_group!(benches, depth_scaling);
criterion_main!(benches);
