//! Micro-benchmarks for the CDCL SAT solver backing the property checker:
//! random 3-SAT near the satisfiability threshold and pigeonhole instances
//! (hard UNSAT cases exercising clause learning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htd_sat::{Lit, Solver, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_3sat(num_vars: usize, ratio: f64, seed: u64) -> Vec<Vec<(usize, bool)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_clauses = (num_vars as f64 * ratio) as usize;
    (0..num_clauses)
        .map(|_| {
            let mut clause = Vec::new();
            while clause.len() < 3 {
                let v = rng.gen_range(0..num_vars);
                if !clause.iter().any(|&(cv, _)| cv == v) {
                    clause.push((v, rng.gen_bool(0.5)));
                }
            }
            clause
        })
        .collect()
}

fn solve(clauses: &[Vec<(usize, bool)>], num_vars: usize) -> htd_sat::SolveResult {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for clause in clauses {
        solver.add_clause(clause.iter().map(|&(v, neg)| Lit::new(vars[v], neg)));
    }
    solver.solve()
}

fn pigeonhole(pigeons: usize) -> (Vec<Vec<(usize, bool)>>, usize) {
    let holes = pigeons - 1;
    let var = |p: usize, h: usize| p * holes + h;
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| (var(p, h), false)).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                clauses.push(vec![(var(p1, h), true), (var(p2, h), true)]);
            }
        }
    }
    (clauses, pigeons * holes)
}

fn sat_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_solver");
    group.sample_size(10);

    for num_vars in [60usize, 100, 140] {
        let clauses = random_3sat(num_vars, 4.26, 0xBEEF + num_vars as u64);
        group.bench_with_input(
            BenchmarkId::new("random_3sat_threshold", num_vars),
            &clauses,
            |b, clauses| b.iter(|| solve(clauses, num_vars)),
        );
    }

    for pigeons in [6usize, 7, 8] {
        let (clauses, num_vars) = pigeonhole(pigeons);
        group.bench_with_input(
            BenchmarkId::new("pigeonhole_unsat", pigeons),
            &clauses,
            |b, clauses| b.iter(|| solve(clauses, num_vars)),
        );
    }
    group.finish();
}

criterion_group!(benches, sat_solver);
criterion_main!(benches);
