//! Experiment E1 (Table I): end-to-end detection-flow runtime per benchmark
//! class.  The verdicts themselves are checked by the integration tests and
//! the `table1` example; this benchmark tracks how long each class of
//! benchmark takes, which corresponds to the per-design verification effort
//! reported in Sec. VI of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htd_bench::{prepared_benchmark, run_detection};
use htd_trusthub::registry::Benchmark;

fn table1_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_detection");
    group.sample_size(10);

    // One representative per benchmark class of Table I (running all 28 rows
    // takes minutes under Criterion's repetition; the `table1` example covers
    // the full sweep in a single pass).
    let representatives = [
        Benchmark::AesT100,      // PSC, plaintext sequence -> init property
        Benchmark::AesT900,      // PSC, # encryptions      -> init property
        Benchmark::AesT1600,     // RF                      -> init property
        Benchmark::AesT1800,     // DoS                     -> init property
        Benchmark::AesT1900,     // DoS oscillator          -> coverage check
        Benchmark::AesT2500,     // bit flip at the output  -> fanout property 21
        Benchmark::AesT2600,     // bit flip mid-pipeline   -> fanout property 7
        Benchmark::BasicRsaT300, // key leak to output   -> init property
        Benchmark::AesHtFree,    // clean design            -> secure
        Benchmark::BasicRsaHtFree,
        Benchmark::Rs232T2400,
    ];

    for benchmark in representatives {
        let (design, config) = prepared_benchmark(benchmark);
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.name()),
            &(design, config),
            |b, (design, config)| b.iter(|| run_detection(design, config)),
        );
    }
    group.finish();
}

criterion_group!(benches, table1_detection);
criterion_main!(benches);
