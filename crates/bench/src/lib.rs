//! Shared helpers for the benchmark harness that regenerates the paper's
//! tables and figures (see DESIGN.md §4 for the experiment index).
//!
//! The Criterion benchmarks in `benches/` use these helpers so that the same
//! designs, configurations and property sets are measured everywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trajectory;

use std::time::Duration;

#[allow(deprecated)] // the legacy detector is kept as the re-encode reference path
use htd_core::TrojanDetector;
use htd_core::{BackendChoice, DetectionReport, DetectorConfig, FlowEvent, SessionBuilder};
use htd_ipc::{CheckerOptions, IntervalProperty, PropertyChecker, PropertyReport};
use htd_rtl::structural::{fanout_levels, get_fanout};
use htd_rtl::{Design, DesignError, ValidatedDesign};
use htd_trusthub::registry::Benchmark;

/// Builds a benchmark design together with the detector configuration
/// (benign-state waivers) appropriate for it.
///
/// # Panics
///
/// Panics if the benchmark fails to build — benchmarks are static and always
/// build in a correct checkout.
#[must_use]
pub fn prepared_benchmark(benchmark: Benchmark) -> (ValidatedDesign, DetectorConfig) {
    let design = benchmark.build().expect("benchmark design builds");
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    (design, config)
}

/// Runs the full detection flow through the **legacy re-encode path**: one
/// fresh AIG + CNF + solver per property.
///
/// This is the baseline the `property_runtime` benchmark compares
/// [`run_session_detection`] against; new measurements should use the
/// session path.
///
/// # Panics
///
/// Panics if the flow rejects the design (it never does for the registry
/// benchmarks).
#[must_use]
#[allow(deprecated)]
pub fn run_detection(design: &ValidatedDesign, config: &DetectorConfig) -> DetectionReport {
    TrojanDetector::with_config(design, config.clone())
        .expect("benchmark designs are accepted by the detector")
        .run()
        .expect("detection flow completes")
}

/// Runs the full detection flow through an incremental [`DetectionSession`]
/// (one bit-blast, one live solver for the whole flow).
///
/// [`DetectionSession`]: htd_core::DetectionSession
///
/// # Panics
///
/// Panics if the flow rejects the design (it never does for the registry
/// benchmarks).
#[must_use]
pub fn run_session_detection(design: &ValidatedDesign, config: &DetectorConfig) -> DetectionReport {
    run_session_detection_with_backend(design, config, BackendChoice::Builtin)
}

/// [`run_session_detection`] with an explicit SAT backend.
///
/// # Panics
///
/// Panics if the flow rejects the design.
#[must_use]
pub fn run_session_detection_with_backend(
    design: &ValidatedDesign,
    config: &DetectorConfig,
    backend: BackendChoice,
) -> DetectionReport {
    SessionBuilder::new(design.clone())
        .config(config.clone())
        .backend(backend)
        .build()
        .expect("benchmark designs are accepted by the session builder")
        .run()
        .expect("detection flow completes")
}

/// Runs one session flow and returns the per-property wall-clock times, in
/// flow order, collected from the streaming [`FlowEvent`] API — no second
/// run and no instrumentation of the flow needed.
///
/// # Panics
///
/// Panics if the flow rejects the design.
#[must_use]
pub fn session_property_timings(
    design: &ValidatedDesign,
    config: &DetectorConfig,
) -> Vec<(String, Duration)> {
    let mut session = SessionBuilder::new(design.clone())
        .config(config.clone())
        .build()
        .expect("benchmark designs are accepted by the session builder");
    let mut timings: Vec<(String, Duration)> = Vec::new();
    session
        .run_with_observer(&mut |event| {
            if let FlowEvent::PropertyProved {
                property, duration, ..
            } = event
            {
                timings.push((property.clone(), *duration));
            }
        })
        .expect("detection flow completes");
    timings
}

/// The decomposed properties of a design in flow order: the init property
/// followed by one fanout property per level.
#[must_use]
pub fn flow_properties(design: &ValidatedDesign) -> Vec<IntervalProperty> {
    let d = design.design();
    let levels = fanout_levels(design);
    let mut properties = Vec::with_capacity(levels.len());
    let inputs = d.inputs();
    let first = levels
        .first()
        .cloned()
        .unwrap_or_else(|| get_fanout(design, &inputs));
    properties.push(IntervalProperty::new("init_property", Vec::new(), first));
    // The antecedent accumulates the earlier levels, matching the detection
    // flow's default (`DetectorConfig::assume_previously_proven`): a level-k+1
    // output observed combinationally from a deeper register would otherwise
    // fail spuriously (Sec. V-B scenario 1 of the paper).
    let mut assumed: Vec<htd_rtl::SignalId> = Vec::new();
    for (k, window) in levels.windows(2).enumerate() {
        for &signal in &window[0] {
            if !assumed.contains(&signal) {
                assumed.push(signal);
            }
        }
        properties.push(IntervalProperty::new(
            format!("fanout_property_{}", k + 1),
            assumed.clone(),
            window[1].clone(),
        ));
    }
    properties
}

/// Checks a single property with the given sharing option.
#[must_use]
pub fn check_property(
    design: &ValidatedDesign,
    property: &IntervalProperty,
    share_assumed_equal: bool,
) -> PropertyReport {
    PropertyChecker::with_options(
        design,
        CheckerOptions {
            share_assumed_equal,
            ..CheckerOptions::default()
        },
    )
    .check(property)
}

/// A synthetic non-interfering pipeline of the given depth: `width`-bit data
/// flows through `depth` xor-with-round-constant stages.  Used by the
/// depth-scaling experiment (E9) to show that the number of properties — and
/// the total runtime — is bounded by the *structural* depth of the design.
///
/// # Errors
///
/// Propagates [`DesignError`] (never fails for reasonable parameters).
pub fn xor_pipeline(depth: usize, width: u32) -> Result<ValidatedDesign, DesignError> {
    let mut d = Design::new(format!("xor_pipeline_d{depth}"));
    let input = d.add_input("in", width)?;
    let mut previous = d.signal(input);
    for stage in 0..depth {
        let constant = d.constant(
            u128::from(stage as u32 + 1) & ((1 << width.min(32)) - 1),
            width,
        )?;
        let mixed = d.xor(previous, constant)?;
        let reg = d.add_register(format!("stage{stage}"), width, 0)?;
        d.set_register_next(reg, mixed)?;
        previous = d.signal(reg);
    }
    d.add_output("out", previous)?;
    d.validated()
}

/// A design whose *sequential* depth is astronomically larger than its
/// structural depth: a wide free-running counter feeding nothing, next to a
/// short input pipeline.  The flow still needs only a handful of properties —
/// the point of the IPC symbolic starting state.
///
/// # Errors
///
/// Propagates [`DesignError`].
pub fn deep_sequential_design(counter_bits: u32) -> Result<ValidatedDesign, DesignError> {
    let mut d = Design::new(format!("deep_sequential_{counter_bits}"));
    let input = d.add_input("in", 8)?;
    let stage = d.add_register("stage", 8, 0)?;
    d.set_register_next(stage, d.signal(input))?;
    d.add_output("out", d.signal(stage))?;
    let counter = d.add_register("long_counter", counter_bits, 0)?;
    let one = d.constant(1, counter_bits)?;
    let inc = d.add(d.signal(counter), one)?;
    d.set_register_next(counter, inc)?;
    d.validated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_properties_match_structural_depth() {
        let design = xor_pipeline(6, 16).unwrap();
        let properties = flow_properties(&design);
        // depth 6 registers + 1 output level => 7 levels => 7 properties.
        assert_eq!(properties.len(), 7);
        assert_eq!(properties[0].name, "init_property");
        assert_eq!(properties.last().unwrap().name, "fanout_property_6");
    }

    #[test]
    fn xor_pipeline_is_secure() {
        let design = xor_pipeline(4, 8).unwrap();
        let report = run_detection(&design, &DetectorConfig::default());
        assert!(report.outcome.is_secure());
    }

    #[test]
    fn deep_sequential_design_is_flagged_by_coverage_only() {
        let design = deep_sequential_design(64).unwrap();
        let report = run_detection(&design, &DetectorConfig::default());
        // The long counter is unreachable from the inputs: coverage check.
        assert!(!report.outcome.is_secure());
        assert!(report.properties_checked() <= 3);
    }

    #[test]
    fn prepared_benchmark_runs_end_to_end() {
        let (design, config) = prepared_benchmark(Benchmark::AesT100);
        let report = run_detection(&design, &config);
        assert!(!report.outcome.is_secure());
    }

    #[test]
    fn session_and_legacy_helpers_agree() {
        let design = xor_pipeline(5, 16).unwrap();
        let config = DetectorConfig::default();
        let legacy = run_detection(&design, &config);
        let session = run_session_detection(&design, &config);
        assert_eq!(legacy.outcome.is_secure(), session.outcome.is_secure());
        assert_eq!(legacy.properties_checked(), session.properties_checked());
    }

    #[test]
    fn property_timings_cover_every_proved_property() {
        let design = xor_pipeline(4, 8).unwrap();
        let timings = session_property_timings(&design, &DetectorConfig::default());
        let names: Vec<&str> = timings.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names.first(), Some(&"init_property"));
        assert_eq!(names.len(), 5); // 4 register levels + the output level
    }

    #[test]
    fn check_property_works_with_and_without_sharing() {
        let design = xor_pipeline(3, 8).unwrap();
        let properties = flow_properties(&design);
        for property in &properties {
            assert!(check_property(&design, property, true).holds());
            assert!(check_property(&design, property, false).holds());
        }
    }
}
