//! The perf-trajectory harness behind `htd bench --json`.
//!
//! Runs the bundled benchmark set through both property-checking engines —
//! the sequential single-miter reference path and the sharded
//! [`PropertyScheduler`](htd_core::PropertyScheduler) — and collects one
//! [`TrajectoryRecord`] per design: wall-clock for each engine, verdict, and
//! the solver work counters (conflicts, propagations, restarts, clause-GC
//! and LBD totals).  [`to_json`] renders the records as a self-contained
//! `BENCH_*.json` file so future changes have a baseline to diff against.
//!
//! Wall-clocks are the best of [`MEASURE_RUNS`] runs: the designs are small
//! enough that scheduler noise would otherwise dominate single-digit
//! millisecond flows.

use std::num::NonZeroUsize;
use std::time::Instant;

use htd_core::{BackendChoice, DetectorConfig, EngineChoice, PropertyScheduler, SessionBuilder};

use htd_trusthub::registry::Benchmark;

/// How many times each (design, engine) pair is run; the fastest run is
/// recorded.
pub const MEASURE_RUNS: usize = 3;

/// One benchmark's measurements for the perf-trajectory file.
#[derive(Clone, Debug)]
pub struct TrajectoryRecord {
    /// Benchmark name (`AES-T100`, `BasicRSA (HT-free)`, …).
    pub name: String,
    /// One-line verdict (`secure`, or the detection mechanism).
    pub verdict: String,
    /// Properties checked by the flow (scheduler engine).
    pub properties_checked: usize,
    /// Spurious counterexamples resolved (scheduler engine).
    pub spurious_resolved: usize,
    /// Best wall-clock of the sharded scheduler engine, in seconds.
    pub wall_secs: f64,
    /// Best wall-clock of the sequential single-miter engine, in seconds.
    pub sequential_secs: f64,
    /// Solver conflicts across the whole flow (scheduler engine).
    pub conflicts: u64,
    /// Solver propagations across the whole flow (scheduler engine).
    pub propagations: u64,
    /// Solver restarts across the whole flow (scheduler engine).
    pub restarts: u64,
    /// Solver decisions across the whole flow (scheduler engine).
    pub decisions: u64,
    /// Clause garbage collections across the whole flow.
    pub gc_runs: u64,
    /// Clauses physically collected by garbage collection.
    pub clauses_collected: u64,
    /// Sum of learnt-clause LBD values (divide by `conflicts` for the
    /// average glue).
    pub learnt_lbd_sum: u64,
    /// SAT queries consumed by the flow.
    pub queries: u64,
    /// Per-signal solve tasks dispatched by the scheduler.
    pub parallel_tasks: u64,
    /// Prove signals discharged structurally (no solver work).
    pub structurally_proved: u64,
    /// Solver forks consumed by the flow (one per consumed solve task;
    /// schedule-invariant, from `DetectionReport::solver_totals`).
    pub fork_count: u64,
    /// Bytes those forks copied: the arena-backed snapshot cost —
    /// proportional to the live clause-database size, never to the clause
    /// count.
    pub bytes_cloned: u64,
    /// Slice of `bytes_cloned` spent copying the flat watcher arena (zero
    /// for backends without an observable watcher store).
    pub watcher_bytes_cloned: u64,
    /// Arena words reclaimed by clause-GC compaction sweeps.
    pub arena_words_reclaimed: u64,
    /// Master-side snapshot clones taken by the scheduler for this run
    /// (schedule-dependent: 0 on single-worker inline schedules).
    pub snapshot_forks: u64,
    /// Bytes those master-side snapshot clones copied.
    pub snapshot_bytes_cloned: u64,
    /// Solve tasks answered by a portfolio race (0 for single backends).
    pub race_solves: u64,
    /// Races decided by a racer member rather than the primary; primary
    /// wins are `race_solves - race_wins`.
    pub race_wins: u64,
    /// Member solves cancelled because another member answered first.
    pub race_cancels: u64,
    /// Conflicts spent by members whose solve was cancelled.
    pub race_wasted_conflicts: u64,
    /// Total microseconds between a cancel request and the cancelled
    /// member returning (divide by `race_cancels` for the average
    /// cancellation latency).
    pub race_cancel_latency_us: u64,
}

impl TrajectoryRecord {
    /// Sequential wall-clock divided by scheduler wall-clock.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.sequential_secs / self.wall_secs
        } else {
            1.0
        }
    }
}

/// The smoke subset used by CI: the cheapest representative of each base
/// design class plus the two designs with the hardest properties.
#[must_use]
pub fn smoke_set() -> Vec<Benchmark> {
    vec![
        Benchmark::AesT100,
        Benchmark::AesT1600,
        Benchmark::AesT2500,
        Benchmark::BasicRsaT200,
        Benchmark::Rs232T2400,
        Benchmark::Rs232HtFree,
    ]
}

/// What one flow run yields for the trajectory: the report plus the
/// session/schedule counters the record columns need.
struct RunOutcome {
    secs: f64,
    report: htd_core::DetectionReport,
    parallel_tasks: u64,
    structurally_proved: u64,
    snapshot_forks: u64,
    snapshot_bytes_cloned: u64,
}

fn run_once(benchmark: Benchmark, engine: EngineChoice, backend: &BackendChoice) -> RunOutcome {
    let design = benchmark.build().expect("bundled benchmarks build");
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    let mut session = SessionBuilder::new(design)
        .config(config)
        .engine(engine)
        .backend(backend.clone())
        .build()
        .expect("bundled benchmarks are accepted");
    let start = Instant::now();
    let report = session.run().expect("detection flow completes");
    let secs = start.elapsed().as_secs_f64();
    let stats = session.session_stats();
    RunOutcome {
        secs,
        report,
        parallel_tasks: stats.parallel_tasks,
        structurally_proved: stats.structurally_proved,
        snapshot_forks: stats.snapshot_forks,
        snapshot_bytes_cloned: stats.snapshot_bytes_cloned,
    }
}

/// Measures one benchmark with both engines (the flow-graph executor at
/// `jobs` workers with `pipeline` controlling level pipelining, and the
/// sequential single-miter reference), solving on `backend`.
#[must_use]
pub fn measure(
    benchmark: Benchmark,
    jobs: NonZeroUsize,
    pipeline: bool,
    backend: &BackendChoice,
) -> TrajectoryRecord {
    let scheduled =
        EngineChoice::Scheduled(PropertyScheduler::new(jobs).with_level_pipelining(pipeline));
    let mut wall_secs = f64::INFINITY;
    let mut sequential_secs = f64::INFINITY;
    let mut measured = None;
    for _ in 0..MEASURE_RUNS {
        let outcome = run_once(benchmark, scheduled, backend);
        if outcome.secs < wall_secs {
            wall_secs = outcome.secs;
        }
        measured = Some(outcome);
        let sequential = run_once(benchmark, EngineChoice::Sequential, backend);
        if sequential.secs < sequential_secs {
            sequential_secs = sequential.secs;
        }
    }
    let outcome = measured.expect("at least one run");
    let report = outcome.report;
    let verdict = match report.outcome.detected_by() {
        None => "secure".to_string(),
        Some(mechanism) => mechanism.to_string(),
    };
    let totals = report.solver_totals;
    TrajectoryRecord {
        name: benchmark.name().to_string(),
        verdict,
        properties_checked: report.properties_checked(),
        spurious_resolved: report.spurious_resolved,
        wall_secs,
        sequential_secs,
        conflicts: totals.conflicts,
        propagations: totals.propagations,
        restarts: totals.restarts,
        decisions: totals.decisions,
        gc_runs: totals.gc_runs,
        clauses_collected: totals.clauses_collected,
        learnt_lbd_sum: totals.learnt_lbd_sum,
        queries: totals.solves,
        parallel_tasks: outcome.parallel_tasks,
        structurally_proved: outcome.structurally_proved,
        fork_count: totals.fork_count,
        bytes_cloned: totals.bytes_cloned,
        watcher_bytes_cloned: totals.watcher_bytes_cloned,
        arena_words_reclaimed: totals.arena_words_reclaimed,
        snapshot_forks: outcome.snapshot_forks,
        snapshot_bytes_cloned: outcome.snapshot_bytes_cloned,
        race_solves: totals.race_solves,
        race_wins: totals.race_wins,
        race_cancels: totals.race_cancels,
        race_wasted_conflicts: totals.race_wasted_conflicts,
        race_cancel_latency_us: totals.race_cancel_latency_us,
    }
}

/// Measures every given benchmark; see [`measure`].
#[must_use]
pub fn run_trajectory(
    benchmarks: &[Benchmark],
    jobs: NonZeroUsize,
    pipeline: bool,
    backend: &BackendChoice,
) -> Vec<TrajectoryRecord> {
    benchmarks
        .iter()
        .map(|&b| measure(b, jobs, pipeline, backend))
        .collect()
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders trajectory records as a pretty-printed JSON document.
///
/// The schema is flat on purpose — every field is a number or a string — so
/// future PRs can diff two `BENCH_*.json` files with standard tooling.
#[must_use]
pub fn to_json(
    records: &[TrajectoryRecord],
    jobs: NonZeroUsize,
    pipeline: bool,
    backend: &BackendChoice,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    // Schema v6 adds the portfolio-race cost model: per-design race counts,
    // racer wins (primary wins are race_solves - race_wins), cancelled
    // member solves, the conflicts those cancelled solves wasted, and the
    // cancel-to-return latency total.  All five are 0 for single backends,
    // so single-backend trajectories stay diffable against v5 rows
    // column-for-column.  (v5 split the fork cost model with
    // `watcher_bytes_cloned`; v4 tagged the trajectory with the SAT backend
    // it measured; v3 added the fork cost model of the arena-backed clause
    // store: per-flow fork counts, snapshot bytes and compaction words.)
    out.push_str("  \"schema\": \"htd-bench-trajectory-v6\",\n");
    out.push_str("  \"engine\": \"flowgraph\",\n");
    out.push_str(&format!(
        "  \"backend\": \"{}\",\n",
        json_escape(&backend.to_string())
    ));
    out.push_str(&format!("  \"jobs\": {},\n", jobs.get()));
    // Host context: wall-clocks are only comparable between BENCH_*.json
    // files recorded on comparable machines, so the header says how many
    // hardware threads the run had (the executor caps its worker count at
    // this) and which scheduling mode was measured.
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        PropertyScheduler::available_parallelism().get()
    ));
    out.push_str(&format!("  \"level_pipeline\": {pipeline},\n"));
    let total_wall: f64 = records.iter().map(|r| r.wall_secs).sum();
    let total_seq: f64 = records.iter().map(|r| r.sequential_secs).sum();
    out.push_str(&format!("  \"total_wall_secs\": {total_wall:.6},\n"));
    out.push_str(&format!("  \"total_sequential_secs\": {total_seq:.6},\n"));
    out.push_str(&format!(
        "  \"total_speedup\": {:.3},\n",
        if total_wall > 0.0 {
            total_seq / total_wall
        } else {
            1.0
        }
    ));
    out.push_str("  \"designs\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&r.name)));
        out.push_str(&format!(
            "      \"verdict\": \"{}\",\n",
            json_escape(&r.verdict)
        ));
        out.push_str(&format!(
            "      \"properties_checked\": {},\n",
            r.properties_checked
        ));
        out.push_str(&format!(
            "      \"spurious_resolved\": {},\n",
            r.spurious_resolved
        ));
        out.push_str(&format!("      \"wall_secs\": {:.6},\n", r.wall_secs));
        out.push_str(&format!(
            "      \"sequential_secs\": {:.6},\n",
            r.sequential_secs
        ));
        out.push_str(&format!("      \"speedup\": {:.3},\n", r.speedup()));
        out.push_str(&format!("      \"conflicts\": {},\n", r.conflicts));
        out.push_str(&format!("      \"propagations\": {},\n", r.propagations));
        out.push_str(&format!("      \"restarts\": {},\n", r.restarts));
        out.push_str(&format!("      \"decisions\": {},\n", r.decisions));
        out.push_str(&format!("      \"gc_runs\": {},\n", r.gc_runs));
        out.push_str(&format!(
            "      \"clauses_collected\": {},\n",
            r.clauses_collected
        ));
        out.push_str(&format!(
            "      \"learnt_lbd_sum\": {},\n",
            r.learnt_lbd_sum
        ));
        out.push_str(&format!("      \"queries\": {},\n", r.queries));
        out.push_str(&format!(
            "      \"parallel_tasks\": {},\n",
            r.parallel_tasks
        ));
        out.push_str(&format!(
            "      \"structurally_proved\": {},\n",
            r.structurally_proved
        ));
        out.push_str(&format!("      \"fork_count\": {},\n", r.fork_count));
        out.push_str(&format!("      \"bytes_cloned\": {},\n", r.bytes_cloned));
        out.push_str(&format!(
            "      \"watcher_bytes_cloned\": {},\n",
            r.watcher_bytes_cloned
        ));
        out.push_str(&format!(
            "      \"arena_words_reclaimed\": {},\n",
            r.arena_words_reclaimed
        ));
        out.push_str(&format!(
            "      \"snapshot_forks\": {},\n",
            r.snapshot_forks
        ));
        out.push_str(&format!(
            "      \"snapshot_bytes_cloned\": {},\n",
            r.snapshot_bytes_cloned
        ));
        out.push_str(&format!("      \"race_solves\": {},\n", r.race_solves));
        out.push_str(&format!("      \"race_wins\": {},\n", r.race_wins));
        out.push_str(&format!("      \"race_cancels\": {},\n", r.race_cancels));
        out.push_str(&format!(
            "      \"race_wasted_conflicts\": {},\n",
            r.race_wasted_conflicts
        ));
        out.push_str(&format!(
            "      \"race_cancel_latency_us\": {}\n",
            r.race_cancel_latency_us
        ));
        out.push_str(if i + 1 < records.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_set_measures_and_serialises() {
        let jobs = NonZeroUsize::new(2).unwrap();
        let backend = BackendChoice::Builtin;
        let records = run_trajectory(&[Benchmark::Rs232T2400], jobs, true, &backend);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].verdict, "fanout_property_1");
        assert!(records[0].wall_secs > 0.0);
        let json = to_json(&records, jobs, true, &backend);
        assert!(json.contains("\"schema\": \"htd-bench-trajectory-v6\""));
        assert!(json.contains("\"backend\": \"builtin\""));
        assert!(json.contains("\"engine\": \"flowgraph\""));
        assert!(json.contains("\"host_parallelism\""));
        assert!(json.contains("\"level_pipeline\": true"));
        assert!(json.contains("\"jobs\": 2"));
        assert!(json.contains("RS232-T2400"));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"fork_count\""));
        assert!(json.contains("\"bytes_cloned\""));
        assert!(json.contains("\"watcher_bytes_cloned\""));
        assert!(json.contains("\"arena_words_reclaimed\""));
        assert!(json.contains("\"snapshot_forks\""));
        // The race columns are present on every row, zero for a single
        // backend, so portfolio and single-backend trajectories share one
        // schema.
        assert!(json.contains("\"race_solves\": 0"));
        assert!(json.contains("\"race_wins\": 0"));
        assert!(json.contains("\"race_cancels\": 0"));
        assert!(json.contains("\"race_wasted_conflicts\": 0"));
        assert!(json.contains("\"race_cancel_latency_us\": 0"));
    }

    #[test]
    fn a_portfolio_trajectory_records_its_races() {
        let jobs = NonZeroUsize::new(2).unwrap();
        let backend = BackendChoice::portfolio(
            vec![BackendChoice::Builtin, BackendChoice::Builtin],
            htd_core::RacePolicy::DeterministicCex,
        );
        let records = run_trajectory(&[Benchmark::Rs232T2400], jobs, true, &backend);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].verdict, "fanout_property_1");
        assert!(records[0].race_solves > 0, "every solve task raced");
        let json = to_json(&records, jobs, true, &backend);
        assert!(json.contains("\"backend\": \"portfolio:builtin,builtin\""));
        assert!(!json.contains("\"race_solves\": 0"));
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak"), "line\\nbreak");
    }

    #[test]
    fn smoke_set_is_small_but_covers_all_bases() {
        let set = smoke_set();
        assert!(set.len() <= 8, "smoke set must stay cheap");
        assert!(set.contains(&Benchmark::BasicRsaT200));
        assert!(set.contains(&Benchmark::AesT1600));
    }
}
