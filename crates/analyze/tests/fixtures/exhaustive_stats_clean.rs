//! Fixture: exhaustive stats aggregation — every field named, plus a `..`
//! in an *unrelated* fn (ranges and other types are not the rule's target).

pub struct SolverStats {
    pub propagations: u64,
    pub conflicts: u64,
}

pub struct Other {
    pub a: u64,
    pub b: u64,
}

impl SolverStats {
    pub fn accumulate(&mut self, other: &SolverStats) {
        let SolverStats {
            propagations,
            conflicts,
        } = *other;
        self.propagations += propagations;
        self.conflicts += conflicts;
    }
}

pub fn unrelated(o: &Other) -> u64 {
    // A rest pattern outside accumulate/delta_since/normalized, and on a
    // type that is not a stats struct: not the rule's business.
    let Other { a, .. } = *o;
    let range_sum: u64 = (0..a).sum();
    range_sum
}
