//! Fixture: wall-clock reads that are all legal — one confined to a
//! `#[cfg(test)]` module (test code is exempt), none in production code.

use std::sync::atomic::{AtomicU64, Ordering};

pub static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    // SeqCst, not Relaxed: nothing for the determinism rule here.
    COUNTER.fetch_add(1, Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let start = Instant::now();
        assert!(start.elapsed().as_secs() < 60);
    }
}
