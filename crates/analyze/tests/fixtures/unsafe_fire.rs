//! Fixture: an `unsafe` block outside the audited modules, with no
//! adjacent SAFETY comment.  Fires `unsafe-audit` twice on the same line.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
