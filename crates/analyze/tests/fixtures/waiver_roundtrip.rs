//! Fixture: both waiver placements — a pragma on its own line directly
//! above the finding, and a trailing pragma on the finding's line.

use std::time::Instant;

pub fn above() -> std::time::Duration {
    // htd-lint: allow(determinism): fixture — the duration is discarded
    let start = Instant::now();
    start.elapsed()
}

pub fn trailing() -> std::time::Duration {
    let start = Instant::now(); // htd-lint: allow(determinism): fixture — trailing placement
    start.elapsed()
}
