//! Fixture: a crate root carrying the required unsafe-code lint attribute.

#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}
