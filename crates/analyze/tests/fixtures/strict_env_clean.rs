//! Fixture: the same `HTD_*` read, legal because the test presents this
//! file as one of the designated strict-parsing modules.

pub fn addr() -> Option<String> {
    std::env::var("HTD_SERVE_ADDR").ok()
}
