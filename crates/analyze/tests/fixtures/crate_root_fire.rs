//! Fixture: a crate root (the test presents it as `src/lib.rs`) that never
//! declares `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`.

pub fn answer() -> u32 {
    42
}
