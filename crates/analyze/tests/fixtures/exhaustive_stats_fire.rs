//! Fixture: a `..` rest pattern inside a stats-aggregation fn — a new
//! counter would be silently dropped instead of breaking the build.

pub struct SolverStats {
    pub propagations: u64,
    pub conflicts: u64,
}

impl SolverStats {
    pub fn accumulate(&mut self, other: &SolverStats) {
        let SolverStats { propagations, .. } = *other;
        self.propagations += propagations;
    }
}
