//! Fixture: a wall-clock read in production code outside the timing
//! allowlist.  The string literal below must NOT fire — only real tokens do.

use std::time::Instant;

pub const DECOY: &str = "Instant::now() inside a string is not a call";

pub fn measure() -> std::time::Duration {
    let start = Instant::now();
    start.elapsed()
}
