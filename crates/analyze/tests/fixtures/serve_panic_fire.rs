//! Fixture: `unwrap`/`expect` in request-path code (the test presents this
//! file as `crates/serve/src/server.rs`).

pub fn parse(input: &str) -> u64 {
    let n: u64 = input.parse().unwrap();
    n.checked_mul(2).expect("no overflow")
}
