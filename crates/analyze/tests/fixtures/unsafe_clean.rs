//! Fixture: audited `unsafe` — lives under an allowlisted path (the test
//! presents this file as part of the IPASIR shim) and every use carries an
//! adjacent SAFETY comment.

pub fn peek(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points to a live byte.
    unsafe { *p }
}

/// Reads a byte.
///
/// # Safety
///
/// `p` must point to a live byte.
pub unsafe fn peek_contract(p: *const u8) -> u8 {
    // SAFETY: this fn's own contract above.
    unsafe { *p }
}
