//! Fixture: a waiver with no justification — the finding is waived, but
//! the naked waiver is itself a `waiver-hygiene` finding.

use std::time::Instant;

pub fn measure() -> std::time::Duration {
    // htd-lint: allow(determinism)
    let start = Instant::now();
    start.elapsed()
}
