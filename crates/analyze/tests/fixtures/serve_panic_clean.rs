//! Fixture: request-path code that settles errors structurally, with the
//! only `unwrap` confined to a `#[cfg(test)]` module (test code is exempt).

pub fn parse(input: &str) -> Result<u64, String> {
    input.parse().map_err(|_| format!("not a number: {input}"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn parses() {
        assert_eq!(super::parse("7").unwrap(), 7);
    }
}
