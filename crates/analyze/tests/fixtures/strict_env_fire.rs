//! Fixture: a raw `HTD_*` environment read outside the strict-parsing
//! modules.  The `PATH` read must NOT fire — only the `HTD_` prefix does.

pub fn addr() -> Option<String> {
    let _ = std::env::var("PATH");
    std::env::var("HTD_SERVE_ADDR").ok()
}
