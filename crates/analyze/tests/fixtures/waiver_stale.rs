//! Fixture: waivers that cover nothing — one stale (no finding on the
//! target line) and one naming a rule that does not exist.

// htd-lint: allow(determinism): nothing below ever reads a clock
pub fn quiet() -> u32 {
    7
}

// htd-lint: allow(no-such-rule): the rule name is wrong
pub fn also_quiet() -> u32 {
    8
}
