//! Rule-level fixture suite for `htd-analyze`.
//!
//! Every rule gets one firing and one clean fixture (under
//! `tests/fixtures/`, a directory the workspace walker deliberately skips),
//! presented to [`lint_source`] under *virtual* workspace paths so the
//! path-scoped allowlists are exercised without touching real files.  The
//! final test runs the real linter over the real workspace: the tree must
//! stay clean.

use std::path::Path;

use htd_analyze::{lint_source, lint_workspace, Finding, LintConfig, Rule};

fn findings(virtual_path: &str, source: &str) -> Vec<Finding> {
    lint_source(virtual_path, source, &LintConfig::default())
}

fn unwaived(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| !f.waived).collect()
}

// ---------------------------------------------------------------- unsafe-audit

#[test]
fn unsafe_outside_allowlist_fires_twice_per_site() {
    let found = findings(
        "crates/rtl/src/widget.rs",
        include_str!("fixtures/unsafe_fire.rs"),
    );
    assert_eq!(found.len(), 2, "location + missing SAFETY: {found:?}");
    assert!(found.iter().all(|f| f.rule == Rule::UnsafeAudit));
    assert!(found.iter().all(|f| f.line == 5));
    assert!(found.iter().any(|f| f.message.contains("outside")));
    assert!(found.iter().any(|f| f.message.contains("SAFETY")));
}

#[test]
fn audited_unsafe_under_allowlisted_path_is_clean() {
    let found = findings(
        "crates/ipasir-shim/src/widget.rs",
        include_str!("fixtures/unsafe_clean.rs"),
    );
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn safety_comment_alone_does_not_legalise_the_location() {
    // The clean fixture has SAFETY comments, but outside the allowlist the
    // location findings still fire (one per audited use).
    let found = findings(
        "crates/rtl/src/widget.rs",
        include_str!("fixtures/unsafe_clean.rs"),
    );
    assert!(!found.is_empty());
    assert!(found.iter().all(|f| f.message.contains("outside")));
}

#[test]
fn crate_root_without_unsafe_attr_fires() {
    let found = findings(
        "crates/rtl/src/lib.rs",
        include_str!("fixtures/crate_root_fire.rs"),
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, Rule::UnsafeAudit);
    assert!(found[0].message.contains("crate root"));
}

#[test]
fn crate_root_with_forbid_attr_is_clean() {
    let found = findings(
        "crates/rtl/src/lib.rs",
        include_str!("fixtures/crate_root_clean.rs"),
    );
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn non_root_files_need_no_unsafe_attr() {
    let found = findings(
        "crates/rtl/src/widget.rs",
        include_str!("fixtures/crate_root_fire.rs"),
    );
    assert!(found.is_empty(), "{found:?}");
}

// ---------------------------------------------------------------- determinism

#[test]
fn wall_clock_outside_timing_allowlist_fires() {
    let found = findings(
        "crates/core/src/widget.rs",
        include_str!("fixtures/determinism_fire.rs"),
    );
    assert_eq!(found.len(), 1, "string decoy must not fire: {found:?}");
    assert_eq!(found[0].rule, Rule::Determinism);
    assert_eq!(found[0].line, 9);
}

#[test]
fn wall_clock_in_allowlisted_module_is_clean() {
    let found = findings(
        "crates/bench/src/widget.rs",
        include_str!("fixtures/determinism_fire.rs"),
    );
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn wall_clock_in_cfg_test_module_is_clean() {
    let found = findings(
        "crates/core/src/widget.rs",
        include_str!("fixtures/determinism_clean.rs"),
    );
    assert!(found.is_empty(), "{found:?}");
}

// ------------------------------------------------------------------ strict-env

#[test]
fn raw_htd_env_read_outside_strict_modules_fires() {
    let found = findings(
        "crates/core/src/widget.rs",
        include_str!("fixtures/strict_env_fire.rs"),
    );
    assert_eq!(found.len(), 1, "PATH read must not fire: {found:?}");
    assert_eq!(found[0].rule, Rule::StrictEnv);
    assert!(found[0].message.contains("HTD_SERVE_ADDR"));
}

#[test]
fn htd_env_read_in_strict_module_is_clean() {
    let found = findings(
        "crates/serve/src/fault.rs",
        include_str!("fixtures/strict_env_clean.rs"),
    );
    assert!(found.is_empty(), "{found:?}");
}

// ------------------------------------------------------------ exhaustive-stats

#[test]
fn rest_pattern_in_stats_accumulate_fires() {
    let found = findings(
        "crates/sat/src/widget.rs",
        include_str!("fixtures/exhaustive_stats_fire.rs"),
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, Rule::ExhaustiveStats);
    assert_eq!(found[0].line, 11);
}

#[test]
fn exhaustive_destructuring_and_unrelated_rest_are_clean() {
    let found = findings(
        "crates/sat/src/widget.rs",
        include_str!("fixtures/exhaustive_stats_clean.rs"),
    );
    assert!(found.is_empty(), "{found:?}");
}

// --------------------------------------------------------- serve-panic-hygiene

#[test]
fn unwrap_on_request_path_fires() {
    let found = findings(
        "crates/serve/src/server.rs",
        include_str!("fixtures/serve_panic_fire.rs"),
    );
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|f| f.rule == Rule::ServePanicHygiene));
    assert!(found.iter().any(|f| f.message.contains("unwrap")));
    assert!(found.iter().any(|f| f.message.contains("expect")));
}

#[test]
fn unwrap_off_request_path_is_not_this_rules_business() {
    let found = findings(
        "crates/serve/src/client.rs",
        include_str!("fixtures/serve_panic_fire.rs"),
    );
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn structured_errors_and_test_unwraps_are_clean() {
    let found = findings(
        "crates/serve/src/server.rs",
        include_str!("fixtures/serve_panic_clean.rs"),
    );
    assert!(found.is_empty(), "{found:?}");
}

// --------------------------------------------------------------------- waivers

#[test]
fn waiver_roundtrip_above_and_trailing() {
    let found = findings(
        "crates/core/src/widget.rs",
        include_str!("fixtures/waiver_roundtrip.rs"),
    );
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found
        .iter()
        .all(|f| f.rule == Rule::Determinism && f.waived));
    assert!(unwaived(&found).is_empty(), "waived findings never fail");
    let above = found.iter().find(|f| f.line == 8).expect("above form");
    assert_eq!(
        above.justification.as_deref(),
        Some("fixture — the duration is discarded")
    );
    let trailing = found.iter().find(|f| f.line == 13).expect("trailing form");
    assert_eq!(
        trailing.justification.as_deref(),
        Some("fixture — trailing placement")
    );
}

#[test]
fn waiver_without_justification_is_itself_a_finding() {
    let found = findings(
        "crates/core/src/widget.rs",
        include_str!("fixtures/waiver_unjustified.rs"),
    );
    assert_eq!(found.len(), 2, "{found:?}");
    let hygiene = found
        .iter()
        .find(|f| f.rule == Rule::WaiverHygiene)
        .expect("naked waiver reported");
    assert!(hygiene.message.contains("no justification"));
    assert!(!hygiene.waived);
    // The determinism finding is still waived — one mistake, one finding.
    let original = found
        .iter()
        .find(|f| f.rule == Rule::Determinism)
        .expect("original finding kept");
    assert!(original.waived);
}

#[test]
fn stale_and_unknown_rule_waivers_fire() {
    let found = findings(
        "crates/core/src/widget.rs",
        include_str!("fixtures/waiver_stale.rs"),
    );
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|f| f.rule == Rule::WaiverHygiene));
    assert!(found.iter().any(|f| f.message.contains("stale")));
    assert!(found.iter().any(|f| f.message.contains("unknown rule")));
}

#[test]
fn waiver_hygiene_findings_cannot_be_waived() {
    let source = format!(
        "{} allow(waiver-hygiene): please\npub fn f() {{}}\n",
        "// htd-lint:"
    );
    let found = findings("crates/core/src/widget.rs", &source);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, Rule::WaiverHygiene);
    assert!(found[0].message.contains("cannot be waived"));
}

// ------------------------------------------------------------------- workspace

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let report = lint_workspace(&root, &LintConfig::default()).expect("workspace walk succeeds");
    assert!(report.files_scanned > 100, "walk found the workspace");
    let offending: Vec<String> = report
        .unwaived()
        .map(|f| format!("{}:{}: {}: {}", f.file, f.line, f.rule.name(), f.message))
        .collect();
    assert!(
        offending.is_empty(),
        "workspace must stay lint-clean (fix the code or add a justified waiver):\n{}",
        offending.join("\n")
    );
}

#[test]
fn json_report_is_stable_and_parseable_shaped() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let report = lint_workspace(&root, &LintConfig::default()).expect("workspace walk succeeds");
    let json = report.render_json();
    assert!(json.starts_with("{\"findings\":["));
    assert!(json.trim_end().ends_with('}'));
    assert!(json.contains("\"files_scanned\":"));
    assert!(json.contains("\"unwaived\":0"));
    // Waived workspace findings appear with their justifications.
    assert!(json.contains("\"waived\":true"));
    assert!(json.contains("\"justification\":\""));
}
