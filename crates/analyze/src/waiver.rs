//! Inline waiver pragmas.
//!
//! A finding can be waived — never silenced — with a comment of the form
//!
//! ```text
//! // htd-lint: allow(<rule>): <justification>
//! ```
//!
//! either trailing on the offending line or on its own line directly above
//! it.  The justification is mandatory: a waiver without one is itself a
//! finding (rule `waiver-hygiene`), and so is a waiver naming an unknown
//! rule or one that never matches a finding (a stale waiver must be deleted,
//! not carried along).
//!
//! Only plain `//` and `/* … */` comments carry waivers: doc comments
//! (`///`, `//!`, `/**`, `/*!`) are rendered documentation, where the pragma
//! text may legitimately appear as an *example* (this very file does).

use crate::lexer::Token;
use crate::{Finding, Rule};

/// The marker every waiver comment carries.
pub const MARKER: &str = "htd-lint:";

/// One parsed waiver pragma.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The rule this waiver applies to.
    pub rule: Rule,
    /// The line the waiver comment sits on.
    pub comment_line: u32,
    /// The source line whose findings this waiver covers.
    pub target_line: u32,
    /// The mandatory justification text (may be empty — which is itself
    /// reported as a `waiver-hygiene` finding, but the waiver still marks
    /// its target as waived so one mistake yields one finding, not two).
    pub justification: String,
    /// Whether any finding actually matched this waiver.
    pub used: bool,
}

/// Scans the token stream for waiver pragmas.  Returns the parsed waivers
/// plus the `waiver-hygiene` findings for malformed ones.
pub fn collect(rel_path: &str, tokens: &[Token]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for (idx, token) in tokens.iter().enumerate() {
        if !token.is_comment() || is_doc_comment(&token.text) {
            continue;
        }
        let Some(marker_at) = token.text.find(MARKER) else {
            continue;
        };
        let rest = token.text[marker_at + MARKER.len()..]
            .trim()
            .trim_end_matches("*/")
            .trim();
        match parse_body(rest) {
            Ok((rule_name, justification)) => {
                let Some(rule) = Rule::from_name(rule_name) else {
                    findings.push(Finding::hygiene(
                        rel_path,
                        token.line,
                        format!("waiver names unknown rule `{rule_name}`"),
                    ));
                    continue;
                };
                if rule == Rule::WaiverHygiene {
                    findings.push(Finding::hygiene(
                        rel_path,
                        token.line,
                        "`waiver-hygiene` findings cannot be waived".to_string(),
                    ));
                    continue;
                }
                if justification.is_empty() {
                    findings.push(Finding::hygiene(
                        rel_path,
                        token.line,
                        format!("waiver for `{}` has no justification", rule.name()),
                    ));
                }
                waivers.push(Waiver {
                    rule,
                    comment_line: token.line,
                    target_line: target_line(tokens, idx),
                    justification: justification.to_string(),
                    used: false,
                });
            }
            Err(message) => findings.push(Finding::hygiene(rel_path, token.line, message)),
        }
    }
    (waivers, findings)
}

fn is_doc_comment(text: &str) -> bool {
    // `//!`, `/*!` and `///`, `/**` — but not the bare delimiters `//`
    // and `/**/`-style plain comments themselves.
    text.starts_with("//!")
        || text.starts_with("/*!")
        || (text.starts_with("///") && !text.starts_with("////"))
        || (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
}

/// Parses `allow(<rule>): <justification>`; the justification may be absent
/// (reported by the caller).
fn parse_body(rest: &str) -> Result<(&str, &str), String> {
    let Some(open) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "malformed waiver: expected `{MARKER} allow(<rule>): <justification>`"
        ));
    };
    let Some(close) = open.find(')') else {
        return Err("malformed waiver: unclosed `allow(`".to_string());
    };
    let rule_name = open[..close].trim();
    let tail = open[close + 1..].trim();
    let justification = tail.strip_prefix(':').map_or("", str::trim);
    Ok((rule_name, justification))
}

/// The line a waiver at token index `idx` covers: its own line when code
/// shares it (a trailing waiver), otherwise the next line below that carries
/// a non-comment token.
fn target_line(tokens: &[Token], idx: usize) -> u32 {
    let comment_line = tokens[idx].line;
    let trailing = tokens[..idx]
        .iter()
        .rev()
        .take_while(|t| t.end_line >= comment_line)
        .any(|t| !t.is_comment() && t.line <= comment_line && t.end_line >= comment_line);
    if trailing {
        return comment_line;
    }
    tokens[idx + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map_or(comment_line, |t| t.line)
}

/// Marks findings covered by a waiver as waived, then reports every waiver
/// that covered nothing as a stale-waiver finding.
pub fn apply(rel_path: &str, mut waivers: Vec<Waiver>, findings: &mut Vec<Finding>) {
    for finding in findings.iter_mut() {
        if finding.rule == Rule::WaiverHygiene {
            continue;
        }
        if let Some(waiver) = waivers
            .iter_mut()
            .find(|w| w.rule == finding.rule && w.target_line == finding.line)
        {
            waiver.used = true;
            finding.waived = true;
            finding.justification = Some(waiver.justification.clone());
        }
    }
    for waiver in waivers.iter().filter(|w| !w.used) {
        findings.push(Finding::hygiene(
            rel_path,
            waiver.comment_line,
            format!(
                "stale waiver: no `{}` finding on line {}",
                waiver.rule.name(),
                waiver.target_line
            ),
        ));
    }
}
