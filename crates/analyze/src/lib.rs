//! # htd-analyze
//!
//! The dependency-free workspace invariant checker behind `htd lint`.
//!
//! The toolkit's central guarantee — byte-identical detection reports across
//! every worker count, pipelining mode, backend and tenant mix — rests on
//! implementation invariants that `rustc` cannot check: no wall-clock read
//! may leak into the report merge path, every `unsafe` block at the FFI seam
//! must be audited, configuration must flow through the strict `HTD_*`
//! parsers, and statistics aggregation must notice new counters at compile
//! time.  This crate makes those reviewer conventions mechanically
//! checkable: a hand-rolled Rust token scanner (same ethos as the in-tree
//! JSON/HTTP/FxHash) walks every workspace `.rs` file and enforces a
//! deny-by-default rule set with `file:line` findings.
//!
//! ## The rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-audit` | `unsafe` appears only in `crates/sat/src/ipasir.rs`, `crates/ipasir-shim/`, `crates/cli/src/signal.rs` and the counting-allocator test `crates/sat/tests/clone_allocations.rs`; every audited use carries an adjacent `// SAFETY:` comment (or `# Safety` doc section); every crate root carries `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`. |
//! | `determinism` | `Instant::now`, `SystemTime::now`, `thread::sleep` and `Ordering::Relaxed` appear only in the timing allowlist (`crates/sat/src/budget.rs`, `crates/sat/src/portfolio.rs` race telemetry, `crates/serve/`, `crates/bench/`, the criterion shim and `examples/`) — time never influences the merge path.  Test code is exempt. |
//! | `strict-env` | `env::var("HTD_…")` appears only in the designated strict-parsing modules (`htd-serve` config, `htd-serve` fault harness, `CheckerOptions`, `SessionBuilder`, `PropertyScheduler`), which reject malformed values loudly. |
//! | `exhaustive-stats` | inside `accumulate*`/`delta_since`/`normalized`, a `SolverStats`/`SessionStats`/`RaceStats` struct pattern or literal must not use `..` — a new counter must be a compile error, never a silently dropped value (the exact bug class PR 4 fixed by hand). |
//! | `serve-panic-hygiene` | `unwrap()`/`expect()` are forbidden in the request-handling modules of `htd-serve` (`server.rs`, `http.rs`, `json.rs`, `queue.rs`, `cache.rs`); a tenant request settles with a structured error, never a panic.  Test code is exempt. |
//! | `waiver-hygiene` | waiver pragmas themselves: a waiver without a justification, naming an unknown rule, or matching no finding is a finding.  Not waivable. |
//!
//! ## Waiver pragma grammar
//!
//! ```text
//! // htd-lint: allow(<rule>): <justification>
//! ```
//!
//! placed trailing on the offending line or on its own line directly above
//! it.  A waiver *marks* the finding as waived (it still appears in `--json`
//! output with its justification); it never hides it.  The justification is
//! mandatory and should say *why the invariant holds anyway* — e.g.
//! `// htd-lint: allow(determinism): duration only feeds PropertyStats.duration, zeroed by normalized()`.
//!
//! ## Adding a rule
//!
//! 1. Add a variant to [`Rule`] and its name in [`Rule::name`]/[`Rule::from_name`].
//! 2. Write the matcher in `rules.rs` as a function over [`rules::FileContext`]
//!    (token sequences via `ctx` helpers; use `in_test_code` if test code is
//!    exempt) and call it from `rules::run_all`.
//! 3. Extend [`LintConfig`] with any allowlist the rule needs.
//! 4. Add one firing and one clean fixture under `tests/fixtures/` plus a
//!    case in `tests/lint_rules.rs`, and fix (or justify-waive) everything
//!    the rule flags in the workspace — `workspace_is_lint_clean` enforces
//!    that the tree stays clean from then on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod waiver;
pub mod walk;

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// The lint rules.  See the crate docs for the invariant each one enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Audited `unsafe`: allowlisted modules, `SAFETY:` comments, crate-root
    /// `forbid/deny(unsafe_code)` coverage.
    UnsafeAudit,
    /// No wall clock, sleeps or relaxed atomics outside the timing modules.
    Determinism,
    /// `HTD_*` environment reads only through the strict parsers.
    StrictEnv,
    /// No `..` rest patterns in stats aggregation.
    ExhaustiveStats,
    /// No `unwrap`/`expect` on serve request paths.
    ServePanicHygiene,
    /// Malformed, unjustified or stale waiver pragmas.
    WaiverHygiene,
}

impl Rule {
    /// The kebab-case rule name used in findings and waiver pragmas.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::Determinism => "determinism",
            Rule::StrictEnv => "strict-env",
            Rule::ExhaustiveStats => "exhaustive-stats",
            Rule::ServePanicHygiene => "serve-panic-hygiene",
            Rule::WaiverHygiene => "waiver-hygiene",
        }
    }

    /// Parses a rule name (as written in a waiver pragma).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        Some(match name {
            "unsafe-audit" => Rule::UnsafeAudit,
            "determinism" => Rule::Determinism,
            "strict-env" => Rule::StrictEnv,
            "exhaustive-stats" => Rule::ExhaustiveStats,
            "serve-panic-hygiene" => Rule::ServePanicHygiene,
            "waiver-hygiene" => Rule::WaiverHygiene,
            _ => return None,
        })
    }
}

/// One lint finding with its `file:line` anchor.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative file path (`/` separators).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// What is wrong and what the invariant demands instead.
    pub message: String,
    /// Whether a waiver pragma covers this finding.
    pub waived: bool,
    /// The waiver's justification, when waived.
    pub justification: Option<String>,
}

impl Finding {
    fn new(rule: Rule, file: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
            waived: false,
            justification: None,
        }
    }

    fn hygiene(file: &str, line: u32, message: String) -> Finding {
        Finding::new(Rule::WaiverHygiene, file, line, message)
    }
}

/// Allowlists and scoping for the rules.  [`LintConfig::default`] is the
/// repo's committed policy; tests build custom configs to exercise rules on
/// fixture files.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Modules where `unsafe` may appear (exact file, or `dir/` prefix).
    pub unsafe_allowlist: Vec<String>,
    /// Crate roots exempt from the `forbid/deny(unsafe_code)` requirement
    /// (the IPASIR shim *is* the FFI seam — its whole crate is unsafe).
    pub unsafe_attr_exempt: Vec<String>,
    /// Modules where wall-clock reads / sleeps / relaxed atomics are legal.
    pub determinism_allowlist: Vec<String>,
    /// Modules allowed to read `HTD_*` environment variables directly.
    pub strict_env_allowlist: Vec<String>,
    /// The request-handling modules of `htd-serve` covered by
    /// `serve-panic-hygiene`.
    pub serve_request_paths: Vec<String>,
}

fn owned(entries: &[&str]) -> Vec<String> {
    entries.iter().map(|&e| e.to_string()).collect()
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            unsafe_allowlist: owned(&[
                "crates/sat/src/ipasir.rs",
                "crates/ipasir-shim/",
                "crates/cli/src/signal.rs",
                // The clone-cost regression test installs a counting
                // `GlobalAlloc` — inherently unsafe, and audited like the
                // FFI seams.
                "crates/sat/tests/clone_allocations.rs",
            ]),
            unsafe_attr_exempt: owned(&["crates/ipasir-shim/"]),
            determinism_allowlist: owned(&[
                "crates/sat/src/budget.rs",
                "crates/sat/src/portfolio.rs",
                "crates/serve/",
                "crates/bench/",
                // The vendored criterion shim is a wall-clock measurement
                // harness, and the examples print timing tables; neither
                // feeds a detection report.
                "crates/shims/criterion/",
                "examples/",
            ]),
            strict_env_allowlist: owned(&[
                "crates/serve/src/lib.rs",
                "crates/serve/src/fault.rs",
                "crates/ipc/src/checker.rs",
                "crates/core/src/session.rs",
                "crates/core/src/scheduler.rs",
            ]),
            serve_request_paths: owned(&[
                "crates/serve/src/server.rs",
                "crates/serve/src/http.rs",
                "crates/serve/src/json.rs",
                "crates/serve/src/queue.rs",
                "crates/serve/src/cache.rs",
            ]),
        }
    }
}

/// The result of linting a file set.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Every finding, waived ones included, sorted by `(file, line)`.
    pub findings: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings not covered by a waiver — the ones that fail the lint.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Whether the lint passes (no unwaived findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.unwaived().next().is_none()
    }

    /// Human-readable rendering: one `file:line: rule: message` per unwaived
    /// finding, then a summary line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.unwaived() {
            let _ = writeln!(
                out,
                "{}:{}: {}: {}",
                f.file,
                f.line,
                f.rule.name(),
                f.message
            );
        }
        let waived = self.findings.len() - self.unwaived().count();
        let _ = writeln!(
            out,
            "htd lint: {} finding(s), {} waived, {} files scanned",
            self.unwaived().count(),
            waived,
            self.files_scanned
        );
        out
    }

    /// Machine-readable rendering (consumed by the `static-analysis` CI
    /// leg): a stable JSON object with every finding, waived ones included.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{},\"waived\":{}",
                json_string(f.rule.name()),
                json_string(&f.file),
                f.line,
                json_string(&f.message),
                f.waived
            );
            match &f.justification {
                Some(j) => {
                    let _ = write!(out, ",\"justification\":{}}}", json_string(j));
                }
                None => out.push_str(",\"justification\":null}"),
            }
        }
        let unwaived = self.unwaived().count();
        let _ = write!(
            out,
            "],\"files_scanned\":{},\"waived\":{},\"unwaived\":{}}}",
            self.files_scanned,
            self.findings.len() - unwaived,
            unwaived
        );
        out.push('\n');
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints one source file presented under a workspace-relative path.  The
/// path decides rule scoping (allowlists, test exemptions), which is how the
/// fixture suite exercises path-scoped rules on files that live elsewhere.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str, config: &LintConfig) -> Vec<Finding> {
    let tokens = lexer::lex(source);
    let ctx = rules::FileContext::new(rel_path, &tokens);
    let mut findings = rules::run_all(&ctx, config);
    let (waivers, mut hygiene) = waiver::collect(rel_path, &tokens);
    waiver::apply(rel_path, waivers, &mut findings);
    findings.append(&mut hygiene);
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Lints every `.rs` file under `root` (the workspace checkout) with the
/// given policy.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> io::Result<LintReport> {
    let files = walk::rust_files(root)?;
    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        let rel = walk::relative_path(root, path);
        report.findings.extend(lint_source(&rel, &source, config));
    }
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(report)
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
