//! The rule set.
//!
//! Every rule is a pure function from a [`FileContext`] (token stream plus
//! per-line classification) to findings.  Rules are deliberately syntactic:
//! they match short token sequences, so they cannot be fooled by strings or
//! comments (the lexer already classified those), and they stay fast and
//! dependency-free.  The cost of that choice — no type resolution — is paid
//! with narrow, documented patterns and per-site waiver pragmas.

use crate::lexer::{Token, TokenKind};
use crate::{Finding, LintConfig, Rule};

/// Per-line classification used by comment-adjacency checks.
#[derive(Clone, Copy, Default)]
struct LineFlags {
    /// The line carries at least one non-comment token.
    has_code: bool,
    /// Every non-comment token on the line belongs to an attribute.
    attr_only: bool,
    /// The line carries (or is spanned by) a comment.
    has_comment: bool,
    /// The line carries (or is spanned by) a comment containing `SAFETY:`
    /// or a `# Safety` doc heading.
    safety: bool,
}

/// A tokenized file plus the precomputed views the rules share.
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    tokens: &'a [Token],
    /// Indices of non-comment tokens, in source order.
    code: Vec<usize>,
    lines: Vec<LineFlags>,
    /// Line spans of `#[cfg(test)] mod … { … }` bodies.
    test_regions: Vec<(u32, u32)>,
    /// The file lives under a `tests/`, `benches/` or shim-`examples` tree.
    is_test_file: bool,
}

impl<'a> FileContext<'a> {
    /// Builds the context for one file.
    pub fn new(rel_path: &'a str, tokens: &'a [Token]) -> Self {
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let max_line = tokens.iter().map(|t| t.end_line).max().unwrap_or(0) as usize;
        let mut lines = vec![LineFlags::default(); max_line + 2];
        let attr_tokens = attribute_token_set(tokens, &code);
        for (idx, token) in tokens.iter().enumerate() {
            if token.is_comment() {
                let safety = token.text.contains("SAFETY:") || token.text.contains("# Safety");
                for line in token.line..=token.end_line {
                    lines[line as usize].has_comment = true;
                    lines[line as usize].safety |= safety;
                }
            } else {
                let flags = &mut lines[token.line as usize];
                if !flags.has_code {
                    flags.attr_only = true;
                }
                flags.has_code = true;
                flags.attr_only &= attr_tokens[idx];
            }
        }
        let is_test_file = ["tests/", "benches/"]
            .iter()
            .any(|dir| rel_path.starts_with(dir) || rel_path.contains(&format!("/{dir}")));
        let test_regions = cfg_test_regions(tokens, &code);
        FileContext {
            rel_path,
            tokens,
            code,
            lines,
            test_regions,
            is_test_file,
        }
    }

    fn code_token(&self, code_idx: usize) -> Option<&Token> {
        self.code.get(code_idx).map(|&i| &self.tokens[i])
    }

    /// Whether `line` is test-only code: a file under `tests/`/`benches/`,
    /// or inside an in-file `#[cfg(test)]` module.
    fn in_test_code(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(start, end)| line >= start && line <= end)
    }

    /// Whether an `unsafe` (or any construct) at `line` is documented by an
    /// adjacent `// SAFETY:` comment or `# Safety` doc heading: trailing on
    /// the same line, or directly above with only comments and attribute
    /// lines in between (a blank line breaks adjacency on purpose — the
    /// justification must sit with the code it justifies).
    fn safety_covered(&self, line: u32) -> bool {
        if self.flags(line).safety {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let f = self.flags(l);
            if f.safety {
                return true;
            }
            if f.has_code && !f.attr_only {
                return false;
            }
            if !f.has_code && !f.has_comment {
                return false;
            }
            l -= 1;
        }
        false
    }

    fn flags(&self, line: u32) -> LineFlags {
        self.lines.get(line as usize).copied().unwrap_or_default()
    }
}

/// Marks which token indices belong to attribute syntax (`#[…]` / `#![…]`).
fn attribute_token_set(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut attr = vec![false; tokens.len()];
    let mut k = 0;
    while k < code.len() {
        if tokens[code[k]].is_punct('#') {
            let mut j = k + 1;
            if j < code.len() && tokens[code[j]].is_punct('!') {
                j += 1;
            }
            if j < code.len() && tokens[code[j]].is_punct('[') {
                let mut depth = 0usize;
                let start = k;
                while j < code.len() {
                    if tokens[code[j]].is_punct('[') {
                        depth += 1;
                    } else if tokens[code[j]].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                for &idx in &code[start..=j.min(code.len() - 1)] {
                    attr[idx] = true;
                }
                k = j + 1;
                continue;
            }
        }
        k += 1;
    }
    attr
}

/// Finds the line spans of `#[cfg(test)] mod name { … }` bodies.
fn cfg_test_regions(tokens: &[Token], code: &[usize]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut k = 0;
    while k < code.len() {
        let Some(after_attr) = match_cfg_test_attr(tokens, code, k) else {
            k += 1;
            continue;
        };
        // Skip any further attributes between `#[cfg(test)]` and the item.
        let mut j = after_attr;
        while let Some(next) = skip_one_attr(tokens, code, j) {
            j = next;
        }
        if j + 1 < code.len()
            && tokens[code[j]].is_ident("mod")
            && tokens[code[j + 1]].kind == TokenKind::Ident
        {
            // Find the opening brace and match it.
            let mut b = j + 2;
            while b < code.len() && !tokens[code[b]].is_punct('{') && !tokens[code[b]].is_punct(';')
            {
                b += 1;
            }
            if b < code.len() && tokens[code[b]].is_punct('{') {
                if let Some(close) = match_brace(tokens, code, b) {
                    regions.push((tokens[code[k]].line, tokens[code[close]].end_line));
                    k = close + 1;
                    continue;
                }
            }
        }
        k = after_attr;
    }
    regions
}

/// If code index `k` starts a `#[cfg(… test …)]` attribute (and not a
/// `cfg(not(…))`), returns the code index just past it.
fn match_cfg_test_attr(tokens: &[Token], code: &[usize], k: usize) -> Option<usize> {
    if !tokens[code[k]].is_punct('#') {
        return None;
    }
    let mut j = k + 1;
    if j < code.len() && tokens[code[j]].is_punct('!') {
        return None; // inner attribute, never a test-module gate
    }
    if j >= code.len() || !tokens[code[j]].is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    while j < code.len() {
        let t = &tokens[code[j]];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident {
            saw_cfg |= t.text == "cfg";
            saw_test |= t.text == "test";
            saw_not |= t.text == "not";
        }
        j += 1;
    }
    (saw_cfg && saw_test && !saw_not && j < code.len()).then_some(j + 1)
}

/// If code index `k` starts any attribute, returns the code index past it.
fn skip_one_attr(tokens: &[Token], code: &[usize], k: usize) -> Option<usize> {
    if k >= code.len() || !tokens[code[k]].is_punct('#') {
        return None;
    }
    let mut j = k + 1;
    if j < code.len() && tokens[code[j]].is_punct('!') {
        j += 1;
    }
    if j >= code.len() || !tokens[code[j]].is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    while j < code.len() {
        if tokens[code[j]].is_punct('[') {
            depth += 1;
        } else if tokens[code[j]].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// Matches the brace at code index `open` (which must be `{`), returning the
/// index of its closing `}`.
fn match_brace(tokens: &[Token], code: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (offset, &idx) in code[open..].iter().enumerate() {
        if tokens[idx].is_punct('{') {
            depth += 1;
        } else if tokens[idx].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(open + offset);
            }
        }
    }
    None
}

fn path_matches(rel_path: &str, entries: &[String]) -> bool {
    entries
        .iter()
        .any(|e| rel_path == e || (e.ends_with('/') && rel_path.starts_with(e.as_str())))
}

/// Runs every rule over one file.
pub fn run_all(ctx: &FileContext<'_>, config: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    unsafe_audit(ctx, config, &mut findings);
    determinism(ctx, config, &mut findings);
    strict_env(ctx, config, &mut findings);
    exhaustive_stats(ctx, &mut findings);
    serve_panic_hygiene(ctx, config, &mut findings);
    findings
}

/// How an `unsafe` keyword is used.
enum UnsafeUse {
    /// `unsafe { … }`, `unsafe impl`, `unsafe trait`, `unsafe fn name`,
    /// `unsafe extern "C" fn name`, `unsafe extern { … }` — all audited.
    Audited,
    /// `unsafe extern "C" fn(…)` in type position: a function-pointer type
    /// mentions unsafety without introducing any — exempt (calling through
    /// it still needs an audited `unsafe { … }` block).
    TypePosition,
}

fn classify_unsafe(ctx: &FileContext<'_>, k: usize) -> UnsafeUse {
    let at = |n: usize| ctx.code_token(k + n);
    let decl_or_type = |fn_offset: usize| match at(fn_offset + 1) {
        Some(t) if t.kind == TokenKind::Ident => UnsafeUse::Audited,
        _ => UnsafeUse::TypePosition,
    };
    match at(1) {
        Some(t) if t.is_ident("fn") => decl_or_type(1),
        Some(t) if t.is_ident("extern") => {
            // Optional ABI string between `extern` and `fn`/`{`.
            let mut j = 2;
            if at(j).is_some_and(|t| t.kind == TokenKind::Literal) {
                j += 1;
            }
            match at(j) {
                Some(t) if t.is_ident("fn") => decl_or_type(j),
                _ => UnsafeUse::Audited, // `unsafe extern { … }` block
            }
        }
        _ => UnsafeUse::Audited, // block, impl, trait — all need a SAFETY note
    }
}

/// **unsafe-audit** — `unsafe` may appear only in the allowlisted FFI/signal
/// modules, every audited use needs an adjacent `// SAFETY:` comment (or
/// `# Safety` doc section), and every crate root must carry
/// `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`.
fn unsafe_audit(ctx: &FileContext<'_>, config: &LintConfig, findings: &mut Vec<Finding>) {
    let rel = ctx.rel_path;
    let is_crate_root = rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs");
    if is_crate_root && !path_matches(rel, &config.unsafe_attr_exempt) && !has_unsafe_code_attr(ctx)
    {
        findings.push(Finding::new(
            Rule::UnsafeAudit,
            rel,
            1,
            "crate root lacks `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`".to_string(),
        ));
    }
    let allowed_module = path_matches(rel, &config.unsafe_allowlist);
    for k in 0..ctx.code.len() {
        let token = &ctx.tokens[ctx.code[k]];
        if !token.is_ident("unsafe") {
            continue;
        }
        if matches!(classify_unsafe(ctx, k), UnsafeUse::TypePosition) {
            continue;
        }
        if !allowed_module {
            findings.push(Finding::new(
                Rule::UnsafeAudit,
                rel,
                token.line,
                "`unsafe` outside the audited modules (sat/src/ipasir.rs, ipasir-shim, \
                 cli/src/signal.rs)"
                    .to_string(),
            ));
        }
        if !ctx.safety_covered(token.line) {
            findings.push(Finding::new(
                Rule::UnsafeAudit,
                rel,
                token.line,
                "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            ));
        }
    }
}

fn has_unsafe_code_attr(ctx: &FileContext<'_>) -> bool {
    let code = &ctx.code;
    let tokens = ctx.tokens;
    let mut k = 0;
    while k + 2 < code.len() {
        if tokens[code[k]].is_punct('#')
            && tokens[code[k + 1]].is_punct('!')
            && tokens[code[k + 2]].is_punct('[')
        {
            let mut depth = 0usize;
            let mut level = false;
            let mut lint = false;
            let mut j = k + 2;
            while j < code.len() {
                let t = &tokens[code[j]];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokenKind::Ident {
                    level |= t.text == "forbid" || t.text == "deny";
                    lint |= t.text == "unsafe_code";
                }
                j += 1;
            }
            if level && lint {
                return true;
            }
            k = j + 1;
            continue;
        }
        k += 1;
    }
    false
}

/// **determinism** — wall-clock reads, sleeps and relaxed atomics are
/// forbidden outside the allowlisted timing modules, so time can never
/// influence the report merge path.
fn determinism(ctx: &FileContext<'_>, config: &LintConfig, findings: &mut Vec<Finding>) {
    if path_matches(ctx.rel_path, &config.determinism_allowlist) {
        return;
    }
    const FORBIDDEN: &[(&str, &str, &str)] = &[
        ("Instant", "now", "`Instant::now` (wall clock)"),
        ("SystemTime", "now", "`SystemTime::now` (wall clock)"),
        ("thread", "sleep", "`thread::sleep`"),
        ("Ordering", "Relaxed", "`Ordering::Relaxed`"),
    ];
    for k in 0..ctx.code.len().saturating_sub(3) {
        for &(first, last, label) in FORBIDDEN {
            if ctx.tokens[ctx.code[k]].is_ident(first)
                && ctx.tokens[ctx.code[k + 1]].is_punct(':')
                && ctx.tokens[ctx.code[k + 2]].is_punct(':')
                && ctx.tokens[ctx.code[k + 3]].is_ident(last)
            {
                let line = ctx.tokens[ctx.code[k]].line;
                if ctx.in_test_code(line) {
                    continue;
                }
                findings.push(Finding::new(
                    Rule::Determinism,
                    ctx.rel_path,
                    line,
                    format!(
                        "{label} outside the timing allowlist (budget, portfolio, serve, bench)"
                    ),
                ));
            }
        }
    }
}

/// **strict-env** — `env::var("HTD_…")` may appear only in the designated
/// strict-parsing modules; everywhere else configuration must flow through
/// the `try_default_*` parsers that reject malformed values loudly.
fn strict_env(ctx: &FileContext<'_>, config: &LintConfig, findings: &mut Vec<Finding>) {
    if path_matches(ctx.rel_path, &config.strict_env_allowlist) {
        return;
    }
    for k in 3..ctx.code.len().saturating_sub(2) {
        let t = &ctx.tokens[ctx.code[k]];
        if !(t.is_ident("var") || t.is_ident("var_os")) {
            continue;
        }
        if !(ctx.tokens[ctx.code[k - 1]].is_punct(':')
            && ctx.tokens[ctx.code[k - 2]].is_punct(':')
            && ctx.tokens[ctx.code[k - 3]].is_ident("env"))
        {
            continue;
        }
        if !ctx.tokens[ctx.code[k + 1]].is_punct('(') {
            continue;
        }
        let arg = &ctx.tokens[ctx.code[k + 2]];
        if arg.kind == TokenKind::Literal && arg.text.starts_with("\"HTD_") {
            findings.push(Finding::new(
                Rule::StrictEnv,
                ctx.rel_path,
                t.line,
                format!(
                    "raw `env::{}({})` outside the strict-parsing modules",
                    t.text, arg.text
                ),
            ));
        }
    }
}

const STAT_TYPES: &[&str] = &["SolverStats", "SessionStats", "RaceStats"];

fn stats_fn_name(name: &str) -> bool {
    name == "delta_since"
        || name == "normalized"
        || name == "accumulate"
        || name.starts_with("accumulate_")
}

/// **exhaustive-stats** — inside `accumulate*`/`delta_since`/`normalized`,
/// destructuring or building a stats struct with a `..` rest pattern is
/// forbidden: a newly added counter must be a compile error there, never a
/// silently dropped value.
fn exhaustive_stats(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let code = &ctx.code;
    let tokens = ctx.tokens;
    let mut reported = Vec::new();
    let mut k = 0;
    while k + 1 < code.len() {
        if !(tokens[code[k]].is_ident("fn") && stats_fn_name(&tokens[code[k + 1]].text)) {
            k += 1;
            continue;
        }
        let fn_name = tokens[code[k + 1]].text.clone();
        // The first `{` before a `;` opens the body (a `;` first means a
        // bodyless trait-method declaration).
        let mut b = k + 2;
        while b < code.len() && !tokens[code[b]].is_punct('{') && !tokens[code[b]].is_punct(';') {
            b += 1;
        }
        if b >= code.len() || tokens[code[b]].is_punct(';') {
            k = b;
            continue;
        }
        let Some(close) = match_brace(tokens, code, b) else {
            break;
        };
        for i in b..close {
            let t = &tokens[code[i]];
            if t.kind == TokenKind::Ident
                && STAT_TYPES.contains(&t.text.as_str())
                && i + 1 < code.len()
                && tokens[code[i + 1]].is_punct('{')
            {
                scan_struct_group(ctx, i + 1, &fn_name, &t.text.clone(), &mut reported);
            }
        }
        k += 2;
    }
    for (line, fn_name, type_name) in reported {
        findings.push(Finding::new(
            Rule::ExhaustiveStats,
            ctx.rel_path,
            line,
            format!(
                "`..` in `{type_name}` inside `{fn_name}` — destructure every counter so a new \
                 field is a compile error, not a dropped value"
            ),
        ));
    }
}

/// Scans one `Type { … }` group (opened at code index `open`) for a `..`
/// rest pattern at the group's own brace level.
fn scan_struct_group(
    ctx: &FileContext<'_>,
    open: usize,
    fn_name: &str,
    type_name: &str,
    reported: &mut Vec<(u32, String, String)>,
) {
    let code = &ctx.code;
    let tokens = ctx.tokens;
    let (mut brace, mut paren, mut bracket) = (0i32, 0i32, 0i32);
    let mut i = open;
    while i < code.len() {
        let t = &tokens[code[i]];
        if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace == 0 {
                return;
            }
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('.')
            && brace == 1
            && paren == 0
            && bracket == 0
            && i + 1 < code.len()
            && tokens[code[i + 1]].is_punct('.')
            && (tokens[code[i - 1]].is_punct(',') || tokens[code[i - 1]].is_punct('{'))
        {
            let entry = (t.line, fn_name.to_string(), type_name.to_string());
            if !reported.contains(&entry) {
                reported.push(entry);
            }
            i += 1;
        }
        i += 1;
    }
}

/// **serve-panic-hygiene** — `unwrap()`/`expect()` are forbidden on the
/// request-handling modules of `htd-serve`: a tenant request must settle
/// with a structured error, never a panic.
fn serve_panic_hygiene(ctx: &FileContext<'_>, config: &LintConfig, findings: &mut Vec<Finding>) {
    if !path_matches(ctx.rel_path, &config.serve_request_paths) {
        return;
    }
    for k in 0..ctx.code.len().saturating_sub(2) {
        if !ctx.tokens[ctx.code[k]].is_punct('.') {
            continue;
        }
        let name = &ctx.tokens[ctx.code[k + 1]];
        if !(name.is_ident("unwrap") || name.is_ident("expect")) {
            continue;
        }
        if !ctx.tokens[ctx.code[k + 2]].is_punct('(') {
            continue;
        }
        if ctx.in_test_code(name.line) {
            continue;
        }
        findings.push(Finding::new(
            Rule::ServePanicHygiene,
            ctx.rel_path,
            name.line,
            format!(
                "`.{}()` on a serve request path — settle the request with a structured error \
                 instead of panicking",
                name.text
            ),
        ));
    }
}
