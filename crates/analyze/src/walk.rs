//! Workspace file discovery.
//!
//! A hand-rolled recursive walk (no `walkdir`, matching the repo's
//! dependency-free ethos) that collects every `.rs` file under the
//! workspace root in a deterministic (sorted) order, skipping build output
//! (`target/`), VCS metadata (`.git/`) and lint-fixture trees (any directory
//! named `fixtures` — those files *deliberately* violate the rules).

use std::io;
use std::path::{Path, PathBuf};

/// Directory names the walk never descends into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Collects every `.rs` file under `root`, sorted by path.
///
/// # Errors
///
/// Propagates the first I/O error hit while reading a directory.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    visit(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn visit(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let file_type = entry.file_type()?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if file_type.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            visit(&path, files)?;
        } else if file_type.is_file() && name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative form of `path` with `/` separators (the form every
/// allowlist entry and finding uses).
#[must_use]
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
