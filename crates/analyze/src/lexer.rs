//! A hand-rolled Rust token scanner.
//!
//! This is not a full Rust lexer — it is the minimal faithful token stream the
//! lint rules need: identifiers, lifetimes, literals (including raw strings,
//! byte strings and nested block comments, which is where naive regex-style
//! scanners silently mis-fire), comments with their line spans, and single
//! character punctuation.  Everything the rules match (`unsafe`,
//! `Instant::now`, `env::var("HTD_…")`, `..` inside a struct pattern,
//! `.unwrap()`) is a short token sequence over this stream, so a keyword
//! inside a string literal or a commented-out call can never produce a
//! finding.

/// The coarse classification of a scanned token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `fn`, `SolverStats`, …).  Raw
    /// identifiers keep their `r#` prefix so `r#unsafe` never matches the
    /// `unsafe` keyword.
    Ident,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// A literal: number, char, byte, string (the text keeps its quotes and
    /// prefix, so a string literal always starts with `"`, `r`, `b` or `c`).
    Literal,
    /// A `// …` comment (doc comments included).
    LineComment,
    /// A `/* … */` comment (possibly nested, possibly spanning lines).
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One scanned token with its source line span (1-based).
#[derive(Clone, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The raw source text of the token.
    pub text: String,
    /// The line the token starts on.
    pub line: u32,
    /// The line the token ends on (differs from `line` only for block
    /// comments and multi-line string literals).
    pub end_line: u32,
}

impl Token {
    /// Whether the token is a comment of either flavour.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is the identifier/keyword `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Scans `source` into a token stream.  The scanner never fails: anything it
/// does not recognise becomes single-character punctuation, which is safe for
/// every rule (rules only ever match known sequences).
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.lifetime_or_char(),
                b'r' | b'b' | b'c' => {
                    if !self.prefixed_literal_or_raw_ident() {
                        self.ident();
                    }
                }
                _ if is_ident_start(c) => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    self.push(TokenKind::Punct, self.pos, self.pos + 1, self.line);
                    self.pos += 1;
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize, start_line: u32) {
        self.tokens.push(Token {
            kind,
            text: self.src[start..end].to_string(),
            line: start_line,
            end_line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start, self.pos, self.line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        let mut depth = 1usize;
        self.pos += 2;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::BlockComment, start, self.pos, start_line);
    }

    /// A `"…"` string with escapes, starting the token at `token_start`
    /// (which may be earlier than the quote when the string has a `b`/`c`
    /// prefix).  `self.pos` must point at the opening quote.
    fn string(&mut self, token_start: usize) {
        let start_line = self.line;
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push(
            TokenKind::Literal,
            token_start,
            self.pos.min(self.bytes.len()),
            start_line,
        );
    }

    /// A raw string body `"…"#…` with `hashes` trailing hashes; `self.pos`
    /// must point at the opening quote.
    fn raw_string(&mut self, token_start: usize, hashes: usize) {
        let start_line = self.line;
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    let tail = &self.bytes[self.pos + 1..];
                    if tail.len() >= hashes && tail[..hashes].iter().all(|&b| b == b'#') {
                        self.pos += 1 + hashes;
                        break;
                    }
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(
            TokenKind::Literal,
            token_start,
            self.pos.min(self.bytes.len()),
            start_line,
        );
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`,
    /// `c"…"`, `cr#"…"#`.  Returns false when the `r`/`b`/`c` is just the
    /// start of a plain identifier.
    fn prefixed_literal_or_raw_ident(&mut self) -> bool {
        let start = self.pos;
        let first = self.bytes[self.pos];
        let mut j = self.pos + 1;
        let mut raw = first == b'r';
        // A two-letter prefix: `br` / `cr`.
        if (first == b'b' || first == b'c') && self.bytes.get(j) == Some(&b'r') {
            raw = true;
            j += 1;
        }
        // Byte char literal `b'…'`.
        if first == b'b' && self.bytes.get(j) == Some(&b'\'') {
            self.pos = j + 1;
            self.char_literal_body(start);
            return true;
        }
        if raw {
            let mut hashes = 0usize;
            while self.bytes.get(j + hashes) == Some(&b'#') {
                hashes += 1;
            }
            if self.bytes.get(j + hashes) == Some(&b'"') {
                self.pos = j + hashes;
                self.raw_string(start, hashes);
                return true;
            }
            // `r#ident` — a raw identifier (exactly `r` + one `#`).
            if first == b'r'
                && hashes == 1
                && self.bytes.get(j + 1).is_some_and(|&b| is_ident_start(b))
            {
                self.pos = j + 1;
                while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                    self.pos += 1;
                }
                self.push(TokenKind::Ident, start, self.pos, self.line);
                return true;
            }
            return false;
        }
        // Plain `b"…"` / `c"…"`.
        if self.bytes.get(j) == Some(&b'"') {
            self.pos = j;
            self.string(start);
            return true;
        }
        false
    }

    /// The body of a char/byte-char literal; `self.pos` points past the
    /// opening quote and `token_start` at the token's first byte.
    fn char_literal_body(&mut self, token_start: usize) {
        let start_line = self.line;
        if self.bytes.get(self.pos) == Some(&b'\\') {
            self.pos += 2;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos = (self.pos + 1).min(self.bytes.len());
        } else {
            // One (possibly multi-byte) character, then the closing quote.
            if let Some(ch) = self.src[self.pos..].chars().next() {
                self.pos += ch.len_utf8();
            }
            if self.bytes.get(self.pos) == Some(&b'\'') {
                self.pos += 1;
            }
        }
        self.push(TokenKind::Literal, token_start, self.pos, start_line);
    }

    fn lifetime_or_char(&mut self) {
        let start = self.pos;
        // `'\…'` is always a char literal.
        if self.peek(1) == Some(b'\\') {
            self.pos += 1;
            self.char_literal_body(start);
            return;
        }
        // `'x'` (one character, ASCII or not, then a quote) is a char
        // literal; everything else (`'a`, `'static`, `'_`) is a lifetime.
        if let Some(ch) = self.src[start + 1..].chars().next() {
            if self.bytes.get(start + 1 + ch.len_utf8()) == Some(&b'\'') {
                self.pos += 1;
                self.char_literal_body(start);
                return;
            }
        }
        self.pos += 1;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.push(TokenKind::Lifetime, start, self.pos, self.line);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, self.pos, self.line);
    }

    fn number(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        // A fractional part — but never eat `..` (a range) or `.method()`.
        if self.bytes.get(self.pos) == Some(&b'.')
            && self
                .bytes
                .get(self.pos + 1)
                .is_some_and(|&b| b.is_ascii_digit())
        {
            self.pos += 1;
            while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                self.pos += 1;
            }
        }
        self.push(TokenKind::Literal, start, self.pos, self.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, String)> {
        lex(source).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn keywords_in_strings_and_comments_are_not_idents() {
        let toks = kinds(r#"let x = "unsafe { }"; // unsafe fn"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("unsafe fn")));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r###"let s = r#"an "unsafe" quote"#; let t = 1;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("unsafe")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "t"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Literal && t.starts_with('\''))
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("/* outer /* inner */ still */ fn after() {}");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "after"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("let r = 0..stats.len(); let f = 1.5e3;");
        let dots = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Punct && t == ".")
            .count();
        // `0..stats` contributes two dot puncts, `stats.len` one.
        assert_eq!(dots, 3);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "1.5e3"));
    }

    #[test]
    fn raw_identifiers_keep_their_prefix() {
        let toks = kinds("let r#unsafe = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#unsafe"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn block_comment_line_spans_cover_every_line() {
        let toks = lex("/* a\n b\n c */\nfn x() {}");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].end_line, 3);
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn byte_strings_and_byte_chars_lex_as_literals() {
        let toks = kinds(r##"let a = b"SAFETY"; let b = b'\n'; let c = br#"x"#;"##);
        let lits = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .count();
        assert_eq!(lits, 3);
    }
}
