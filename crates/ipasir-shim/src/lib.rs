//! The bundled CDCL solver exported through the **IPASIR** C ABI.
//!
//! Built as a `cdylib` (`libipasir_htd.so`), this crate turns the toolkit's
//! own [`Solver`] into a standard incremental solver library: exactly as
//! `htd sat` made the binary its own DIMACS reference solver for the
//! process backend, this shim makes it its own *incremental* reference
//! library for the dynamic-library backend — so
//! `--backend ipasir:target/release/libipasir_htd.so` and the equivalence
//! suite run without any third-party solver or network access.
//!
//! # Exported ABI
//!
//! The standard IPASIR subset ([spec](https://github.com/biotomas/ipasir)):
//!
//! * `ipasir_signature` — solver name/version string.
//! * `ipasir_init` / `ipasir_release` — create/destroy one solver handle
//!   (multiple concurrently live handles are supported, as IPASIR
//!   requires).
//! * `ipasir_add` — stream clause literals (1-based signed ints, clauses
//!   terminated by 0); variables grow on demand.
//! * `ipasir_assume` — register a per-query assumption.
//! * `ipasir_solve` — solve under the registered assumptions; returns 10
//!   (SAT), 20 (UNSAT) or 0 (terminated by the callback).  Assumptions are
//!   cleared afterwards.
//! * `ipasir_val` — truth value of a literal in the SAT state: `lit`,
//!   `-lit`, or 0 for a don't-care.
//! * `ipasir_failed` — after UNSAT, whether an assumption was used in the
//!   refutation.  This shim over-approximates (every assumption of the
//!   failed query reports 1), which the spec permits.
//! * `ipasir_set_terminate` — install the termination poll; wired to
//!   [`Solver::set_interrupt`].
//! * `ipasir_set_learn` — accepted and ignored (the shim exports no learnt
//!   clauses).
//!
//! # The `ipasir_htd_*` extensions
//!
//! Three optional extra symbols expose the solver's decision-variable
//! masking so the `IpasirBackend` in `htd-sat` can focus the search on a
//! query's cone exactly like the builtin backend does (standard IPASIR
//! clients never look these up and are unaffected):
//!
//! * `ipasir_htd_mask_all_decisions(S)` — mark every variable ineligible
//!   for branching ([`Solver::mask_all_decisions`]).
//! * `ipasir_htd_set_decision(S, var, eligible)` — per-variable eligibility
//!   ([`Solver::set_decision_var`]), `var` 1-based as everywhere in IPASIR.
//! * `ipasir_htd_begin_new_query(S)` — reset the search heuristics between
//!   unrelated queries ([`Solver::reset_decision_heuristics`]).
//! * `ipasir_htd_clone(S) -> S'` — snapshot the handle in O(bytes): the
//!   solver's arena-backed clause and watcher stores make `Solver::clone` a
//!   fixed number of flat-buffer memcpys, and the returned handle is fully
//!   independent (released through `ipasir_release` like any other).  The
//!   `IpasirBackend` fork uses this instead of replaying the clause log
//!   over the ABI clause by clause.
//!
//! With the extensions in play a solver handle receives the *same*
//! operation sequence as a builtin solver shard, which makes detection
//! reports byte-identical across `--backend builtin` and the shim (checked
//! by `tests/ipasir_equivalence.rs` on every bundled benchmark).
//!
//! # Safety
//!
//! Every exported function takes the opaque handle created by
//! `ipasir_init`; passing anything else is undefined behaviour, exactly as
//! in every C IPASIR library.  The handle is not internally synchronised —
//! IPASIR requires the *client* to drive one handle from one thread at a
//! time (distinct handles are fully independent).

use std::os::raw::{c_char, c_int, c_void};
use std::sync::Arc;

use htd_sat::{Lit, SolveResult, Solver, Var};

/// The state behind one `ipasir_init` handle.
pub struct ShimSolver {
    solver: Solver,
    /// Literals of the clause currently being streamed by `ipasir_add`.
    clause: Vec<Lit>,
    /// Assumptions registered for the next `ipasir_solve`.
    assumptions: Vec<Lit>,
    /// The assumptions of the most recent UNSAT query (the over-approximate
    /// `ipasir_failed` set); empty in every other state.
    failed: Vec<c_int>,
}

impl ShimSolver {
    fn new() -> Self {
        ShimSolver {
            solver: Solver::new(),
            clause: Vec::new(),
            assumptions: Vec::new(),
            failed: Vec::new(),
        }
    }

    /// Converts an IPASIR literal (1-based, signed) to a [`Lit`], growing
    /// the variable space on demand as the spec requires.
    fn import(&mut self, lit_or_zero: c_int) -> Lit {
        let index = lit_or_zero.unsigned_abs() - 1;
        while self.solver.num_vars() <= index as usize {
            self.solver.new_var();
        }
        Lit::new(Var::from_index(index), lit_or_zero < 0)
    }
}

/// The termination callback installed by `ipasir_set_terminate`, wrapped so
/// the raw `data` pointer can cross into the `Send + Sync` closure that
/// [`Solver::set_interrupt`] needs.  Soundness is the IPASIR contract: the
/// client guarantees `data` stays valid while the callback is installed and
/// that the callback itself may be polled from the solving thread.
#[derive(Clone, Copy)]
struct TerminateHook {
    callback: unsafe extern "C" fn(*mut c_void) -> c_int,
    data: *mut c_void,
}

// SAFETY: see `TerminateHook` — validity and thread-compatibility of the
// pointer are the IPASIR client's obligations, mirrored verbatim here.
unsafe impl Send for TerminateHook {}
// SAFETY: same IPASIR-contract argument as `Send` above.
unsafe impl Sync for TerminateHook {}

impl TerminateHook {
    /// Polls the client's callback (a method, so closures capture the whole
    /// `Send + Sync` wrapper rather than its raw-pointer field).
    fn fire(&self) -> bool {
        // SAFETY: the client keeps `data` valid while the callback is
        // installed (the `ipasir_set_terminate` contract).
        unsafe { (self.callback)(self.data) != 0 }
    }
}

const IPASIR_SAT: c_int = 10;
const IPASIR_UNSAT: c_int = 20;
const IPASIR_INTERRUPTED: c_int = 0;

/// IPASIR: the solver's name and version.
#[no_mangle]
pub extern "C" fn ipasir_signature() -> *const c_char {
    static SIGNATURE: &[u8] = b"htd-cdcl (golden-free-htd ipasir shim)\0";
    SIGNATURE.as_ptr().cast()
}

/// IPASIR: creates a fresh solver handle.
#[no_mangle]
pub extern "C" fn ipasir_init() -> *mut c_void {
    Box::into_raw(Box::new(ShimSolver::new())).cast()
}

/// IPASIR: destroys a handle created by [`ipasir_init`].
///
/// # Safety
///
/// `solver` must be a handle from [`ipasir_init`] not yet released.
#[no_mangle]
pub unsafe extern "C" fn ipasir_release(solver: *mut c_void) {
    // SAFETY: per this fn's contract, `solver` is the unreleased box that
    // `ipasir_init` leaked; reclaiming it here drops it exactly once.
    drop(unsafe { Box::from_raw(solver.cast::<ShimSolver>()) });
}

/// Reborrows an IPASIR handle as the shim solver it points to.
// SAFETY: callers must pass a live `ipasir_init` handle (every caller is an
// exported entry point whose `# Safety` section demands exactly that) and
// must not hold two shim borrows at once — the C ABI is single-threaded per
// handle by the IPASIR spec.
unsafe fn shim<'a>(solver: *mut c_void) -> &'a mut ShimSolver {
    // SAFETY: guaranteed by this fn's own contract above.
    unsafe { &mut *solver.cast::<ShimSolver>() }
}

/// IPASIR: streams one clause literal (or the terminating 0).
///
/// # Safety
///
/// `solver` must be a live [`ipasir_init`] handle.
#[no_mangle]
pub unsafe extern "C" fn ipasir_add(solver: *mut c_void, lit_or_zero: c_int) {
    // SAFETY: this entry point's contract — `solver` is a live handle.
    let shim = unsafe { shim(solver) };
    if lit_or_zero == 0 {
        let clause = std::mem::take(&mut shim.clause);
        // An empty clause legitimately makes the formula UNSAT; the solver
        // records that and answers every later query accordingly.
        let _ = shim.solver.add_clause(clause);
    } else {
        let lit = shim.import(lit_or_zero);
        shim.clause.push(lit);
    }
}

/// IPASIR: registers an assumption for the next [`ipasir_solve`].
///
/// # Safety
///
/// `solver` must be a live [`ipasir_init`] handle.
#[no_mangle]
pub unsafe extern "C" fn ipasir_assume(solver: *mut c_void, lit: c_int) {
    // SAFETY: this entry point's contract — `solver` is a live handle.
    let shim = unsafe { shim(solver) };
    let lit = shim.import(lit);
    shim.assumptions.push(lit);
}

/// IPASIR: solves under the registered assumptions; 10 = SAT, 20 = UNSAT,
/// 0 = terminated by the callback.  Assumptions are cleared afterwards.
///
/// # Safety
///
/// `solver` must be a live [`ipasir_init`] handle.
#[no_mangle]
pub unsafe extern "C" fn ipasir_solve(solver: *mut c_void) -> c_int {
    // SAFETY: this entry point's contract — `solver` is a live handle.
    let shim = unsafe { shim(solver) };
    let assumptions = std::mem::take(&mut shim.assumptions);
    let result = shim.solver.solve_with_assumptions(&assumptions);
    shim.failed.clear();
    match result {
        SolveResult::Sat => IPASIR_SAT,
        SolveResult::Unsat => {
            // Over-approximate `ipasir_failed` set: every assumption of the
            // failed query (permitted by the spec, which only asks for a
            // superset-of-used guarantee per assumption queried).
            shim.failed
                .extend(assumptions.iter().map(|l| l.to_dimacs() as c_int));
            IPASIR_UNSAT
        }
        SolveResult::Interrupted => IPASIR_INTERRUPTED,
    }
}

/// IPASIR: the truth value of `lit` in the satisfying assignment — `lit`
/// if true, `-lit` if false, 0 for a don't-care.
///
/// # Safety
///
/// `solver` must be a live [`ipasir_init`] handle in the SAT state.
#[no_mangle]
pub unsafe extern "C" fn ipasir_val(solver: *mut c_void, lit: c_int) -> c_int {
    // SAFETY: this entry point's contract — `solver` is a live handle.
    let shim = unsafe { shim(solver) };
    let index = lit.unsigned_abs() - 1;
    match shim.solver.value(Var::from_index(index)) {
        None => 0,
        Some(positive_true) => {
            // `positive_true` is the value of the *variable*; flip for a
            // negative query literal.
            if positive_true == (lit > 0) {
                lit
            } else {
                -lit
            }
        }
    }
}

/// IPASIR: after an UNSAT answer, whether the assumption `lit` was used in
/// the refutation (this shim reports 1 for every assumption of the failed
/// query — a sound over-approximation).
///
/// # Safety
///
/// `solver` must be a live [`ipasir_init`] handle in the UNSAT state.
#[no_mangle]
pub unsafe extern "C" fn ipasir_failed(solver: *mut c_void, lit: c_int) -> c_int {
    // SAFETY: this entry point's contract — `solver` is a live handle.
    let shim = unsafe { shim(solver) };
    c_int::from(shim.failed.contains(&lit))
}

/// IPASIR: installs (or, with a null callback, removes) the termination
/// poll; a non-zero return from the callback abandons the running query.
///
/// # Safety
///
/// `solver` must be a live [`ipasir_init`] handle; `data` must stay valid
/// (and safe to touch from the solving thread) while the callback is
/// installed, per the IPASIR contract.
#[no_mangle]
pub unsafe extern "C" fn ipasir_set_terminate(
    solver: *mut c_void,
    data: *mut c_void,
    terminate: Option<unsafe extern "C" fn(*mut c_void) -> c_int>,
) {
    // SAFETY: this entry point's contract — `solver` is a live handle.
    let shim = unsafe { shim(solver) };
    match terminate {
        None => shim.solver.clear_interrupt(),
        Some(callback) => {
            let hook = TerminateHook { callback, data };
            shim.solver.set_interrupt(Arc::new(move || hook.fire()));
        }
    }
}

/// IPASIR: learnt-clause export hook — accepted and ignored (the shim does
/// not export learnt clauses; passing a null callback is also fine).
///
/// # Safety
///
/// `solver` must be a live [`ipasir_init`] handle.
#[no_mangle]
pub unsafe extern "C" fn ipasir_set_learn(
    solver: *mut c_void,
    _data: *mut c_void,
    _max_length: c_int,
    _learn: Option<unsafe extern "C" fn(*mut c_void, *mut c_int)>,
) {
    // SAFETY: this entry point's contract — `solver` is a live handle.
    let _ = unsafe { shim(solver) };
}

/// Extension: mark every variable ineligible for branching
/// ([`Solver::mask_all_decisions`]).
///
/// # Safety
///
/// `solver` must be a live [`ipasir_init`] handle.
#[no_mangle]
pub unsafe extern "C" fn ipasir_htd_mask_all_decisions(solver: *mut c_void) {
    // SAFETY: this entry point's contract — `solver` is a live handle.
    let shim = unsafe { shim(solver) };
    shim.solver.mask_all_decisions();
}

/// Extension: per-variable branching eligibility
/// ([`Solver::set_decision_var`]); `var` is 1-based.
///
/// # Safety
///
/// `solver` must be a live [`ipasir_init`] handle.
#[no_mangle]
pub unsafe extern "C" fn ipasir_htd_set_decision(solver: *mut c_void, var: c_int, eligible: c_int) {
    // SAFETY: this entry point's contract — `solver` is a live handle.
    let shim = unsafe { shim(solver) };
    let index = var.unsigned_abs() - 1;
    while shim.solver.num_vars() <= index as usize {
        shim.solver.new_var();
    }
    shim.solver
        .set_decision_var(Var::from_index(index), eligible != 0);
}

/// Extension: reset the search heuristics between unrelated queries
/// ([`Solver::reset_decision_heuristics`]).
///
/// # Safety
///
/// `solver` must be a live [`ipasir_init`] handle.
#[no_mangle]
pub unsafe extern "C" fn ipasir_htd_begin_new_query(solver: *mut c_void) {
    // SAFETY: this entry point's contract — `solver` is a live handle.
    let shim = unsafe { shim(solver) };
    shim.solver.reset_decision_heuristics();
}

/// Extension: returns an independent snapshot of the handle — same formula,
/// learnt clauses and heuristic state — in O(bytes) (`Solver::clone` over
/// the flat arena stores).  The new handle is owned by the caller and
/// released through [`ipasir_release`]; per-query state (the clause being
/// streamed, pending assumptions, the `ipasir_failed` set) does **not**
/// carry over, and neither does the parent's terminate callback — its
/// `data` pointer is only guaranteed valid for the handle it was installed
/// on, so the clone starts without one and the client re-installs as
/// needed.
///
/// # Safety
///
/// `solver` must be a live [`ipasir_init`] handle.
#[no_mangle]
pub unsafe extern "C" fn ipasir_htd_clone(solver: *mut c_void) -> *mut c_void {
    // SAFETY: this entry point's contract — `solver` is a live handle.
    let shim = unsafe { shim(solver) };
    let mut solver = shim.solver.clone();
    // The cloned interrupt closure would poll the parent's TerminateHook
    // `data` pointer — a dangling pointer once the parent replaces or
    // removes its callback.  Never inherit it.
    solver.clear_interrupt();
    Box::into_raw(Box::new(ShimSolver {
        solver,
        clause: Vec::new(),
        assumptions: Vec::new(),
        failed: Vec::new(),
    }))
    .cast()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ffi::CStr;

    /// Drives the exported ABI exactly as a C client would (through the raw
    /// pointers), without any dynamic loading.
    #[test]
    fn abi_roundtrip_sat_unsat_and_model() {
        let s = ipasir_init();
        // SAFETY: `s` stays live for the whole block and is released once.
        unsafe {
            // (1 | 2) & (-1 | 2)
            for lit in [1, 2, 0, -1, 2, 0] {
                ipasir_add(s, lit);
            }
            assert_eq!(ipasir_solve(s), IPASIR_SAT);
            assert_eq!(ipasir_val(s, 2), 2, "1 2 & -1 2 forces 2");
            assert_eq!(ipasir_val(s, -2), -(-2), "negative query literal flips");

            // Assumptions are per-query.
            ipasir_assume(s, -2);
            assert_eq!(ipasir_solve(s), IPASIR_UNSAT);
            assert_eq!(ipasir_failed(s, -2), 1);
            assert_eq!(ipasir_failed(s, 7), 0);
            assert_eq!(ipasir_solve(s), IPASIR_SAT);

            ipasir_release(s);
        }
    }

    #[test]
    fn empty_clause_makes_every_query_unsat() {
        let s = ipasir_init();
        // SAFETY: `s` stays live for the whole block and is released once.
        unsafe {
            ipasir_add(s, 0);
            assert_eq!(ipasir_solve(s), IPASIR_UNSAT);
            ipasir_release(s);
        }
    }

    #[test]
    fn terminate_callback_interrupts_a_query() {
        // SAFETY: ignores its `data` pointer entirely.
        unsafe extern "C" fn always(_data: *mut c_void) -> c_int {
            1
        }
        let s = ipasir_init();
        // SAFETY: `s` stays live for the whole block and is released once;
        // the terminate callback never dereferences its null `data`.
        unsafe {
            ipasir_add(s, 1);
            ipasir_add(s, 2);
            ipasir_add(s, 0);
            ipasir_set_terminate(s, std::ptr::null_mut(), Some(always));
            assert_eq!(ipasir_solve(s), IPASIR_INTERRUPTED);
            // Removing the callback restores normal solving.
            ipasir_set_terminate(s, std::ptr::null_mut(), None);
            assert_eq!(ipasir_solve(s), IPASIR_SAT);
            ipasir_release(s);
        }
    }

    #[test]
    fn signature_is_a_nul_terminated_c_string() {
        // SAFETY: `ipasir_signature` returns a 'static nul-terminated string.
        let sig = unsafe { CStr::from_ptr(ipasir_signature()) };
        assert!(sig.to_str().unwrap().contains("htd-cdcl"));
    }

    /// `ipasir_htd_clone` returns an independent handle with the parent's
    /// formula but none of its per-query state or terminate callback.
    #[test]
    fn htd_clone_snapshots_the_formula_without_query_state() {
        // SAFETY: ignores its `data` pointer entirely.
        unsafe extern "C" fn always(_data: *mut c_void) -> c_int {
            1
        }
        let parent = ipasir_init();
        // SAFETY: `parent` and the cloned `child` are distinct live handles,
        // each released exactly once.
        unsafe {
            // (1 | 2) & (-1 | 2), plus a *pending* assumption and a
            // terminate callback on the parent only.
            for lit in [1, 2, 0, -1, 2, 0] {
                ipasir_add(parent, lit);
            }
            ipasir_assume(parent, -2);
            ipasir_set_terminate(parent, std::ptr::null_mut(), Some(always));

            let child = ipasir_htd_clone(parent);
            // The clone solves immediately: no inherited terminate
            // callback, no inherited assumptions.
            assert_eq!(ipasir_solve(child), IPASIR_SAT);
            assert_eq!(ipasir_val(child, 2), 2, "the cloned formula forces 2");

            // Divergence after the clone stays private to each handle.
            ipasir_add(child, -2);
            ipasir_add(child, 0);
            assert_eq!(ipasir_solve(child), IPASIR_UNSAT);
            ipasir_set_terminate(parent, std::ptr::null_mut(), None);
            // The parent still owns its pre-clone pending assumption (-2),
            // which the clone did not steal: the next query consumes it...
            assert_eq!(ipasir_solve(parent), IPASIR_UNSAT);
            // ...and the parent's formula itself is untouched by the child.
            assert_eq!(ipasir_solve(parent), IPASIR_SAT, "parent unaffected");

            ipasir_release(child);
            ipasir_release(parent);
        }
    }

    #[test]
    fn independent_handles_do_not_share_state() {
        let a = ipasir_init();
        let b = ipasir_init();
        // SAFETY: `a` and `b` stay live for the block, each released once.
        unsafe {
            ipasir_add(a, 1);
            ipasir_add(a, 0);
            ipasir_assume(b, -1);
            assert_eq!(ipasir_solve(b), IPASIR_SAT, "b never saw a's clause");
            assert_eq!(ipasir_solve(a), IPASIR_SAT);
            assert_eq!(ipasir_val(a, 1), 1);
            ipasir_release(a);
            ipasir_release(b);
        }
    }
}
