//! Property-based tests on the RTL substrate: netlist round-trips preserve
//! simulation behaviour, structural analysis invariants hold, and the
//! simulator agrees with a direct word-level interpretation of the design.

use htd_rtl::sim::Simulator;
use htd_rtl::structural::{fanout_levels, get_fanout, input_unreachable_signals};
use htd_rtl::{netlist, Design, ExprId, SignalId, ValidatedDesign};
use proptest::prelude::*;

/// A small recipe for random two-register designs (kept simple on purpose:
/// the goal is to fuzz the plumbing, not to generate interesting circuits).
#[derive(Clone, Debug)]
struct Recipe {
    width: u32,
    constants: [u64; 2],
    use_add: bool,
    use_mux: bool,
    feedback: bool,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        prop_oneof![Just(1u32), Just(3), Just(8), Just(16)],
        any::<[u64; 2]>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(width, constants, use_add, use_mux, feedback)| Recipe {
            width,
            constants,
            use_add,
            use_mux,
            feedback,
        })
}

fn mask(width: u32, v: u64) -> u128 {
    u128::from(v) & ((1u128 << width) - 1)
}

fn build(recipe: &Recipe) -> ValidatedDesign {
    let w = recipe.width;
    let mut d = Design::new("fuzz");
    let a = d.add_input("a", w).unwrap();
    let b = d.add_input("b", w).unwrap();
    let r0 = d
        .add_register("r0", w, mask(w, recipe.constants[0]))
        .unwrap();
    let r1 = d
        .add_register("r1", w, mask(w, recipe.constants[1]))
        .unwrap();

    let c0 = d.constant(mask(w, recipe.constants[0]), w).unwrap();
    let mixed = if recipe.use_add {
        d.add(d.signal(a), c0).unwrap()
    } else {
        d.xor(d.signal(a), c0).unwrap()
    };
    let r0_next = if recipe.feedback {
        d.xor(mixed, d.signal(r0)).unwrap()
    } else {
        mixed
    };
    d.set_register_next(r0, r0_next).unwrap();

    let r1_next: ExprId = if recipe.use_mux {
        let sel = d.eq_const(d.signal(b), 0).unwrap();
        d.mux(sel, d.signal(r0), d.signal(b)).unwrap()
    } else {
        d.and(d.signal(r0), d.signal(b)).unwrap()
    };
    d.set_register_next(r1, r1_next).unwrap();
    d.add_output("out", d.signal(r1)).unwrap();
    d.validated().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn netlist_roundtrip_preserves_simulation(recipe in recipe(), stimulus in prop::collection::vec((any::<u64>(), any::<u64>()), 1..12)) {
        let original = build(&recipe);
        let text = netlist::dump(&original);
        let parsed = netlist::parse(&text).expect("dump always parses");

        let mut sim_a = Simulator::new(&original);
        let mut sim_b = Simulator::new(&parsed);
        for (va, vb) in stimulus {
            let va = mask(recipe.width, va);
            let vb = mask(recipe.width, vb);
            for sim in [&mut sim_a, &mut sim_b] {
                sim.set_input_by_name("a", va).unwrap();
                sim.set_input_by_name("b", vb).unwrap();
                sim.step().unwrap();
            }
            prop_assert_eq!(
                sim_a.peek_by_name("out").unwrap(),
                sim_b.peek_by_name("out").unwrap()
            );
            prop_assert_eq!(
                sim_a.register_snapshot(),
                sim_b.register_snapshot()
            );
        }
    }

    #[test]
    fn fanout_levels_cover_exactly_the_input_reachable_signals(recipe in recipe()) {
        let design = build(&recipe);
        let d = design.design();
        let levels = fanout_levels(&design);
        let covered: Vec<SignalId> = levels.into_iter().flatten().collect();
        let unreachable = input_unreachable_signals(&design);
        // Every state/output signal is either covered or reported unreachable,
        // never both.
        for sig in d.state_and_output_signals() {
            let in_covered = covered.contains(&sig);
            let in_unreachable = unreachable.contains(&sig);
            prop_assert!(in_covered ^ in_unreachable, "signal {} misclassified", d.signal_name(sig));
        }
    }

    #[test]
    fn get_fanout_is_monotone_in_its_sources(recipe in recipe()) {
        let design = build(&recipe);
        let d = design.design();
        let inputs = d.inputs();
        let single = get_fanout(&design, &inputs[..1]);
        let all = get_fanout(&design, &inputs);
        for sig in single {
            prop_assert!(all.contains(&sig), "fanout lost a signal when sources grew");
        }
    }

    #[test]
    fn simulation_matches_word_level_reference(recipe in recipe(), stimulus in prop::collection::vec((any::<u64>(), any::<u64>()), 1..12)) {
        let design = build(&recipe);
        let w = recipe.width;
        let mut sim = Simulator::new(&design);
        // Independent reference interpretation of the same recipe.
        let mut r0 = mask(w, recipe.constants[0]);
        for (va, vb) in stimulus {
            let va = mask(w, va);
            let vb = mask(w, vb);
            sim.set_input_by_name("a", va).unwrap();
            sim.set_input_by_name("b", vb).unwrap();
            sim.step().unwrap();

            let c0 = mask(w, recipe.constants[0]);
            let mixed = if recipe.use_add { (va + c0) & mask(w, u64::MAX) } else { va ^ c0 };
            let r0_next = if recipe.feedback { mixed ^ r0 } else { mixed };
            // `r1` never feeds back: its value is fully determined each cycle.
            let r1 = if recipe.use_mux {
                if vb == 0 { r0 } else { vb }
            } else {
                r0 & vb
            };
            r0 = r0_next & mask(w, u64::MAX);

            prop_assert_eq!(sim.peek_by_name("r0").unwrap(), r0);
            prop_assert_eq!(sim.peek_by_name("r1").unwrap(), r1);
            prop_assert_eq!(sim.peek_by_name("out").unwrap(), r1);
        }
    }
}
