//! # htd-rtl
//!
//! A word-level Register-Transfer-Level (RTL) intermediate representation,
//! cycle-accurate simulator and structural-analysis library.
//!
//! This crate is the design substrate of the golden-free hardware-Trojan
//! detection toolkit.  The DATE'24 method operates on RTL designs; they are
//! constructed programmatically through the [`Design`] builder API, loaded
//! from the textual netlist format in [`netlist`], or compiled from Verilog
//! source by the `htd-verilog` front-end crate.
//!
//! The pieces relevant to the paper are:
//!
//! * [`Design`] / [`Expr`] — the word-level IR (inputs, outputs, wires and
//!   registers with next-state functions).
//! * [`structural`] — syntactic dependency tracing of state-holding elements,
//!   i.e. the `Get_Fanout()` primitive of Algorithm 1 in the paper, plus the
//!   signal-coverage check of Sec. IV-D (case 2).
//! * [`sim`] — a two-valued cycle-accurate simulator used to validate the
//!   benchmark accelerators and to replay counterexamples.
//! * [`netlist`] — a plain-text dump/parse format for designs.
//!
//! # Example
//!
//! Build a 2-bit accumulator and simulate three cycles:
//!
//! ```
//! use htd_rtl::{Design, DesignError};
//! use htd_rtl::sim::Simulator;
//!
//! # fn main() -> Result<(), DesignError> {
//! let mut d = Design::new("accumulator");
//! let input = d.add_input("in", 2)?;
//! let acc = d.add_register("acc", 2, 0)?;
//! let sum = d.add(d.signal(acc), d.signal(input))?;
//! d.set_register_next(acc, sum)?;
//! d.add_output("out", d.signal(acc))?;
//! let design = d.validated()?;
//!
//! let mut sim = Simulator::new(&design);
//! for _ in 0..3 {
//!     sim.set_input_by_name("in", 1)?;
//!     sim.step()?;
//! }
//! assert_eq!(sim.peek_by_name("acc")?, 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
mod error;
pub mod export;
mod expr;
pub mod fxhash;
pub mod netlist;
pub mod sim;
pub mod stats;
pub mod structural;

pub use design::{Design, Signal, SignalId, SignalKind, ValidatedDesign};
pub use error::DesignError;
pub use expr::{BinaryOp, Expr, ExprId, UnaryOp};

/// Maximum supported signal width in bits.
///
/// Word-level values are carried in `u128`, so widths are capped at 128.
/// Wider buses (e.g. the 128-bit AES state plus key) are modelled as several
/// signals.
pub const MAX_WIDTH: u32 = 128;
