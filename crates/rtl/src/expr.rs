//! Word-level expressions.

use std::fmt;
use std::sync::Arc;

use crate::design::SignalId;

/// Handle to an expression stored in a [`crate::Design`]'s expression arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(pub(crate) u32);

impl ExprId {
    /// Dense index of the expression inside its design's arena.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Unary word-level operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise complement; result has the operand's width.
    Not,
    /// Two's-complement negation; result has the operand's width.
    Neg,
    /// AND-reduction to a single bit.
    RedAnd,
    /// OR-reduction to a single bit.
    RedOr,
    /// XOR-reduction (parity) to a single bit.
    RedXor,
}

impl UnaryOp {
    /// Human-readable mnemonic used by the netlist format.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Not => "not",
            UnaryOp::Neg => "neg",
            UnaryOp::RedAnd => "redand",
            UnaryOp::RedOr => "redor",
            UnaryOp::RedXor => "redxor",
        }
    }
}

/// Binary word-level operators.
///
/// Bitwise and arithmetic operators require both operands to have the same
/// width and produce a result of that width (arithmetic wraps).  Comparison
/// operators produce a 1-bit result.  Shift amounts are taken modulo the
/// operand width is *not* applied — shifting by the full width or more yields
/// zero, as in Verilog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Equality comparison (1-bit result).
    Eq,
    /// Inequality comparison (1-bit result).
    Ne,
    /// Unsigned less-than (1-bit result).
    Ult,
    /// Unsigned less-than-or-equal (1-bit result).
    Ule,
    /// Logical shift left by the right operand.
    Shl,
    /// Logical shift right by the right operand.
    Shr,
}

impl BinaryOp {
    /// Human-readable mnemonic used by the netlist format.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BinaryOp::And => "and",
            BinaryOp::Or => "or",
            BinaryOp::Xor => "xor",
            BinaryOp::Add => "add",
            BinaryOp::Sub => "sub",
            BinaryOp::Mul => "mul",
            BinaryOp::Eq => "eq",
            BinaryOp::Ne => "ne",
            BinaryOp::Ult => "ult",
            BinaryOp::Ule => "ule",
            BinaryOp::Shl => "shl",
            BinaryOp::Shr => "shr",
        }
    }

    /// `true` if the operator produces a 1-bit result regardless of operand
    /// width.
    #[must_use]
    pub const fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Ult | BinaryOp::Ule
        )
    }
}

/// A word-level expression node.
///
/// Expressions are immutable once created and live in the arena of the
/// [`crate::Design`] that created them; sub-expressions are referenced by
/// [`ExprId`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant of the given width.
    Const {
        /// The value, already masked to `width` bits.
        value: u128,
        /// Bit width.
        width: u32,
    },
    /// The current value of a signal (input, wire or register output).
    Signal(SignalId),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        a: ExprId,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        a: ExprId,
        /// Right operand.
        b: ExprId,
    },
    /// `if cond { then_e } else { else_e }` with a 1-bit condition.
    Mux {
        /// 1-bit select.
        cond: ExprId,
        /// Value when `cond` is 1.
        then_e: ExprId,
        /// Value when `cond` is 0.
        else_e: ExprId,
    },
    /// Bit slice `a[hi:lo]` (inclusive, `hi >= lo`).
    Slice {
        /// Sliced expression.
        a: ExprId,
        /// High bit index.
        hi: u32,
        /// Low bit index.
        lo: u32,
    },
    /// Concatenation `{hi, lo}`; `hi` occupies the most-significant bits.
    Concat {
        /// Most-significant part.
        hi: ExprId,
        /// Least-significant part.
        lo: ExprId,
    },
    /// A read-only lookup table (e.g. the AES S-box), indexed by `index`.
    ///
    /// The table must contain exactly `2^index_width` entries, each fitting
    /// in `width` bits.
    Rom {
        /// Table contents, indexed by the numeric value of `index`.
        table: Arc<Vec<u128>>,
        /// Index expression.
        index: ExprId,
        /// Width of each table entry (and of the result).
        width: u32,
    },
}

impl Expr {
    /// `true` for leaf nodes (constants and signal references).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Expr::Const { .. } | Expr::Signal(_))
    }

    /// The signal referenced by this node, if it is a signal reference.
    #[must_use]
    pub fn as_signal(&self) -> Option<SignalId> {
        match self {
            Expr::Signal(s) => Some(*s),
            _ => None,
        }
    }

    /// Child expressions of this node, in a fixed order.
    #[must_use]
    pub fn children(&self) -> Vec<ExprId> {
        match self {
            Expr::Const { .. } | Expr::Signal(_) => Vec::new(),
            Expr::Unary { a, .. } | Expr::Slice { a, .. } => vec![*a],
            Expr::Binary { a, b, .. } => vec![*a, *b],
            Expr::Concat { hi, lo } => vec![*hi, *lo],
            Expr::Mux {
                cond,
                then_e,
                else_e,
            } => vec![*cond, *then_e, *else_e],
            Expr::Rom { index, .. } => vec![*index],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_of_leaves_are_empty() {
        assert!(Expr::Const { value: 3, width: 2 }.children().is_empty());
        assert!(Expr::Signal(SignalId(0)).children().is_empty());
    }

    #[test]
    fn children_order_is_stable() {
        let m = Expr::Mux {
            cond: ExprId(1),
            then_e: ExprId(2),
            else_e: ExprId(3),
        };
        assert_eq!(m.children(), vec![ExprId(1), ExprId(2), ExprId(3)]);
        let b = Expr::Binary {
            op: BinaryOp::Add,
            a: ExprId(4),
            b: ExprId(5),
        };
        assert_eq!(b.children(), vec![ExprId(4), ExprId(5)]);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(BinaryOp::Ult.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(!BinaryOp::Shl.is_comparison());
    }

    #[test]
    fn mnemonics_are_unique() {
        use std::collections::HashSet;
        let unary = [
            UnaryOp::Not,
            UnaryOp::Neg,
            UnaryOp::RedAnd,
            UnaryOp::RedOr,
            UnaryOp::RedXor,
        ];
        let binary = [
            BinaryOp::And,
            BinaryOp::Or,
            BinaryOp::Xor,
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Eq,
            BinaryOp::Ne,
            BinaryOp::Ult,
            BinaryOp::Ule,
            BinaryOp::Shl,
            BinaryOp::Shr,
        ];
        let mut names = HashSet::new();
        for u in unary {
            assert!(names.insert(u.mnemonic()));
        }
        for b in binary {
            assert!(names.insert(b.mnemonic()));
        }
    }
}
