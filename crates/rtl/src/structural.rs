//! Structural (syntactic) dependency analysis.
//!
//! This module implements the `Get_Fanout()` primitive of Algorithm 1 in the
//! paper: a purely structural trace of which state-holding elements and
//! outputs are reached from a set of source signals within one clock cycle.
//! Wires are transparent (they are combinational), registers and outputs are
//! the observation points.
//!
//! It also provides the signal-coverage check of Sec. IV-D (case 2): state or
//! output signals that are *never* reached from the primary inputs may host an
//! input-independent Trojan (e.g. a timer started at reset) and must be
//! reported to the verification engineer.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::design::{Design, SignalId, SignalKind, ValidatedDesign};
use crate::expr::ExprId;

/// The combinational support of an expression: the set of *non-wire* signals
/// (inputs and registers) it reads, with named wires expanded transitively.
///
/// Output signals never appear in the support because outputs cannot be read
/// back inside a design.
#[must_use]
pub fn combinational_support(design: &ValidatedDesign, expr: ExprId) -> BTreeSet<SignalId> {
    let d = design.design();
    let mut cache: HashMap<SignalId, BTreeSet<SignalId>> = HashMap::new();
    expr_support(d, expr, &mut cache)
}

/// The union of the combinational supports of many signals' drivers, with one
/// wire-support memo shared across the whole batch — the cones of one fanout
/// level overlap heavily, so this costs one design walk per call instead of
/// one per signal (signals without a driver contribute nothing).
#[must_use]
pub fn drivers_support(design: &ValidatedDesign, signals: &[SignalId]) -> BTreeSet<SignalId> {
    let d = design.design();
    let mut cache: HashMap<SignalId, BTreeSet<SignalId>> = HashMap::new();
    let mut out = BTreeSet::new();
    for &sig in signals {
        if let Some(driver) = d.signal_info(sig).driver() {
            out.extend(expr_support(d, driver, &mut cache));
        }
    }
    out
}

fn expr_support(
    d: &Design,
    expr: ExprId,
    cache: &mut HashMap<SignalId, BTreeSet<SignalId>>,
) -> BTreeSet<SignalId> {
    let mut out = BTreeSet::new();
    for sig in d.expr_signals(expr) {
        match d.signal_info(sig).kind() {
            SignalKind::Input | SignalKind::Register { .. } => {
                out.insert(sig);
            }
            SignalKind::Wire | SignalKind::Output => {
                if let Some(cached) = cache.get(&sig) {
                    out.extend(cached.iter().copied());
                } else {
                    let driver = d.signal_info(sig).driver().expect("validated design");
                    let support = expr_support(d, driver, cache);
                    out.extend(support.iter().copied());
                    cache.insert(sig, support);
                }
            }
        }
    }
    out
}

/// `Get_Fanout(IP, sources)`: all state and output signals whose value one
/// clock cycle later (for registers) or in the same cycle (for outputs)
/// depends syntactically on at least one of the `sources`.
///
/// This is the single-cycle structural fanout used to build the
/// `fanouts_CCk` sets of the paper.
///
/// # Example
///
/// ```
/// use htd_rtl::Design;
/// use htd_rtl::structural::get_fanout;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// let mut d = Design::new("pipe");
/// let input = d.add_input("in", 8)?;
/// let stage1 = d.add_register("stage1", 8, 0)?;
/// let stage2 = d.add_register("stage2", 8, 0)?;
/// d.set_register_next(stage1, d.signal(input))?;
/// d.set_register_next(stage2, d.signal(stage1))?;
/// d.add_output("out", d.signal(stage2))?;
/// let design = d.validated()?;
///
/// let cc1 = get_fanout(&design, &[input]);
/// assert_eq!(cc1.len(), 1); // only stage1 is reached in one cycle
/// assert_eq!(design.design().signal_name(cc1[0]), "stage1");
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn get_fanout(design: &ValidatedDesign, sources: &[SignalId]) -> Vec<SignalId> {
    let d = design.design();
    let source_set: HashSet<SignalId> = sources.iter().copied().collect();
    let mut cache: HashMap<SignalId, BTreeSet<SignalId>> = HashMap::new();
    let mut out = Vec::new();
    for sig in d.state_and_output_signals() {
        let driver = d.signal_info(sig).driver().expect("validated design");
        let support = expr_support(d, driver, &mut cache);
        if support.iter().any(|s| source_set.contains(s)) {
            out.push(sig);
        }
    }
    out
}

/// The per-cycle fanout levels starting from the primary inputs, iterated to a
/// fixpoint exactly as the loop of Algorithm 1 does:
///
/// * level 0 is `fanouts_CC1 = Get_Fanout(IP, inputs)`,
/// * level `k` is `Get_Fanout(IP, level k-1)`,
/// * iteration stops when no *new* state or output signal is added.
///
/// The number of levels is bounded by the structural depth of the design, not
/// by its sequential depth (Sec. V of the paper).
#[must_use]
pub fn fanout_levels(design: &ValidatedDesign) -> Vec<Vec<SignalId>> {
    let inputs = design.design().inputs();
    let mut levels: Vec<Vec<SignalId>> = Vec::new();
    let mut all: HashSet<SignalId> = HashSet::new();
    let mut frontier = get_fanout(design, &inputs);
    loop {
        let new_signals: Vec<SignalId> = frontier
            .iter()
            .copied()
            .filter(|s| !all.contains(s))
            .collect();
        if new_signals.is_empty() {
            break;
        }
        all.extend(frontier.iter().copied());
        levels.push(frontier.clone());
        frontier = get_fanout(design, &frontier);
    }
    levels
}

/// Structural depth of the design: the number of fanout levels from the
/// primary inputs until the fixpoint is reached.
#[must_use]
pub fn structural_depth(design: &ValidatedDesign) -> usize {
    fanout_levels(design).len()
}

/// `Check_Signal_Coverage(IP, covered)`: state and output signals of the
/// design that never appear in `covered`.
///
/// In the detection flow, `covered` is the union of all `fanouts_CCk` sets;
/// any signal returned here is unreachable from the primary inputs and may
/// host an input-independent Trojan (case 2 of Sec. IV-D, e.g. AES-T1900's
/// reset-started counter).
#[must_use]
pub fn uncovered_signals(design: &ValidatedDesign, covered: &[SignalId]) -> Vec<SignalId> {
    let covered: HashSet<SignalId> = covered.iter().copied().collect();
    design
        .design()
        .state_and_output_signals()
        .into_iter()
        .filter(|s| !covered.contains(s))
        .collect()
}

/// Convenience: the set of state/output signals *not* reachable from the
/// primary inputs at any depth (i.e. the coverage gap of the whole flow).
#[must_use]
pub fn input_unreachable_signals(design: &ValidatedDesign) -> Vec<SignalId> {
    let covered: Vec<SignalId> = fanout_levels(design).into_iter().flatten().collect();
    uncovered_signals(design, &covered)
}

/// One place where the *data-driven* side condition of the decomposition is
/// violated: the signal proven by a fanout/init property depends on a register
/// that the property's antecedent does not mention.
///
/// These are exactly the situations of Sec. V-B of the paper: the prover
/// produces a counterexample for `proven_signal` that is explained by the free
/// starting state of `unassumed_register` — either a genuine Trojan (the
/// payload reads trigger state outside the fanout levels) or a false alarm
/// (benign control state such as a mode register).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataDrivenViolation {
    /// Index of the property whose side condition is violated: `0` for the
    /// init property, `k` for `fanout_property_k`.
    pub property_index: usize,
    /// The state/output signal in the property's prove set.
    pub proven_signal: SignalId,
    /// A register read (through one transition) by `proven_signal` that is
    /// neither a primary input nor part of the property's assume set.
    pub unassumed_register: SignalId,
}

/// Checks the *data-driven* side condition under which the decomposed
/// single-cycle properties are free of false alarms (Sec. IV-B of the paper:
/// non-interfering accelerators "determine the internal states relevant for
/// their computations only from the inputs").
///
/// For every decomposed property (init property and `fanout_property_k`) and
/// every signal `z` it proves, the registers that determine `z`'s value one
/// cycle later must all be covered by the property's antecedent:
///
/// * if `z` is a register, the combinational support of its next-state
///   function must lie in `assume ∪ inputs`;
/// * if `z` is an output (or named wire), the next-state function of every
///   register in its combinational support must have its support in
///   `assume ∪ inputs` (the output is observed right after the transition).
///
/// With `cumulative` set, the antecedent of `fanout_property_k` is taken as
/// the union of all earlier levels (the proactive re-verification mode of the
/// detection flow, [`DetectorConfig::assume_previously_proven`]); otherwise it
/// is exactly `fanouts_CCk` as in the plain Algorithm 1.
///
/// When this function returns an empty vector, Theorem 1 holds in its strong
/// (iff) form: a decomposed property fails exactly when the aggregate trojan
/// property fails.  In general only the completeness direction holds — the
/// decomposition never misses a Trojan the aggregate property would catch —
/// and every returned violation pinpoints a potential false alarm that the
/// counterexample analysis of Sec. V-B has to disqualify.
///
/// [`DetectorConfig::assume_previously_proven`]: https://docs.rs/htd-core
#[must_use]
pub fn data_driven_violations(
    design: &ValidatedDesign,
    cumulative: bool,
) -> Vec<DataDrivenViolation> {
    let d = design.design();
    let inputs: HashSet<SignalId> = d.inputs().into_iter().collect();
    let levels = fanout_levels(design);
    let mut cache: HashMap<SignalId, BTreeSet<SignalId>> = HashMap::new();
    let mut violations = Vec::new();

    // The registers whose one-step value is fully determined by `allowed`
    // (given that primary inputs are always shared between the instances).
    let check_register = |d: &Design,
                          cache: &mut HashMap<SignalId, BTreeSet<SignalId>>,
                          property_index: usize,
                          proven_signal: SignalId,
                          reg: SignalId,
                          allowed: &HashSet<SignalId>,
                          violations: &mut Vec<DataDrivenViolation>| {
        let driver = d.signal_info(reg).driver().expect("validated design");
        for dep in expr_support(d, driver, cache) {
            if !inputs.contains(&dep) && !allowed.contains(&dep) {
                violations.push(DataDrivenViolation {
                    property_index,
                    proven_signal,
                    unassumed_register: dep,
                });
            }
        }
    };

    let mut assumed: HashSet<SignalId> = HashSet::new();
    for (k, level) in levels.iter().enumerate() {
        // Property `k` proves level `k` with antecedent `assumed`
        // (empty for the init property).
        for &z in level {
            match d.signal_info(z).kind() {
                SignalKind::Register { .. } => {
                    check_register(d, &mut cache, k, z, z, &assumed, &mut violations);
                }
                SignalKind::Output | SignalKind::Wire => {
                    let driver = d.signal_info(z).driver().expect("validated design");
                    for reg in expr_support(d, driver, &mut cache) {
                        if d.signal_info(reg).kind().is_register() {
                            check_register(d, &mut cache, k, z, reg, &assumed, &mut violations);
                        }
                    }
                }
                SignalKind::Input => {}
            }
        }
        if cumulative {
            assumed.extend(level.iter().copied());
        } else {
            assumed = level.iter().copied().collect();
        }
    }
    violations
}

/// `true` when the plain (non-cumulative) decomposition of Algorithm 1 is
/// guaranteed to be free of false alarms on this design — the structural
/// characterisation of the "data-driven" non-interfering accelerators the
/// paper targets (Sec. IV-B).
///
/// # Example
///
/// ```
/// use htd_rtl::Design;
/// use htd_rtl::structural::is_data_driven;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// let mut d = Design::new("latch");
/// let i = d.add_input("i", 8)?;
/// let r = d.add_register("r", 8, 0)?;
/// d.set_register_next(r, d.signal(i))?;
/// d.add_output("o", d.signal(r))?;
/// assert!(is_data_driven(&d.validated()?));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn is_data_driven(design: &ValidatedDesign) -> bool {
    data_driven_violations(design, false).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Design;

    /// in -> r1 -> r2 -> out, plus a free-running counter not connected to
    /// the inputs at all.
    fn pipeline_with_counter() -> ValidatedDesign {
        let mut d = Design::new("pipe");
        let input = d.add_input("in", 8).unwrap();
        let r1 = d.add_register("r1", 8, 0).unwrap();
        let r2 = d.add_register("r2", 8, 0).unwrap();
        d.set_register_next(r1, d.signal(input)).unwrap();
        d.set_register_next(r2, d.signal(r1)).unwrap();
        d.add_output("out", d.signal(r2)).unwrap();
        let counter = d.add_register("free_counter", 4, 0).unwrap();
        let one = d.constant(1, 4).unwrap();
        let inc = d.add(d.signal(counter), one).unwrap();
        d.set_register_next(counter, inc).unwrap();
        d.validated().unwrap()
    }

    #[test]
    fn get_fanout_traces_one_cycle() {
        let design = pipeline_with_counter();
        let d = design.design();
        let input = d.require("in").unwrap();
        let r1 = d.require("r1").unwrap();
        let r2 = d.require("r2").unwrap();
        let out = d.require("out").unwrap();

        assert_eq!(get_fanout(&design, &[input]), vec![r1]);
        assert_eq!(get_fanout(&design, &[r1]), vec![r2]);
        assert_eq!(get_fanout(&design, &[r2]), vec![out]);
        // The output has no further fanout: outputs cannot be read back.
        assert!(get_fanout(&design, &[out]).is_empty());
    }

    #[test]
    fn fanout_levels_reach_fixpoint() {
        let design = pipeline_with_counter();
        let d = design.design();
        let levels = fanout_levels(&design);
        assert_eq!(levels.len(), 3);
        assert_eq!(d.signal_name(levels[0][0]), "r1");
        assert_eq!(d.signal_name(levels[1][0]), "r2");
        assert_eq!(d.signal_name(levels[2][0]), "out");
        assert_eq!(structural_depth(&design), 3);
    }

    #[test]
    fn coverage_check_finds_free_running_counter() {
        let design = pipeline_with_counter();
        let d = design.design();
        let unreachable = input_unreachable_signals(&design);
        assert_eq!(unreachable.len(), 1);
        assert_eq!(d.signal_name(unreachable[0]), "free_counter");
    }

    #[test]
    fn coverage_check_empty_when_everything_reached() {
        let mut d = Design::new("clean");
        let input = d.add_input("in", 8).unwrap();
        let r = d.add_register("r", 8, 0).unwrap();
        d.set_register_next(r, d.signal(input)).unwrap();
        d.add_output("o", d.signal(r)).unwrap();
        let design = d.validated().unwrap();
        assert!(input_unreachable_signals(&design).is_empty());
    }

    #[test]
    fn wires_are_transparent_for_fanout() {
        let mut d = Design::new("wires");
        let input = d.add_input("in", 8).unwrap();
        let w1 = d.add_wire("w1", d.signal(input)).unwrap();
        let w2 = d.add_wire("w2", d.signal(w1)).unwrap();
        let r = d.add_register("r", 8, 0).unwrap();
        d.set_register_next(r, d.signal(w2)).unwrap();
        d.add_output("o", d.signal(r)).unwrap();
        let design = d.validated().unwrap();
        let in_id = design.design().require("in").unwrap();
        let fanout = get_fanout(&design, &[in_id]);
        assert_eq!(fanout.len(), 1);
        assert_eq!(design.design().signal_name(fanout[0]), "r");
    }

    #[test]
    fn combinational_support_expands_wires() {
        let mut d = Design::new("support");
        let a = d.add_input("a", 4).unwrap();
        let b = d.add_input("b", 4).unwrap();
        let r = d.add_register("r", 4, 0).unwrap();
        let w_expr = d.xor(d.signal(a), d.signal(r)).unwrap();
        let w = d.add_wire("w", w_expr).unwrap();
        let sum = d.add(d.signal(w), d.signal(b)).unwrap();
        d.set_register_next(r, sum).unwrap();
        d.add_output("o", d.signal(r)).unwrap();
        let design = d.validated().unwrap();
        let dd = design.design();
        let support = combinational_support(&design, sum);
        let names: Vec<&str> = support.iter().map(|&s| dd.signal_name(s)).collect();
        assert_eq!(names, vec!["a", "b", "r"]);
    }

    #[test]
    fn outputs_depending_directly_on_inputs_are_in_cc1() {
        let mut d = Design::new("comb_out");
        let a = d.add_input("a", 1).unwrap();
        let n = d.not(d.signal(a));
        d.add_output("o", n).unwrap();
        let design = d.validated().unwrap();
        let a_id = design.design().require("a").unwrap();
        let fanout = get_fanout(&design, &[a_id]);
        assert_eq!(fanout.len(), 1);
        assert_eq!(design.design().signal_name(fanout[0]), "o");
    }

    #[test]
    fn fanout_of_empty_source_set_is_empty() {
        let design = pipeline_with_counter();
        assert!(get_fanout(&design, &[]).is_empty());
    }

    #[test]
    fn registered_passthrough_is_data_driven() {
        let mut d = Design::new("latch");
        let i = d.add_input("i", 8).unwrap();
        let r = d.add_register("r", 8, 0).unwrap();
        d.set_register_next(r, d.signal(i)).unwrap();
        d.add_output("o", d.signal(r)).unwrap();
        let design = d.validated().unwrap();
        assert!(is_data_driven(&design));
        assert!(data_driven_violations(&design, true).is_empty());
    }

    #[test]
    fn free_running_counter_payload_violates_the_side_condition() {
        // A register fed by both the input pipeline and an input-independent
        // counter: the counter is outside every fanout level, so the property
        // proving the register cannot assume it — exactly the structural
        // situation a Trojan payload creates.
        let mut d = Design::new("infected");
        let input = d.add_input("in", 8).unwrap();
        let s1 = d.add_register("s1", 8, 0).unwrap();
        let counter = d.add_register("counter", 8, 0).unwrap();
        let one = d.constant(1, 8).unwrap();
        let inc = d.add(d.signal(counter), one).unwrap();
        d.set_register_next(counter, inc).unwrap();
        let mixed = d.xor(d.signal(input), d.signal(counter)).unwrap();
        d.set_register_next(s1, mixed).unwrap();
        d.add_output("out", d.signal(s1)).unwrap();
        let design = d.validated().unwrap();
        let dd = design.design();
        let violations = data_driven_violations(&design, false);
        assert!(!violations.is_empty());
        assert!(violations
            .iter()
            .any(|v| dd.signal_name(v.unassumed_register) == "counter"
                && dd.signal_name(v.proven_signal) == "s1"
                && v.property_index == 0));
        assert!(!is_data_driven(&design));
    }

    #[test]
    fn cumulative_antecedent_removes_chained_pipeline_violations() {
        // An output observed combinationally from a *deep* pipeline register:
        // the plain per-level antecedent misses the intermediate stage (a
        // Sec. V-B false alarm), the cumulative antecedent of the detection
        // flow covers it.
        let design = pipeline_with_counter();
        let d = design.design();
        let plain = data_driven_violations(&design, false);
        let cumulative = data_driven_violations(&design, true);
        // Plain form: the output `out` is observed from `r2`, whose next state
        // reads `r1` — not in the antecedent `{r2}` of fanout property 2.
        assert_eq!(plain.len(), 1);
        assert_eq!(d.signal_name(plain[0].proven_signal), "out");
        assert_eq!(d.signal_name(plain[0].unassumed_register), "r1");
        assert_eq!(plain[0].property_index, 2);
        // Cumulative form: `r1` is carried forward from the earlier level, so
        // the violation disappears.  (The free-running counter never appears
        // in any level at all — it is the coverage check's job, not a
        // data-driven violation.)
        assert!(cumulative.is_empty());
    }
}
