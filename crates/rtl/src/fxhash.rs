//! A fast, non-cryptographic hasher shared across the toolkit.
//!
//! The detection flow hashes only small fixed-size keys (node ids, literal
//! pairs, signal ids) and short canonical strings that are never
//! attacker-controlled, so the multiply-xor scheme of rustc's `FxHash` is the
//! right trade-off against the standard library's DoS-resistant SipHash.
//! Implemented by hand because the workspace is dependency-free.  The hasher
//! lives in `htd-rtl` (the bottom of the crate stack) so both the
//! bit-blasting hot path in `htd-ipc` and the content-addressed design keys
//! of [`content_hash`](crate::netlist::content_hash) use one definition.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The multiplicative constant of the Fx scheme (a random odd 64-bit number
/// with good bit dispersion, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher: `hash = (hash rotl 5 ^ word) * SEED` per input word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_word(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_word(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_word(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_word(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_work_with_the_fx_hasher() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i.wrapping_mul(31)), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&(41, 41 * 31)), Some(&41));

        let mut set: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            set.insert(i << 32 | i);
        }
        assert_eq!(set.len(), 1000);
        assert!(set.contains(&(5u64 << 32 | 5)));
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&0xdead_beefu64.to_le_bytes());
        assert_eq!(a.finish(), c.finish());
    }
}
