//! The [`Design`] container: signals, expression arena and builder API.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::DesignError;
use crate::expr::{BinaryOp, Expr, ExprId, UnaryOp};
use crate::MAX_WIDTH;

/// Handle to a signal (input, output, wire or register) of a [`Design`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Dense index of the signal inside its design.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The role a signal plays in the design.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Primary input; driven by the environment each cycle.
    Input,
    /// Primary output; combinationally driven by its expression.
    Output,
    /// Internal combinational signal driven by its expression.
    Wire,
    /// State-holding element updated at every clock edge from its next-state
    /// expression; starts at `reset` after reset.
    Register {
        /// Reset value.
        reset: u128,
    },
}

impl SignalKind {
    /// `true` for registers.
    #[must_use]
    pub const fn is_register(self) -> bool {
        matches!(self, SignalKind::Register { .. })
    }

    /// `true` for state or output signals — the signal classes inspected by
    /// the Trojan-detection properties (they are where a payload must
    /// manifest, cf. Sec. IV-C of the paper).
    #[must_use]
    pub const fn is_state_or_output(self) -> bool {
        matches!(self, SignalKind::Register { .. } | SignalKind::Output)
    }
}

/// A named signal of a [`Design`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signal {
    pub(crate) name: String,
    pub(crate) width: u32,
    pub(crate) kind: SignalKind,
    /// Driving expression: the next-state function for registers, the
    /// combinational function for wires and outputs, `None` for inputs.
    pub(crate) driver: Option<ExprId>,
    /// The interned `Expr::Signal` node referring to this signal.
    pub(crate) expr: ExprId,
}

impl Signal {
    /// Signal name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Signal width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Signal role.
    #[must_use]
    pub fn kind(&self) -> SignalKind {
        self.kind
    }

    /// Driving expression (next-state function for registers), if any.
    #[must_use]
    pub fn driver(&self) -> Option<ExprId> {
        self.driver
    }
}

/// A word-level RTL design under construction.
///
/// `Design` doubles as the builder: signals and expressions are added through
/// its methods, and [`Design::validated`] performs the consistency checks and
/// produces a [`ValidatedDesign`] accepted by the simulator, the structural
/// analysis and the property checker.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Clone, Debug, PartialEq)]
pub struct Design {
    name: String,
    signals: Vec<Signal>,
    exprs: Vec<Expr>,
    expr_widths: Vec<u32>,
    names: HashMap<String, SignalId>,
}

impl Design {
    /// Creates an empty design with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Design {
            name: name.into(),
            signals: Vec::new(),
            exprs: Vec::new(),
            expr_widths: Vec::new(),
            names: HashMap::new(),
        }
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    // ------------------------------------------------------------------
    // Signal construction
    // ------------------------------------------------------------------

    fn add_signal(
        &mut self,
        name: impl Into<String>,
        width: u32,
        kind: SignalKind,
        driver: Option<ExprId>,
    ) -> Result<SignalId, DesignError> {
        let name = name.into();
        if width == 0 || width > MAX_WIDTH {
            return Err(DesignError::InvalidWidth { width });
        }
        if name.is_empty() || name.chars().any(char::is_whitespace) {
            return Err(DesignError::Parse {
                line: 0,
                message: format!("invalid signal name `{name}`"),
            });
        }
        if self.names.contains_key(&name) {
            return Err(DesignError::DuplicateName { name });
        }
        if let Some(d) = driver {
            let dw = self.expr_width(d);
            if dw != width {
                return Err(DesignError::SignalWidthMismatch {
                    name,
                    declared: width,
                    driver: dw,
                });
            }
        }
        if let SignalKind::Register { reset } = kind {
            if width < 128 && reset >> width != 0 {
                return Err(DesignError::ConstantTooWide {
                    value: reset,
                    width,
                });
            }
        }
        let id = SignalId(self.signals.len() as u32);
        let expr = self.intern(Expr::Signal(id), width);
        self.signals.push(Signal {
            name: name.clone(),
            width,
            kind,
            driver,
            expr,
        });
        self.names.insert(name, id);
        Ok(id)
    }

    /// Adds a primary input of the given width.
    ///
    /// # Errors
    ///
    /// Fails on an invalid width or duplicate name.
    pub fn add_input(
        &mut self,
        name: impl Into<String>,
        width: u32,
    ) -> Result<SignalId, DesignError> {
        self.add_signal(name, width, SignalKind::Input, None)
    }

    /// Adds a register with the given reset value.  Its next-state expression
    /// must be supplied later with [`set_register_next`](Self::set_register_next).
    ///
    /// # Errors
    ///
    /// Fails on an invalid width, duplicate name, or a reset value that does
    /// not fit the width.
    pub fn add_register(
        &mut self,
        name: impl Into<String>,
        width: u32,
        reset: u128,
    ) -> Result<SignalId, DesignError> {
        self.add_signal(name, width, SignalKind::Register { reset }, None)
    }

    /// Sets (or replaces) the next-state expression of a register.
    ///
    /// # Errors
    ///
    /// Fails if `reg` is not a register or the expression width does not
    /// match the register width.
    pub fn set_register_next(&mut self, reg: SignalId, next: ExprId) -> Result<(), DesignError> {
        reg_check(self, reg)?;
        let width = self.signal_width(reg);
        let next_width = self.expr_width(next);
        let signal = &mut self.signals[reg.index()];
        if !signal.kind.is_register() {
            return Err(DesignError::InvalidSignalKind {
                name: signal.name.clone(),
                expected: "a register",
            });
        }
        if next_width != width {
            return Err(DesignError::SignalWidthMismatch {
                name: signal.name.clone(),
                declared: width,
                driver: next_width,
            });
        }
        signal.driver = Some(next);
        Ok(())
    }

    /// Adds a named combinational wire driven by `expr`.
    ///
    /// # Errors
    ///
    /// Fails on a duplicate name or invalid width.
    pub fn add_wire(
        &mut self,
        name: impl Into<String>,
        expr: ExprId,
    ) -> Result<SignalId, DesignError> {
        let width = self.expr_width(expr);
        self.add_signal(name, width, SignalKind::Wire, Some(expr))
    }

    /// Adds a primary output driven by `expr`.
    ///
    /// # Errors
    ///
    /// Fails on a duplicate name or invalid width.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        expr: ExprId,
    ) -> Result<SignalId, DesignError> {
        let width = self.expr_width(expr);
        self.add_signal(name, width, SignalKind::Output, Some(expr))
    }

    // ------------------------------------------------------------------
    // Signal queries
    // ------------------------------------------------------------------

    /// Looks a signal up by name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<SignalId> {
        self.names.get(name).copied()
    }

    /// Looks a signal up by name, returning an error when absent.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::UnknownSignal`] if no signal has that name.
    pub fn require(&self, name: &str) -> Result<SignalId, DesignError> {
        self.lookup(name).ok_or_else(|| DesignError::UnknownSignal {
            name: name.to_string(),
        })
    }

    /// The signal record for `id`.
    #[must_use]
    pub fn signal_info(&self, id: SignalId) -> &Signal {
        &self.signals[id.index()]
    }

    /// Name of a signal.
    #[must_use]
    pub fn signal_name(&self, id: SignalId) -> &str {
        &self.signals[id.index()].name
    }

    /// Width of a signal in bits.
    #[must_use]
    pub fn signal_width(&self, id: SignalId) -> u32 {
        self.signals[id.index()].width
    }

    /// Number of signals in the design.
    #[must_use]
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// Number of expression nodes in the arena.
    #[must_use]
    pub fn num_exprs(&self) -> usize {
        self.exprs.len()
    }

    /// Iterates over all signal ids in creation order.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.signals.len() as u32).map(SignalId)
    }

    /// Iterates over all signals with their ids.
    pub fn signals(&self) -> impl Iterator<Item = (SignalId, &Signal)> + '_ {
        self.signals
            .iter()
            .enumerate()
            .map(|(i, s)| (SignalId(i as u32), s))
    }

    /// All primary inputs.
    #[must_use]
    pub fn inputs(&self) -> Vec<SignalId> {
        self.of_kind(|k| matches!(k, SignalKind::Input))
    }

    /// All primary outputs.
    #[must_use]
    pub fn outputs(&self) -> Vec<SignalId> {
        self.of_kind(|k| matches!(k, SignalKind::Output))
    }

    /// All registers.
    #[must_use]
    pub fn registers(&self) -> Vec<SignalId> {
        self.of_kind(SignalKind::is_register)
    }

    /// All named wires.
    #[must_use]
    pub fn wires(&self) -> Vec<SignalId> {
        self.of_kind(|k| matches!(k, SignalKind::Wire))
    }

    /// All state and output signals — the signals the detection properties
    /// range over.
    #[must_use]
    pub fn state_and_output_signals(&self) -> Vec<SignalId> {
        self.of_kind(SignalKind::is_state_or_output)
    }

    fn of_kind(&self, pred: impl Fn(SignalKind) -> bool) -> Vec<SignalId> {
        self.signals()
            .filter(|(_, s)| pred(s.kind))
            .map(|(id, _)| id)
            .collect()
    }

    // ------------------------------------------------------------------
    // Expression arena
    // ------------------------------------------------------------------

    fn intern(&mut self, expr: Expr, width: u32) -> ExprId {
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(expr);
        self.expr_widths.push(width);
        id
    }

    /// The expression node behind an [`ExprId`].
    #[must_use]
    pub fn expr(&self, id: ExprId) -> &Expr {
        &self.exprs[id.index()]
    }

    /// Width of an expression in bits.
    #[must_use]
    pub fn expr_width(&self, id: ExprId) -> u32 {
        self.expr_widths[id.index()]
    }

    /// The interned signal-reference expression for a signal.
    #[must_use]
    pub fn signal(&self, id: SignalId) -> ExprId {
        self.signals[id.index()].expr
    }

    /// A constant expression of the given width.
    ///
    /// # Errors
    ///
    /// Fails if `value` does not fit into `width` bits or `width` is invalid.
    pub fn constant(&mut self, value: u128, width: u32) -> Result<ExprId, DesignError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(DesignError::InvalidWidth { width });
        }
        if width < 128 && value >> width != 0 {
            return Err(DesignError::ConstantTooWide { value, width });
        }
        Ok(self.intern(Expr::Const { value, width }, width))
    }

    /// The all-zeros constant of the given width.
    ///
    /// # Errors
    ///
    /// Fails if `width` is invalid.
    pub fn zero(&mut self, width: u32) -> Result<ExprId, DesignError> {
        self.constant(0, width)
    }

    /// The all-ones constant of the given width.
    ///
    /// # Errors
    ///
    /// Fails if `width` is invalid.
    pub fn ones(&mut self, width: u32) -> Result<ExprId, DesignError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(DesignError::InvalidWidth { width });
        }
        let value = if width == 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        };
        self.constant(value, width)
    }

    fn unary(&mut self, op: UnaryOp, a: ExprId) -> ExprId {
        let width = match op {
            UnaryOp::Not | UnaryOp::Neg => self.expr_width(a),
            UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor => 1,
        };
        self.intern(Expr::Unary { op, a }, width)
    }

    fn binary(&mut self, op: BinaryOp, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        let wa = self.expr_width(a);
        let wb = self.expr_width(b);
        let width = match op {
            BinaryOp::Shl | BinaryOp::Shr => wa,
            _ => {
                if wa != wb {
                    return Err(DesignError::WidthMismatch {
                        left: wa,
                        right: wb,
                        context: op.mnemonic(),
                    });
                }
                if op.is_comparison() {
                    1
                } else {
                    wa
                }
            }
        };
        Ok(self.intern(Expr::Binary { op, a, b }, width))
    }

    /// Bitwise complement.
    pub fn not(&mut self, a: ExprId) -> ExprId {
        self.unary(UnaryOp::Not, a)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: ExprId) -> ExprId {
        self.unary(UnaryOp::Neg, a)
    }

    /// AND-reduction to one bit.
    pub fn red_and(&mut self, a: ExprId) -> ExprId {
        self.unary(UnaryOp::RedAnd, a)
    }

    /// OR-reduction to one bit.
    pub fn red_or(&mut self, a: ExprId) -> ExprId {
        self.unary(UnaryOp::RedOr, a)
    }

    /// XOR-reduction (parity) to one bit.
    pub fn red_xor(&mut self, a: ExprId) -> ExprId {
        self.unary(UnaryOp::RedXor, a)
    }

    /// Bitwise AND.
    ///
    /// # Errors
    ///
    /// Fails if the operand widths differ.
    pub fn and(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::And, a, b)
    }

    /// Bitwise OR.
    ///
    /// # Errors
    ///
    /// Fails if the operand widths differ.
    pub fn or(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::Or, a, b)
    }

    /// Bitwise XOR.
    ///
    /// # Errors
    ///
    /// Fails if the operand widths differ.
    pub fn xor(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::Xor, a, b)
    }

    /// Wrapping addition.
    ///
    /// # Errors
    ///
    /// Fails if the operand widths differ.
    pub fn add(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::Add, a, b)
    }

    /// Wrapping subtraction.
    ///
    /// # Errors
    ///
    /// Fails if the operand widths differ.
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::Sub, a, b)
    }

    /// Wrapping multiplication.
    ///
    /// # Errors
    ///
    /// Fails if the operand widths differ.
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::Mul, a, b)
    }

    /// Equality comparison (1-bit result).
    ///
    /// # Errors
    ///
    /// Fails if the operand widths differ.
    pub fn cmp_eq(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::Eq, a, b)
    }

    /// Inequality comparison (1-bit result).
    ///
    /// # Errors
    ///
    /// Fails if the operand widths differ.
    pub fn cmp_ne(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::Ne, a, b)
    }

    /// Unsigned less-than (1-bit result).
    ///
    /// # Errors
    ///
    /// Fails if the operand widths differ.
    pub fn cmp_ult(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::Ult, a, b)
    }

    /// Unsigned less-than-or-equal (1-bit result).
    ///
    /// # Errors
    ///
    /// Fails if the operand widths differ.
    pub fn cmp_ule(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::Ule, a, b)
    }

    /// Logical shift left by `b`.
    ///
    /// # Errors
    ///
    /// Currently infallible, kept fallible for consistency with other binary
    /// constructors.
    pub fn shl(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::Shl, a, b)
    }

    /// Logical shift right by `b`.
    ///
    /// # Errors
    ///
    /// Currently infallible, kept fallible for consistency with other binary
    /// constructors.
    pub fn shr(&mut self, a: ExprId, b: ExprId) -> Result<ExprId, DesignError> {
        self.binary(BinaryOp::Shr, a, b)
    }

    /// 2-to-1 multiplexer: `cond ? then_e : else_e`.
    ///
    /// # Errors
    ///
    /// Fails if `cond` is not 1 bit wide or the branches have different
    /// widths.
    pub fn mux(
        &mut self,
        cond: ExprId,
        then_e: ExprId,
        else_e: ExprId,
    ) -> Result<ExprId, DesignError> {
        let wc = self.expr_width(cond);
        if wc != 1 {
            return Err(DesignError::ConditionNotBoolean { width: wc });
        }
        let wt = self.expr_width(then_e);
        let we = self.expr_width(else_e);
        if wt != we {
            return Err(DesignError::WidthMismatch {
                left: wt,
                right: we,
                context: "mux",
            });
        }
        Ok(self.intern(
            Expr::Mux {
                cond,
                then_e,
                else_e,
            },
            wt,
        ))
    }

    /// Bit slice `a[hi:lo]` (inclusive).
    ///
    /// # Errors
    ///
    /// Fails if `hi < lo` or `hi` is outside the operand width.
    pub fn slice(&mut self, a: ExprId, hi: u32, lo: u32) -> Result<ExprId, DesignError> {
        let wa = self.expr_width(a);
        if hi < lo || hi >= wa {
            return Err(DesignError::InvalidSlice { hi, lo, width: wa });
        }
        Ok(self.intern(Expr::Slice { a, hi, lo }, hi - lo + 1))
    }

    /// Single-bit slice `a[i]`.
    ///
    /// # Errors
    ///
    /// Fails if `i` is outside the operand width.
    pub fn bit(&mut self, a: ExprId, i: u32) -> Result<ExprId, DesignError> {
        self.slice(a, i, i)
    }

    /// Concatenation `{hi, lo}` with `hi` in the most-significant position.
    ///
    /// # Errors
    ///
    /// Fails if the combined width exceeds [`MAX_WIDTH`].
    pub fn concat(&mut self, hi: ExprId, lo: ExprId) -> Result<ExprId, DesignError> {
        let width = self.expr_width(hi) + self.expr_width(lo);
        if width > MAX_WIDTH {
            return Err(DesignError::InvalidWidth { width });
        }
        Ok(self.intern(Expr::Concat { hi, lo }, width))
    }

    /// Concatenation of several parts; the first element is the most
    /// significant.
    ///
    /// # Errors
    ///
    /// Fails if `parts` is empty or the combined width exceeds [`MAX_WIDTH`].
    pub fn concat_all(&mut self, parts: &[ExprId]) -> Result<ExprId, DesignError> {
        let Some((&first, rest)) = parts.split_first() else {
            return Err(DesignError::InvalidWidth { width: 0 });
        };
        let mut acc = first;
        for &p in rest {
            acc = self.concat(acc, p)?;
        }
        Ok(acc)
    }

    /// Zero-extends `a` to `width` bits (no-op if already that wide).
    ///
    /// # Errors
    ///
    /// Fails if `width` is smaller than the operand width or invalid.
    pub fn zero_ext(&mut self, a: ExprId, width: u32) -> Result<ExprId, DesignError> {
        let wa = self.expr_width(a);
        if width < wa || width > MAX_WIDTH {
            return Err(DesignError::InvalidWidth { width });
        }
        if width == wa {
            return Ok(a);
        }
        let zeros = self.zero(width - wa)?;
        self.concat(zeros, a)
    }

    /// Compares `a` against a constant of the same width (1-bit result).
    ///
    /// # Errors
    ///
    /// Fails if the constant does not fit the operand width.
    pub fn eq_const(&mut self, a: ExprId, value: u128) -> Result<ExprId, DesignError> {
        let w = self.expr_width(a);
        let c = self.constant(value, w)?;
        self.cmp_eq(a, c)
    }

    /// A read-only lookup table (e.g. the AES S-box).
    ///
    /// `table` must have exactly `2^index_width` entries, each fitting into
    /// `width` bits, where `index_width` is the width of `index`.
    ///
    /// # Errors
    ///
    /// Fails if the table size or entry widths are inconsistent.
    pub fn rom(
        &mut self,
        table: Vec<u128>,
        index: ExprId,
        width: u32,
    ) -> Result<ExprId, DesignError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(DesignError::InvalidWidth { width });
        }
        let index_width = self.expr_width(index);
        if index_width > 20 {
            return Err(DesignError::InvalidRom {
                reason: format!("index width {index_width} too large (max 20)"),
            });
        }
        let expected = 1usize << index_width;
        if table.len() != expected {
            return Err(DesignError::InvalidRom {
                reason: format!("table has {} entries, expected {expected}", table.len()),
            });
        }
        if width < 128 {
            if let Some(&bad) = table.iter().find(|&&v| v >> width != 0) {
                return Err(DesignError::InvalidRom {
                    reason: format!("entry {bad:#x} does not fit into {width} bits"),
                });
            }
        }
        Ok(self.intern(
            Expr::Rom {
                table: Arc::new(table),
                index,
                width,
            },
            width,
        ))
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Checks the design for completeness and absence of combinational loops.
    ///
    /// # Errors
    ///
    /// Returns the first problem found: a register without a next-state
    /// expression, a driver width mismatch, or a combinational loop.
    pub fn validate(&self) -> Result<(), DesignError> {
        for (_, s) in self.signals() {
            match s.kind {
                SignalKind::Input => {}
                SignalKind::Register { .. } | SignalKind::Wire | SignalKind::Output => {
                    let Some(driver) = s.driver else {
                        return Err(DesignError::RegisterWithoutNext {
                            name: s.name.clone(),
                        });
                    };
                    let dw = self.expr_width(driver);
                    if dw != s.width {
                        return Err(DesignError::SignalWidthMismatch {
                            name: s.name.clone(),
                            declared: s.width,
                            driver: dw,
                        });
                    }
                }
            }
        }
        self.check_combinational_loops()
    }

    /// Validates the design and wraps it in a [`ValidatedDesign`].
    ///
    /// # Errors
    ///
    /// Same as [`validate`](Self::validate).
    pub fn validated(self) -> Result<ValidatedDesign, DesignError> {
        self.validate()?;
        Ok(ValidatedDesign { design: self })
    }

    /// Signals referenced (combinationally) by an expression, i.e. the leaves
    /// of the expression tree.
    #[must_use]
    pub fn expr_signals(&self, root: ExprId) -> Vec<SignalId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.exprs.len()];
        let mut stack = vec![root];
        while let Some(e) = stack.pop() {
            if seen[e.index()] {
                continue;
            }
            seen[e.index()] = true;
            if let Some(s) = self.expr(e).as_signal() {
                out.push(s);
            }
            stack.extend(self.expr(e).children());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn check_combinational_loops(&self) -> Result<(), DesignError> {
        // Combinational dependency edges run from a wire/output signal to the
        // signals its driver reads. Registers and inputs are sources (their
        // current value does not combinationally depend on anything).
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.signals.len()];
        for start in self.signal_ids() {
            if marks[start.index()] != Mark::White {
                continue;
            }
            // Iterative DFS with an explicit stack of (signal, next child idx).
            let mut stack: Vec<(SignalId, Vec<SignalId>, usize)> = Vec::new();
            let push_node = |sig: SignalId,
                             marks: &mut Vec<Mark>|
             -> Option<(SignalId, Vec<SignalId>, usize)> {
                let s = &self.signals[sig.index()];
                let combinational = matches!(s.kind, SignalKind::Wire | SignalKind::Output);
                marks[sig.index()] = Mark::Grey;
                let children = if combinational {
                    s.driver.map(|d| self.expr_signals(d)).unwrap_or_default()
                } else {
                    Vec::new()
                };
                Some((sig, children, 0))
            };
            if let Some(node) = push_node(start, &mut marks) {
                stack.push(node);
            }
            while let Some((sig, children, idx)) = stack.last_mut() {
                if *idx >= children.len() {
                    marks[sig.index()] = Mark::Black;
                    stack.pop();
                    continue;
                }
                let child = children[*idx];
                *idx += 1;
                match marks[child.index()] {
                    Mark::Black => {}
                    Mark::Grey => {
                        return Err(DesignError::CombinationalLoop {
                            signal: self.signal_name(child).to_string(),
                        });
                    }
                    Mark::White => {
                        if let Some(node) = push_node(child, &mut marks) {
                            stack.push(node);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn reg_check(design: &Design, reg: SignalId) -> Result<SignalId, DesignError> {
    if reg.index() >= design.num_signals() {
        return Err(DesignError::UnknownSignal {
            name: format!("{reg:?}"),
        });
    }
    Ok(reg)
}

/// A design that has passed [`Design::validate`].
///
/// The simulator, the structural analysis and the property checker only accept
/// validated designs, which guarantees that every register has a next-state
/// function, all widths are consistent and there are no combinational loops.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidatedDesign {
    design: Design,
}

impl ValidatedDesign {
    /// The underlying design.
    #[must_use]
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Consumes the wrapper and returns the underlying design (e.g. to modify
    /// it and re-validate).
    #[must_use]
    pub fn into_inner(self) -> Design {
        self.design
    }
}

impl AsRef<Design> for ValidatedDesign {
    fn as_ref(&self) -> &Design {
        &self.design
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_design() -> Design {
        let mut d = Design::new("counter");
        let en = d.add_input("en", 1).unwrap();
        let count = d.add_register("count", 4, 0).unwrap();
        let one = d.constant(1, 4).unwrap();
        let inc = d.add(d.signal(count), one).unwrap();
        let next = d.mux(d.signal(en), inc, d.signal(count)).unwrap();
        d.set_register_next(count, next).unwrap();
        d.add_output("value", d.signal(count)).unwrap();
        d
    }

    #[test]
    fn builder_produces_valid_counter() {
        let d = counter_design();
        assert!(d.validate().is_ok());
        assert_eq!(d.inputs().len(), 1);
        assert_eq!(d.outputs().len(), 1);
        assert_eq!(d.registers().len(), 1);
        assert_eq!(d.state_and_output_signals().len(), 2);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut d = Design::new("dup");
        d.add_input("a", 1).unwrap();
        assert_eq!(
            d.add_input("a", 2).unwrap_err(),
            DesignError::DuplicateName { name: "a".into() }
        );
    }

    #[test]
    fn invalid_widths_are_rejected() {
        let mut d = Design::new("w");
        assert!(matches!(
            d.add_input("z", 0),
            Err(DesignError::InvalidWidth { .. })
        ));
        assert!(matches!(
            d.add_input("big", 129),
            Err(DesignError::InvalidWidth { .. })
        ));
        assert!(d.add_input("ok", 128).is_ok());
    }

    #[test]
    fn constant_too_wide_is_rejected() {
        let mut d = Design::new("c");
        assert!(matches!(
            d.constant(4, 2),
            Err(DesignError::ConstantTooWide { .. })
        ));
        assert!(d.constant(3, 2).is_ok());
        assert!(d.constant(u128::MAX, 128).is_ok());
    }

    #[test]
    fn width_mismatch_in_binary_op() {
        let mut d = Design::new("m");
        let a = d.add_input("a", 4).unwrap();
        let b = d.add_input("b", 8).unwrap();
        assert!(matches!(
            d.add(d.signal(a), d.signal(b)),
            Err(DesignError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn mux_condition_must_be_one_bit() {
        let mut d = Design::new("m");
        let c = d.add_input("c", 2).unwrap();
        let a = d.add_input("a", 4).unwrap();
        let b = d.add_input("b", 4).unwrap();
        assert!(matches!(
            d.mux(d.signal(c), d.signal(a), d.signal(b)),
            Err(DesignError::ConditionNotBoolean { .. })
        ));
    }

    #[test]
    fn slice_bounds_are_checked() {
        let mut d = Design::new("s");
        let a = d.add_input("a", 8).unwrap();
        assert!(matches!(
            d.slice(d.signal(a), 8, 0),
            Err(DesignError::InvalidSlice { .. })
        ));
        assert!(matches!(
            d.slice(d.signal(a), 2, 3),
            Err(DesignError::InvalidSlice { .. })
        ));
        let s = d.slice(d.signal(a), 7, 4).unwrap();
        assert_eq!(d.expr_width(s), 4);
    }

    #[test]
    fn concat_and_zero_ext_widths() {
        let mut d = Design::new("cz");
        let a = d.add_input("a", 3).unwrap();
        let b = d.add_input("b", 5).unwrap();
        let cat = d.concat(d.signal(a), d.signal(b)).unwrap();
        assert_eq!(d.expr_width(cat), 8);
        let ext = d.zero_ext(d.signal(a), 16).unwrap();
        assert_eq!(d.expr_width(ext), 16);
        let same = d.zero_ext(d.signal(a), 3).unwrap();
        assert_eq!(same, d.signal(a));
    }

    #[test]
    fn register_without_next_fails_validation() {
        let mut d = Design::new("r");
        d.add_register("r0", 4, 0).unwrap();
        assert!(matches!(
            d.validate(),
            Err(DesignError::RegisterWithoutNext { .. })
        ));
    }

    #[test]
    fn register_reset_must_fit() {
        let mut d = Design::new("r");
        assert!(matches!(
            d.add_register("r0", 2, 7),
            Err(DesignError::ConstantTooWide { .. })
        ));
    }

    #[test]
    fn combinational_loop_is_detected() {
        // The builder only allows references to already-driven signals, so a
        // combinational loop cannot be constructed through it; the check
        // exists as defence-in-depth for hand-built or parsed designs. Here we
        // only assert that an acyclic wire chain passes.
        let mut d = Design::new("loop");
        let a = d.add_input("a", 1).unwrap();
        let w = d.add_wire("w", d.signal(a)).unwrap();
        d.add_output("o", d.signal(w)).unwrap();
        assert!(d.validate().is_ok());
    }

    #[test]
    fn rom_table_size_is_checked() {
        let mut d = Design::new("rom");
        let idx = d.add_input("idx", 2).unwrap();
        assert!(matches!(
            d.rom(vec![1, 2, 3], d.signal(idx), 8),
            Err(DesignError::InvalidRom { .. })
        ));
        assert!(d.rom(vec![1, 2, 3, 4], d.signal(idx), 8).is_ok());
        assert!(matches!(
            d.rom(vec![1, 2, 3, 256], d.signal(idx), 8),
            Err(DesignError::InvalidRom { .. })
        ));
    }

    #[test]
    fn expr_signals_lists_unique_leaves() {
        let mut d = Design::new("leaves");
        let a = d.add_input("a", 4).unwrap();
        let b = d.add_input("b", 4).unwrap();
        let x = d.xor(d.signal(a), d.signal(b)).unwrap();
        let y = d.and(x, d.signal(a)).unwrap();
        let sigs = d.expr_signals(y);
        assert_eq!(sigs, vec![a, b]);
    }

    #[test]
    fn validated_design_exposes_inner() {
        let d = counter_design();
        let v = d.clone().validated().unwrap();
        assert_eq!(v.design().name(), "counter");
        assert_eq!(v.as_ref().num_signals(), d.num_signals());
        let back = v.into_inner();
        assert_eq!(back.name(), "counter");
    }

    #[test]
    fn set_register_next_rejects_non_registers() {
        let mut d = Design::new("bad");
        let a = d.add_input("a", 1).unwrap();
        let e = d.signal(a);
        assert!(matches!(
            d.set_register_next(a, e),
            Err(DesignError::InvalidSignalKind { .. })
        ));
    }

    #[test]
    fn require_reports_unknown_signals() {
        let d = Design::new("q");
        assert!(matches!(
            d.require("nope"),
            Err(DesignError::UnknownSignal { .. })
        ));
    }
}
