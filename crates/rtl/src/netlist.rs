//! Plain-text netlist format.
//!
//! The paper operates on Verilog RTL; a full Verilog front-end is out of
//! scope for this reproduction (see DESIGN.md), so designs can instead be
//! dumped to and parsed from a small, line-oriented netlist format.  This is
//! the interchange point for users who want to bring their own designs to the
//! detection flow without writing Rust code.
//!
//! # Format
//!
//! ```text
//! design counter
//! input en 1
//! register count 4 0
//! wire inc 4 = (add count (const 4 1))
//! next count = (mux en inc count)
//! output value 4 = count
//! ```
//!
//! * One statement per line; `#` starts a comment.
//! * Expressions are s-expressions; bare identifiers refer to signals,
//!   `(const <width> <value>)` is a constant (decimal or `0x…`),
//!   `(rom <width> (v0 v1 …) <index>)` is a lookup table.
//! * Signals must be declared before they are referenced; `next` supplies a
//!   register's next-state function after its declaration.

use std::fmt::Write as _;

use crate::design::{Design, SignalId, SignalKind, ValidatedDesign};
use crate::error::DesignError;
use crate::expr::{BinaryOp, Expr, ExprId, UnaryOp};

/// Serialises a design to the textual netlist format.
///
/// The output round-trips through [`parse`]: `parse(&dump(d))` reconstructs a
/// design with the same signals and behaviour.
#[must_use]
pub fn dump(design: &ValidatedDesign) -> String {
    let d = design.design();
    let mut out = String::new();
    let _ = writeln!(out, "design {}", d.name());
    // Declarations first (inputs, registers), then wires/outputs/next in
    // creation order so that references are always to already-printed names.
    for (_, s) in d.signals() {
        match s.kind() {
            SignalKind::Input => {
                let _ = writeln!(out, "input {} {}", s.name(), s.width());
            }
            SignalKind::Register { reset } => {
                let _ = writeln!(out, "register {} {} {:#x}", s.name(), s.width(), reset);
            }
            _ => {}
        }
    }
    for (_, s) in d.signals() {
        match s.kind() {
            SignalKind::Wire => {
                let _ = writeln!(
                    out,
                    "wire {} {} = {}",
                    s.name(),
                    s.width(),
                    format_expr(d, s.driver().expect("validated design"))
                );
            }
            SignalKind::Output => {
                let _ = writeln!(
                    out,
                    "output {} {} = {}",
                    s.name(),
                    s.width(),
                    format_expr(d, s.driver().expect("validated design"))
                );
            }
            _ => {}
        }
    }
    for (_, s) in d.signals() {
        if s.kind().is_register() {
            let _ = writeln!(
                out,
                "next {} = {}",
                s.name(),
                format_expr(d, s.driver().expect("validated design"))
            );
        }
    }
    out
}

/// A content-addressed key for a design: the [`FxHash`](crate::fxhash) of
/// its canonical netlist form ([`dump`]).
///
/// Two designs hash equal exactly when their canonical dumps are
/// byte-identical — same signals in the same creation order with the same
/// drivers — which is the invariant a design-keyed cache needs: everything
/// the detection flow computes (bit-blast, CNF, reports) is a deterministic
/// function of that canonical form.  Textual differences that `parse`
/// normalises away (whitespace, comments, decimal vs hex constants) do not
/// affect the hash of the *parsed* design; any structural change — one gate,
/// one constant bit, one renamed signal — changes it.
///
/// Not a cryptographic hash: collisions are possible in principle, so
/// security-sensitive callers must compare the dumps on a hash hit.
#[must_use]
pub fn content_hash(design: &ValidatedDesign) -> u64 {
    hash_of_dump(&dump(design))
}

/// The [`content_hash`] of an already-serialised canonical netlist:
/// `hash_of_dump(&dump(d)) == content_hash(d)` for every design.  Callers
/// that need both the key and the dump text — e.g. a cache that must compare
/// dumps on a hash hit — pay for one [`dump`] walk instead of two.
#[must_use]
pub fn hash_of_dump(dump: &str) -> u64 {
    use std::hash::Hasher as _;
    let mut hasher = crate::fxhash::FxHasher::default();
    hasher.write(dump.as_bytes());
    hasher.finish()
}

impl ValidatedDesign {
    /// The design's content hash: see [`content_hash`].
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        content_hash(self)
    }
}

/// Renders one expression as an s-expression (used by [`dump`] and by the
/// counterexample pretty-printer in `htd-core`).
#[must_use]
pub fn format_expr(design: &Design, expr: ExprId) -> String {
    match design.expr(expr) {
        Expr::Const { value, width } => format!("(const {width} {value:#x})"),
        Expr::Signal(s) => design.signal_name(*s).to_string(),
        Expr::Unary { op, a } => {
            format!("({} {})", op.mnemonic(), format_expr(design, *a))
        }
        Expr::Binary { op, a, b } => format!(
            "({} {} {})",
            op.mnemonic(),
            format_expr(design, *a),
            format_expr(design, *b)
        ),
        Expr::Mux {
            cond,
            then_e,
            else_e,
        } => format!(
            "(mux {} {} {})",
            format_expr(design, *cond),
            format_expr(design, *then_e),
            format_expr(design, *else_e)
        ),
        Expr::Slice { a, hi, lo } => {
            format!("(slice {} {hi} {lo})", format_expr(design, *a))
        }
        Expr::Concat { hi, lo } => format!(
            "(concat {} {})",
            format_expr(design, *hi),
            format_expr(design, *lo)
        ),
        Expr::Rom {
            table,
            index,
            width,
        } => {
            let mut entries = String::new();
            for (i, v) in table.iter().enumerate() {
                if i > 0 {
                    entries.push(' ');
                }
                let _ = write!(entries, "{v:#x}");
            }
            format!("(rom {width} ({entries}) {})", format_expr(design, *index))
        }
    }
}

/// Parses a textual netlist into a validated design.
///
/// # Errors
///
/// Returns [`DesignError::Parse`] (with a line number) for syntax errors,
/// references to undeclared signals, or any builder error (width mismatches
/// etc.), and the underlying validation error if the parsed design is
/// incomplete.
pub fn parse(text: &str) -> Result<ValidatedDesign, DesignError> {
    let mut design: Option<Design> = None;
    for (line_no, raw_line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, char::is_whitespace);
        let keyword = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        match keyword {
            "design" => {
                if rest.is_empty() {
                    return Err(parse_err(line_no, "missing design name"));
                }
                design = Some(Design::new(rest));
            }
            "input" | "register" | "wire" | "output" | "next" => {
                let d = design
                    .as_mut()
                    .ok_or_else(|| parse_err(line_no, "statement before `design` line"))?;
                parse_statement(d, keyword, rest, line_no)?;
            }
            other => {
                return Err(parse_err(line_no, &format!("unknown keyword `{other}`")));
            }
        }
    }
    let design = design.ok_or_else(|| parse_err(0, "empty netlist"))?;
    design.validated()
}

fn parse_err(line: usize, message: &str) -> DesignError {
    DesignError::Parse {
        line,
        message: message.to_string(),
    }
}

fn parse_statement(
    d: &mut Design,
    keyword: &str,
    rest: &str,
    line: usize,
) -> Result<(), DesignError> {
    match keyword {
        "input" | "register" => {
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            if keyword == "input" {
                let [name, width] = tokens[..] else {
                    return Err(parse_err(line, "expected `input <name> <width>`"));
                };
                let width = parse_number(width, line)? as u32;
                d.add_input(name, width).map_err(|e| wrap(e, line))?;
            } else {
                let [name, width, reset] = tokens[..] else {
                    return Err(parse_err(
                        line,
                        "expected `register <name> <width> <reset>`",
                    ));
                };
                let width = parse_number(width, line)? as u32;
                let reset = parse_number(reset, line)?;
                d.add_register(name, width, reset)
                    .map_err(|e| wrap(e, line))?;
            }
            Ok(())
        }
        "wire" | "output" => {
            let (header, expr_text) = rest
                .split_once('=')
                .ok_or_else(|| parse_err(line, "expected `= <expr>`"))?;
            let tokens: Vec<&str> = header.split_whitespace().collect();
            let [name, width] = tokens[..] else {
                return Err(parse_err(line, "expected `<name> <width> = <expr>`"));
            };
            let width = parse_number(width, line)? as u32;
            let expr = parse_expr(d, expr_text.trim(), line)?;
            let actual = d.expr_width(expr);
            if actual != width {
                return Err(parse_err(
                    line,
                    &format!("declared width {width} but expression is {actual} bits"),
                ));
            }
            if keyword == "wire" {
                d.add_wire(name, expr).map_err(|e| wrap(e, line))?;
            } else {
                d.add_output(name, expr).map_err(|e| wrap(e, line))?;
            }
            Ok(())
        }
        "next" => {
            let (name, expr_text) = rest
                .split_once('=')
                .ok_or_else(|| parse_err(line, "expected `next <register> = <expr>`"))?;
            let name = name.trim();
            let reg = d.require(name).map_err(|e| wrap(e, line))?;
            let expr = parse_expr(d, expr_text.trim(), line)?;
            d.set_register_next(reg, expr).map_err(|e| wrap(e, line))
        }
        _ => unreachable!("caller filters keywords"),
    }
}

fn wrap(err: DesignError, line: usize) -> DesignError {
    match err {
        DesignError::Parse { message, .. } => DesignError::Parse { line, message },
        other => DesignError::Parse {
            line,
            message: other.to_string(),
        },
    }
}

fn parse_number(token: &str, line: usize) -> Result<u128, DesignError> {
    let token = token.trim();
    let parsed = if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u128::from_str_radix(hex, 16)
    } else {
        token.parse()
    };
    parsed.map_err(|_| parse_err(line, &format!("invalid number `{token}`")))
}

/// S-expression tokens.
#[derive(Debug, PartialEq)]
enum Token {
    Open,
    Close,
    Atom(String),
}

fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut atom = String::new();
    for c in text.chars() {
        match c {
            '(' | ')' => {
                if !atom.is_empty() {
                    tokens.push(Token::Atom(std::mem::take(&mut atom)));
                }
                tokens.push(if c == '(' { Token::Open } else { Token::Close });
            }
            c if c.is_whitespace() => {
                if !atom.is_empty() {
                    tokens.push(Token::Atom(std::mem::take(&mut atom)));
                }
            }
            c => atom.push(c),
        }
    }
    if !atom.is_empty() {
        tokens.push(Token::Atom(atom));
    }
    tokens
}

/// Parses an s-expression into a design expression.
fn parse_expr(d: &mut Design, text: &str, line: usize) -> Result<ExprId, DesignError> {
    let tokens = tokenize(text);
    let mut pos = 0;
    let expr = parse_sexpr(d, &tokens, &mut pos, line)?;
    if pos != tokens.len() {
        return Err(parse_err(line, "trailing tokens after expression"));
    }
    Ok(expr)
}

fn parse_sexpr(
    d: &mut Design,
    tokens: &[Token],
    pos: &mut usize,
    line: usize,
) -> Result<ExprId, DesignError> {
    match tokens.get(*pos) {
        Some(Token::Atom(name)) => {
            *pos += 1;
            let sig = signal_ref(d, name, line)?;
            Ok(d.signal(sig))
        }
        Some(Token::Open) => {
            *pos += 1;
            let Some(Token::Atom(op)) = tokens.get(*pos) else {
                return Err(parse_err(line, "expected operator after `(`"));
            };
            let op = op.clone();
            *pos += 1;
            let expr = parse_operator(d, &op, tokens, pos, line)?;
            match tokens.get(*pos) {
                Some(Token::Close) => {
                    *pos += 1;
                    Ok(expr)
                }
                _ => Err(parse_err(line, &format!("missing `)` after `{op}`"))),
            }
        }
        _ => Err(parse_err(line, "unexpected end of expression")),
    }
}

fn parse_operator(
    d: &mut Design,
    op: &str,
    tokens: &[Token],
    pos: &mut usize,
    line: usize,
) -> Result<ExprId, DesignError> {
    let atom = |pos: &mut usize| -> Result<String, DesignError> {
        match tokens.get(*pos) {
            Some(Token::Atom(a)) => {
                *pos += 1;
                Ok(a.clone())
            }
            _ => Err(parse_err(
                line,
                &format!("expected literal argument for `{op}`"),
            )),
        }
    };
    match op {
        "const" => {
            let width = parse_number(&atom(pos)?, line)? as u32;
            let value = parse_number(&atom(pos)?, line)?;
            d.constant(value, width).map_err(|e| wrap(e, line))
        }
        "slice" => {
            let a = parse_sexpr(d, tokens, pos, line)?;
            let hi = parse_number(&atom(pos)?, line)? as u32;
            let lo = parse_number(&atom(pos)?, line)? as u32;
            d.slice(a, hi, lo).map_err(|e| wrap(e, line))
        }
        "rom" => {
            let width = parse_number(&atom(pos)?, line)? as u32;
            if tokens.get(*pos) != Some(&Token::Open) {
                return Err(parse_err(line, "expected `(` starting the rom table"));
            }
            *pos += 1;
            let mut table = Vec::new();
            while let Some(Token::Atom(a)) = tokens.get(*pos) {
                table.push(parse_number(a, line)?);
                *pos += 1;
            }
            if tokens.get(*pos) != Some(&Token::Close) {
                return Err(parse_err(line, "expected `)` ending the rom table"));
            }
            *pos += 1;
            let index = parse_sexpr(d, tokens, pos, line)?;
            d.rom(table, index, width).map_err(|e| wrap(e, line))
        }
        "mux" => {
            let c = parse_sexpr(d, tokens, pos, line)?;
            let t = parse_sexpr(d, tokens, pos, line)?;
            let e = parse_sexpr(d, tokens, pos, line)?;
            d.mux(c, t, e).map_err(|e| wrap(e, line))
        }
        "concat" => {
            let hi = parse_sexpr(d, tokens, pos, line)?;
            let lo = parse_sexpr(d, tokens, pos, line)?;
            d.concat(hi, lo).map_err(|e| wrap(e, line))
        }
        "not" | "neg" | "redand" | "redor" | "redxor" => {
            let a = parse_sexpr(d, tokens, pos, line)?;
            let unary = match op {
                "not" => UnaryOp::Not,
                "neg" => UnaryOp::Neg,
                "redand" => UnaryOp::RedAnd,
                "redor" => UnaryOp::RedOr,
                _ => UnaryOp::RedXor,
            };
            Ok(match unary {
                UnaryOp::Not => d.not(a),
                UnaryOp::Neg => d.neg(a),
                UnaryOp::RedAnd => d.red_and(a),
                UnaryOp::RedOr => d.red_or(a),
                UnaryOp::RedXor => d.red_xor(a),
            })
        }
        binop => {
            let op_enum = match binop {
                "and" => BinaryOp::And,
                "or" => BinaryOp::Or,
                "xor" => BinaryOp::Xor,
                "add" => BinaryOp::Add,
                "sub" => BinaryOp::Sub,
                "mul" => BinaryOp::Mul,
                "eq" => BinaryOp::Eq,
                "ne" => BinaryOp::Ne,
                "ult" => BinaryOp::Ult,
                "ule" => BinaryOp::Ule,
                "shl" => BinaryOp::Shl,
                "shr" => BinaryOp::Shr,
                other => {
                    return Err(parse_err(line, &format!("unknown operator `{other}`")));
                }
            };
            let a = parse_sexpr(d, tokens, pos, line)?;
            let b = parse_sexpr(d, tokens, pos, line)?;
            let built = match op_enum {
                BinaryOp::And => d.and(a, b),
                BinaryOp::Or => d.or(a, b),
                BinaryOp::Xor => d.xor(a, b),
                BinaryOp::Add => d.add(a, b),
                BinaryOp::Sub => d.sub(a, b),
                BinaryOp::Mul => d.mul(a, b),
                BinaryOp::Eq => d.cmp_eq(a, b),
                BinaryOp::Ne => d.cmp_ne(a, b),
                BinaryOp::Ult => d.cmp_ult(a, b),
                BinaryOp::Ule => d.cmp_ule(a, b),
                BinaryOp::Shl => d.shl(a, b),
                BinaryOp::Shr => d.shr(a, b),
            };
            built.map_err(|e| wrap(e, line))
        }
    }
}

fn signal_ref(d: &Design, name: &str, line: usize) -> Result<SignalId, DesignError> {
    d.require(name).map_err(|e| wrap(e, line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::Design;

    fn counter() -> ValidatedDesign {
        let mut d = Design::new("counter");
        let en = d.add_input("en", 1).unwrap();
        let count = d.add_register("count", 4, 0).unwrap();
        let one = d.constant(1, 4).unwrap();
        let inc = d.add(d.signal(count), one).unwrap();
        let inc_wire = d.add_wire("inc", inc).unwrap();
        let next = d
            .mux(d.signal(en), d.signal(inc_wire), d.signal(count))
            .unwrap();
        d.set_register_next(count, next).unwrap();
        d.add_output("value", d.signal(count)).unwrap();
        d.validated().unwrap()
    }

    #[test]
    fn dump_contains_all_sections() {
        let text = dump(&counter());
        assert!(text.contains("design counter"));
        assert!(text.contains("input en 1"));
        assert!(text.contains("register count 4 0x0"));
        assert!(text.contains("wire inc 4 ="));
        assert!(text.contains("output value 4 ="));
        assert!(text.contains("next count ="));
    }

    /// Structurally identical designs hash equal (however they were built or
    /// textually formatted), and a one-gate mutation changes the hash.
    #[test]
    fn content_hash_keys_on_structure() {
        let a = counter();
        let b = counter();
        assert_eq!(a.content_hash(), b.content_hash());

        // Textual noise the parser normalises away — comments, blank lines,
        // decimal instead of hex constants — does not perturb the hash of
        // the parsed design.
        let noisy = format!("# a comment\n\n{}", dump(&a).replace("0x0", "0"));
        assert_eq!(parse(&noisy).unwrap().content_hash(), a.content_hash());

        // One mutated gate: increment by 2 instead of 1.
        let mut d = Design::new("counter");
        let en = d.add_input("en", 1).unwrap();
        let count = d.add_register("count", 4, 0).unwrap();
        let two = d.constant(2, 4).unwrap();
        let inc = d.add(d.signal(count), two).unwrap();
        let inc_wire = d.add_wire("inc", inc).unwrap();
        let next = d
            .mux(d.signal(en), d.signal(inc_wire), d.signal(count))
            .unwrap();
        d.set_register_next(count, next).unwrap();
        d.add_output("value", d.signal(count)).unwrap();
        let mutated = d.validated().unwrap();
        assert_ne!(mutated.content_hash(), a.content_hash());

        // The free function, the method and the dump-text form agree.
        assert_eq!(content_hash(&a), a.content_hash());
        assert_eq!(hash_of_dump(&dump(&a)), a.content_hash());
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let original = counter();
        let text = dump(&original);
        let parsed = parse(&text).unwrap();

        let mut sim_a = Simulator::new(&original);
        let mut sim_b = Simulator::new(&parsed);
        for cycle in 0..10u128 {
            let en = u128::from(cycle % 3 != 0);
            sim_a.set_input_by_name("en", en).unwrap();
            sim_b.set_input_by_name("en", en).unwrap();
            sim_a.step().unwrap();
            sim_b.step().unwrap();
            assert_eq!(
                sim_a.peek_by_name("value").unwrap(),
                sim_b.peek_by_name("value").unwrap(),
                "cycle {cycle}"
            );
        }
    }

    #[test]
    fn parse_example_from_module_docs() {
        let text = "\
design counter
input en 1
register count 4 0
wire inc 4 = (add count (const 4 1))
next count = (mux en inc count)
output value 4 = count
";
        let design = parse(text).unwrap();
        assert_eq!(design.design().name(), "counter");
        assert_eq!(design.design().registers().len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "\
# a comment
design d

input a 1          # trailing comment
output o 1 = a
";
        assert!(parse(text).is_ok());
    }

    #[test]
    fn unknown_signal_reports_line_number() {
        let text = "design d\noutput o 1 = missing\n";
        let err = parse(text).unwrap_err();
        match err {
            DesignError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("missing"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn width_annotation_must_match_expression() {
        let text = "design d\ninput a 4\noutput o 8 = a\n";
        assert!(matches!(
            parse(text),
            Err(DesignError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn missing_design_line_is_rejected() {
        assert!(matches!(
            parse("input a 1\n"),
            Err(DesignError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rom_expression_roundtrip() {
        let mut d = Design::new("romtest");
        let idx = d.add_input("idx", 2).unwrap();
        let rom = d.rom(vec![5, 6, 7, 8], d.signal(idx), 8).unwrap();
        d.add_output("o", rom).unwrap();
        let design = d.validated().unwrap();
        let parsed = parse(&dump(&design)).unwrap();
        let mut sim = Simulator::new(&parsed);
        for i in 0..4u128 {
            sim.set_input_by_name("idx", i).unwrap();
            assert_eq!(sim.peek_by_name("o").unwrap(), 5 + i);
        }
    }

    #[test]
    fn hex_and_decimal_numbers_are_accepted() {
        let text = "design d\ninput a 8\noutput o 1 = (eq a (const 8 0xff))\n";
        assert!(parse(text).is_ok());
        let text2 = "design d\ninput a 8\noutput o 1 = (eq a (const 8 255))\n";
        assert!(parse(text2).is_ok());
    }
}
