//! Error type shared by the RTL crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating, simulating or parsing designs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DesignError {
    /// A signal width was zero or larger than [`crate::MAX_WIDTH`].
    InvalidWidth {
        /// The offending width.
        width: u32,
    },
    /// Two operands (or a mux's branches) had different widths.
    WidthMismatch {
        /// Width of the left / first operand.
        left: u32,
        /// Width of the right / second operand.
        right: u32,
        /// What was being constructed.
        context: &'static str,
    },
    /// A constant value does not fit into the requested width.
    ConstantTooWide {
        /// The constant value.
        value: u128,
        /// The requested width.
        width: u32,
    },
    /// A signal name was declared twice.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A signal or expression id referenced a different design, or an unknown
    /// name was looked up.
    UnknownSignal {
        /// Name or id rendered as text.
        name: String,
    },
    /// A slice `[hi:lo]` was out of range or inverted.
    InvalidSlice {
        /// High bit index.
        hi: u32,
        /// Low bit index.
        lo: u32,
        /// Width of the sliced expression.
        width: u32,
    },
    /// A mux condition was not 1 bit wide.
    ConditionNotBoolean {
        /// Actual width of the condition.
        width: u32,
    },
    /// A register was never given a next-state expression.
    RegisterWithoutNext {
        /// Name of the register.
        name: String,
    },
    /// The next-state expression (or output/wire expression) width does not
    /// match the signal width.
    SignalWidthMismatch {
        /// Name of the signal.
        name: String,
        /// Declared width of the signal.
        declared: u32,
        /// Width of the driving expression.
        driver: u32,
    },
    /// A purely combinational cycle (not broken by a register) was found.
    CombinationalLoop {
        /// Name of a signal on the cycle.
        signal: String,
    },
    /// A ROM table does not have an entry for every possible index value, or
    /// an entry does not fit the ROM's width.
    InvalidRom {
        /// Explanation of the problem.
        reason: String,
    },
    /// The operation requires a [`crate::ValidatedDesign`]-level invariant
    /// that does not hold (e.g. the kind of signal was unexpected).
    InvalidSignalKind {
        /// Name of the signal.
        name: String,
        /// What was expected.
        expected: &'static str,
    },
    /// The textual netlist could not be parsed.
    Parse {
        /// Line number (1-based) where the error occurred.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// An input value supplied to the simulator does not fit the input width.
    SimValueTooWide {
        /// Name of the input.
        name: String,
        /// Supplied value.
        value: u128,
        /// Width of the input.
        width: u32,
    },
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::InvalidWidth { width } => {
                write!(f, "invalid signal width {width} (must be 1..=128)")
            }
            DesignError::WidthMismatch {
                left,
                right,
                context,
            } => {
                write!(f, "width mismatch in {context}: {left} vs {right}")
            }
            DesignError::ConstantTooWide { value, width } => {
                write!(f, "constant {value:#x} does not fit into {width} bits")
            }
            DesignError::DuplicateName { name } => {
                write!(f, "signal name `{name}` declared twice")
            }
            DesignError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
            DesignError::InvalidSlice { hi, lo, width } => {
                write!(f, "invalid slice [{hi}:{lo}] of a {width}-bit expression")
            }
            DesignError::ConditionNotBoolean { width } => {
                write!(f, "mux condition must be 1 bit wide, got {width}")
            }
            DesignError::RegisterWithoutNext { name } => {
                write!(f, "register `{name}` has no next-state expression")
            }
            DesignError::SignalWidthMismatch {
                name,
                declared,
                driver,
            } => write!(
                f,
                "signal `{name}` is {declared} bits but its driver is {driver} bits"
            ),
            DesignError::CombinationalLoop { signal } => {
                write!(f, "combinational loop through signal `{signal}`")
            }
            DesignError::InvalidRom { reason } => write!(f, "invalid rom: {reason}"),
            DesignError::InvalidSignalKind { name, expected } => {
                write!(f, "signal `{name}` is not {expected}")
            }
            DesignError::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            DesignError::SimValueTooWide { name, value, width } => write!(
                f,
                "value {value:#x} does not fit input `{name}` of width {width}"
            ),
        }
    }
}

impl Error for DesignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<DesignError> = vec![
            DesignError::InvalidWidth { width: 0 },
            DesignError::WidthMismatch {
                left: 4,
                right: 8,
                context: "and",
            },
            DesignError::DuplicateName { name: "clk".into() },
            DesignError::CombinationalLoop { signal: "w".into() },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DesignError>();
    }
}
