//! Two-valued cycle-accurate simulation.
//!
//! The simulator is not part of the detection method itself (the property
//! checker reasons about *all* starting states symbolically); it exists to
//!
//! * validate the benchmark accelerators against software reference models
//!   (e.g. the AES-128 reference in `htd-trusthub`),
//! * demonstrate triggered-vs-dormant Trojan behaviour in examples, and
//! * replay counterexamples produced by the property checker.

use std::collections::HashMap;

use crate::design::{SignalId, SignalKind, ValidatedDesign};
use crate::error::DesignError;
use crate::expr::{BinaryOp, Expr, ExprId, UnaryOp};

fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// Evaluates a single expression given a signal environment.
///
/// `lookup` supplies the current value of every referenced signal.  Used both
/// by the simulator and by counterexample replay in `htd-core`.
pub(crate) fn eval_expr(
    design: &crate::Design,
    root: ExprId,
    lookup: &dyn Fn(SignalId) -> u128,
) -> u128 {
    // Iterative post-order evaluation with memoisation, so deep expression
    // trees (the AES round logic) do not overflow the stack.
    let mut cache: HashMap<ExprId, u128> = HashMap::new();
    let mut stack: Vec<(ExprId, bool)> = vec![(root, false)];
    while let Some((e, expanded)) = stack.pop() {
        if cache.contains_key(&e) {
            continue;
        }
        if !expanded {
            stack.push((e, true));
            for child in design.expr(e).children() {
                stack.push((child, false));
            }
            continue;
        }
        let value = match design.expr(e) {
            Expr::Const { value, .. } => *value,
            Expr::Signal(s) => lookup(*s) & mask(design.signal_width(*s)),
            Expr::Unary { op, a } => {
                let va = cache[a];
                let wa = design.expr_width(*a);
                match op {
                    UnaryOp::Not => !va & mask(wa),
                    UnaryOp::Neg => va.wrapping_neg() & mask(wa),
                    UnaryOp::RedAnd => u128::from(va == mask(wa)),
                    UnaryOp::RedOr => u128::from(va != 0),
                    UnaryOp::RedXor => u128::from(va.count_ones() % 2 == 1),
                }
            }
            Expr::Binary { op, a, b } => {
                let va = cache[a];
                let vb = cache[b];
                let wa = design.expr_width(*a);
                match op {
                    BinaryOp::And => va & vb,
                    BinaryOp::Or => va | vb,
                    BinaryOp::Xor => va ^ vb,
                    BinaryOp::Add => va.wrapping_add(vb) & mask(wa),
                    BinaryOp::Sub => va.wrapping_sub(vb) & mask(wa),
                    BinaryOp::Mul => va.wrapping_mul(vb) & mask(wa),
                    BinaryOp::Eq => u128::from(va == vb),
                    BinaryOp::Ne => u128::from(va != vb),
                    BinaryOp::Ult => u128::from(va < vb),
                    BinaryOp::Ule => u128::from(va <= vb),
                    BinaryOp::Shl => {
                        if vb >= u128::from(wa) {
                            0
                        } else {
                            (va << vb) & mask(wa)
                        }
                    }
                    BinaryOp::Shr => {
                        if vb >= u128::from(wa) {
                            0
                        } else {
                            va >> vb
                        }
                    }
                }
            }
            Expr::Mux {
                cond,
                then_e,
                else_e,
            } => {
                if cache[cond] != 0 {
                    cache[then_e]
                } else {
                    cache[else_e]
                }
            }
            Expr::Slice { a, hi, lo } => (cache[a] >> lo) & mask(hi - lo + 1),
            Expr::Concat { hi, lo } => {
                let wlo = design.expr_width(*lo);
                (cache[hi] << wlo) | cache[lo]
            }
            Expr::Rom { table, index, .. } => table[cache[index] as usize],
        };
        cache.insert(e, value);
    }
    cache[&root]
}

/// Cycle-accurate simulator over a [`ValidatedDesign`].
///
/// # Example
///
/// ```
/// use htd_rtl::Design;
/// use htd_rtl::sim::Simulator;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// let mut d = Design::new("toggler");
/// let t = d.add_register("t", 1, 0)?;
/// let not_t = d.not(d.signal(t));
/// d.set_register_next(t, not_t)?;
/// d.add_output("out", d.signal(t))?;
/// let design = d.validated()?;
///
/// let mut sim = Simulator::new(&design);
/// assert_eq!(sim.peek_by_name("out")?, 0);
/// sim.step()?;
/// assert_eq!(sim.peek_by_name("out")?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    design: &'a ValidatedDesign,
    /// Current register values, indexed by signal index (non-registers hold 0).
    state: Vec<u128>,
    /// Current input values, indexed by signal index.
    inputs: Vec<u128>,
    cycle: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with all registers at their reset values and all
    /// inputs at zero.
    #[must_use]
    pub fn new(design: &'a ValidatedDesign) -> Self {
        let d = design.design();
        let mut state = vec![0u128; d.num_signals()];
        for (id, s) in d.signals() {
            if let SignalKind::Register { reset } = s.kind() {
                state[id.index()] = reset;
            }
        }
        Simulator {
            design,
            state,
            inputs: vec![0u128; d.num_signals()],
            cycle: 0,
        }
    }

    /// Number of clock cycles simulated so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resets all registers to their reset values and the cycle counter to 0.
    pub fn reset(&mut self) {
        let d = self.design.design();
        for (id, s) in d.signals() {
            if let SignalKind::Register { reset } = s.kind() {
                self.state[id.index()] = reset;
            }
        }
        self.cycle = 0;
    }

    /// Drives a primary input for the upcoming clock cycle.
    ///
    /// # Errors
    ///
    /// Fails if `id` is not an input or the value does not fit its width.
    pub fn set_input(&mut self, id: SignalId, value: u128) -> Result<(), DesignError> {
        let d = self.design.design();
        let info = d.signal_info(id);
        if info.kind() != SignalKind::Input {
            return Err(DesignError::InvalidSignalKind {
                name: info.name().to_string(),
                expected: "an input",
            });
        }
        if info.width() < 128 && value >> info.width() != 0 {
            return Err(DesignError::SimValueTooWide {
                name: info.name().to_string(),
                value,
                width: info.width(),
            });
        }
        self.inputs[id.index()] = value;
        Ok(())
    }

    /// Drives a primary input, addressed by name.
    ///
    /// # Errors
    ///
    /// Fails if the name is unknown, not an input, or the value is too wide.
    pub fn set_input_by_name(&mut self, name: &str, value: u128) -> Result<(), DesignError> {
        let id = self.design.design().require(name)?;
        self.set_input(id, value)
    }

    /// Current value of any signal (combinational signals are evaluated on
    /// demand from the current inputs and register state).
    #[must_use]
    pub fn peek(&self, id: SignalId) -> u128 {
        let d = self.design.design();
        let info = d.signal_info(id);
        match info.kind() {
            SignalKind::Input => self.inputs[id.index()],
            SignalKind::Register { .. } => self.state[id.index()],
            SignalKind::Wire | SignalKind::Output => {
                let driver = info.driver().expect("validated design");
                self.eval(driver)
            }
        }
    }

    /// Current value of a signal addressed by name.
    ///
    /// # Errors
    ///
    /// Fails if the name is unknown.
    pub fn peek_by_name(&self, name: &str) -> Result<u128, DesignError> {
        Ok(self.peek(self.design.design().require(name)?))
    }

    /// Evaluates an arbitrary expression in the current cycle.
    #[must_use]
    pub fn eval(&self, expr: ExprId) -> u128 {
        let d = self.design.design();
        eval_expr(d, expr, &|sig| match d.signal_info(sig).kind() {
            SignalKind::Input => self.inputs[sig.index()],
            SignalKind::Register { .. } => self.state[sig.index()],
            SignalKind::Wire | SignalKind::Output => {
                // Wires nested below other wires are evaluated recursively;
                // the validated design guarantees this terminates.
                self.peek(sig)
            }
        })
    }

    /// Advances the design by one clock cycle: all registers simultaneously
    /// take the value of their next-state expressions.
    ///
    /// # Errors
    ///
    /// Currently infallible for validated designs; the `Result` is kept so
    /// future X-propagation modes can report errors.
    pub fn step(&mut self) -> Result<(), DesignError> {
        let d = self.design.design();
        let mut next_state = self.state.clone();
        for (id, s) in d.signals() {
            if s.kind().is_register() {
                let driver = s.driver().expect("validated design");
                next_state[id.index()] = self.eval(driver) & mask(s.width());
            }
        }
        self.state = next_state;
        self.cycle += 1;
        Ok(())
    }

    /// Runs `n` clock cycles with the currently driven input values.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`step`](Self::step).
    pub fn run(&mut self, n: u64) -> Result<(), DesignError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Snapshot of all register values, keyed by signal name.
    #[must_use]
    pub fn register_snapshot(&self) -> HashMap<String, u128> {
        let d = self.design.design();
        d.registers()
            .into_iter()
            .map(|id| (d.signal_name(id).to_string(), self.state[id.index()]))
            .collect()
    }

    /// Overrides the current value of a register (useful for replaying the
    /// symbolic starting states of counterexamples).
    ///
    /// # Errors
    ///
    /// Fails if `id` is not a register or the value does not fit.
    pub fn set_register(&mut self, id: SignalId, value: u128) -> Result<(), DesignError> {
        let d = self.design.design();
        let info = d.signal_info(id);
        if !info.kind().is_register() {
            return Err(DesignError::InvalidSignalKind {
                name: info.name().to_string(),
                expected: "a register",
            });
        }
        if info.width() < 128 && value >> info.width() != 0 {
            return Err(DesignError::SimValueTooWide {
                name: info.name().to_string(),
                value,
                width: info.width(),
            });
        }
        self.state[id.index()] = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Design;

    fn accumulator() -> ValidatedDesign {
        let mut d = Design::new("acc");
        let input = d.add_input("in", 8).unwrap();
        let acc = d.add_register("acc", 8, 0).unwrap();
        let sum = d.add(d.signal(acc), d.signal(input)).unwrap();
        d.set_register_next(acc, sum).unwrap();
        d.add_output("out", d.signal(acc)).unwrap();
        d.validated().unwrap()
    }

    #[test]
    fn accumulator_accumulates() {
        let design = accumulator();
        let mut sim = Simulator::new(&design);
        for i in 1..=5u128 {
            sim.set_input_by_name("in", i).unwrap();
            sim.step().unwrap();
        }
        assert_eq!(sim.peek_by_name("acc").unwrap(), 15);
        assert_eq!(sim.peek_by_name("out").unwrap(), 15);
        assert_eq!(sim.cycle(), 5);
    }

    #[test]
    fn accumulator_wraps_at_width() {
        let design = accumulator();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("in", 200).unwrap();
        sim.step().unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek_by_name("acc").unwrap(), (200 + 200) % 256);
    }

    #[test]
    fn reset_restores_initial_state() {
        let design = accumulator();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("in", 7).unwrap();
        sim.step().unwrap();
        assert_ne!(sim.peek_by_name("acc").unwrap(), 0);
        sim.reset();
        assert_eq!(sim.peek_by_name("acc").unwrap(), 0);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn inputs_are_validated() {
        let design = accumulator();
        let mut sim = Simulator::new(&design);
        assert!(matches!(
            sim.set_input_by_name("in", 256),
            Err(DesignError::SimValueTooWide { .. })
        ));
        assert!(matches!(
            sim.set_input_by_name("acc", 0),
            Err(DesignError::InvalidSignalKind { .. })
        ));
        assert!(matches!(
            sim.set_input_by_name("nonexistent", 0),
            Err(DesignError::UnknownSignal { .. })
        ));
    }

    #[test]
    fn register_override_is_respected() {
        let design = accumulator();
        let mut sim = Simulator::new(&design);
        let acc = design.design().require("acc").unwrap();
        sim.set_register(acc, 42).unwrap();
        assert_eq!(sim.peek_by_name("out").unwrap(), 42);
        sim.set_input_by_name("in", 1).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek_by_name("out").unwrap(), 43);
    }

    #[test]
    fn expression_semantics_match_reference() {
        // Build one design exercising every operator and compare against
        // native Rust arithmetic on a handful of values.
        let mut d = Design::new("ops");
        let a = d.add_input("a", 8).unwrap();
        let b = d.add_input("b", 8).unwrap();
        let sa = d.signal(a);
        let sb = d.signal(b);
        let ops: Vec<(&str, ExprId)> = vec![
            ("and", d.and(sa, sb).unwrap()),
            ("or", d.or(sa, sb).unwrap()),
            ("xor", d.xor(sa, sb).unwrap()),
            ("add", d.add(sa, sb).unwrap()),
            ("sub", d.sub(sa, sb).unwrap()),
            ("mul", d.mul(sa, sb).unwrap()),
            ("eq", d.cmp_eq(sa, sb).unwrap()),
            ("ne", d.cmp_ne(sa, sb).unwrap()),
            ("ult", d.cmp_ult(sa, sb).unwrap()),
            ("ule", d.cmp_ule(sa, sb).unwrap()),
            ("shl", d.shl(sa, sb).unwrap()),
            ("shr", d.shr(sa, sb).unwrap()),
            ("not", d.not(sa)),
            ("neg", d.neg(sa)),
            ("redand", d.red_and(sa)),
            ("redor", d.red_or(sa)),
            ("redxor", d.red_xor(sa)),
        ];
        for (name, e) in &ops {
            d.add_output(format!("out_{name}"), *e).unwrap();
        }
        let design = d.validated().unwrap();
        let mut sim = Simulator::new(&design);

        for &(va, vb) in &[
            (0u128, 0u128),
            (1, 2),
            (255, 1),
            (170, 85),
            (200, 200),
            (3, 9),
        ] {
            sim.set_input_by_name("a", va).unwrap();
            sim.set_input_by_name("b", vb).unwrap();
            let expect = |name: &str| -> u128 {
                match name {
                    "and" => va & vb,
                    "or" => va | vb,
                    "xor" => va ^ vb,
                    "add" => (va + vb) & 0xff,
                    "sub" => va.wrapping_sub(vb) & 0xff,
                    "mul" => (va * vb) & 0xff,
                    "eq" => u128::from(va == vb),
                    "ne" => u128::from(va != vb),
                    "ult" => u128::from(va < vb),
                    "ule" => u128::from(va <= vb),
                    "shl" => {
                        if vb >= 8 {
                            0
                        } else {
                            (va << vb) & 0xff
                        }
                    }
                    "shr" => {
                        if vb >= 8 {
                            0
                        } else {
                            va >> vb
                        }
                    }
                    "not" => !va & 0xff,
                    "neg" => va.wrapping_neg() & 0xff,
                    "redand" => u128::from(va == 0xff),
                    "redor" => u128::from(va != 0),
                    "redxor" => u128::from(va.count_ones() % 2 == 1),
                    _ => unreachable!(),
                }
            };
            for (name, _) in &ops {
                assert_eq!(
                    sim.peek_by_name(&format!("out_{name}")).unwrap(),
                    expect(name),
                    "operator {name} on ({va}, {vb})"
                );
            }
        }
    }

    #[test]
    fn rom_lookup_in_simulation() {
        let mut d = Design::new("rom");
        let idx = d.add_input("idx", 3).unwrap();
        let table: Vec<u128> = (0u128..8).map(|i| i * 3 + 1).collect();
        let looked_up = d.rom(table.clone(), d.signal(idx), 8).unwrap();
        d.add_output("value", looked_up).unwrap();
        let design = d.validated().unwrap();
        let mut sim = Simulator::new(&design);
        for i in 0..8u128 {
            sim.set_input_by_name("idx", i).unwrap();
            assert_eq!(sim.peek_by_name("value").unwrap(), table[i as usize]);
        }
    }

    #[test]
    fn slice_and_concat_in_simulation() {
        let mut d = Design::new("sc");
        let a = d.add_input("a", 8).unwrap();
        let hi = d.slice(d.signal(a), 7, 4).unwrap();
        let lo = d.slice(d.signal(a), 3, 0).unwrap();
        let swapped = d.concat(lo, hi).unwrap();
        d.add_output("swapped", swapped).unwrap();
        let design = d.validated().unwrap();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("a", 0xAB).unwrap();
        assert_eq!(sim.peek_by_name("swapped").unwrap(), 0xBA);
    }

    #[test]
    fn wire_chains_evaluate_through_multiple_levels() {
        let mut d = Design::new("chain");
        let a = d.add_input("a", 4).unwrap();
        let one = d.constant(1, 4).unwrap();
        let w1e = d.add(d.signal(a), one).unwrap();
        let w1 = d.add_wire("w1", w1e).unwrap();
        let w2e = d.add(d.signal(w1), one).unwrap();
        let w2 = d.add_wire("w2", w2e).unwrap();
        d.add_output("out", d.signal(w2)).unwrap();
        let design = d.validated().unwrap();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("a", 5).unwrap();
        assert_eq!(sim.peek_by_name("out").unwrap(), 7);
    }

    #[test]
    fn simulation_is_deterministic_across_clones() {
        let design = accumulator();
        let mut sim1 = Simulator::new(&design);
        sim1.set_input_by_name("in", 3).unwrap();
        sim1.step().unwrap();
        let sim2 = sim1.clone();
        assert_eq!(sim1.register_snapshot(), sim2.register_snapshot());
    }
}
