//! Export helpers: VCD waveforms for simulation traces and GraphViz DOT for
//! the structural fanout analysis.
//!
//! The detection flow's counterexamples localise a potential Trojan, but a
//! verification engineer usually wants to *look* at the behaviour and at the
//! structure: [`TraceRecorder`] turns simulator runs into standard VCD files
//! any waveform viewer can open, and [`fanout_dot`] renders the
//! `fanouts_CCk` levels of Algorithm 1 (the order in which the flow proves
//! signal equivalences) as a GraphViz graph.

use std::fmt::Write as _;

use crate::design::{SignalId, SignalKind, ValidatedDesign};
use crate::sim::Simulator;
use crate::structural::{fanout_levels, get_fanout, input_unreachable_signals};

/// Records the values of a fixed set of signals over a simulation run and
/// renders them as a Value Change Dump (VCD).
///
/// # Example
///
/// ```
/// use htd_rtl::Design;
/// use htd_rtl::export::TraceRecorder;
/// use htd_rtl::sim::Simulator;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// let mut d = Design::new("counter");
/// let enable = d.add_input("enable", 1)?;
/// let count = d.add_register("count", 4, 0)?;
/// let one = d.constant(1, 4)?;
/// let bumped = d.add(d.signal(count), one)?;
/// let next = d.mux(d.signal(enable), bumped, d.signal(count))?;
/// d.set_register_next(count, next)?;
/// d.add_output("value", d.signal(count))?;
/// let design = d.validated()?;
///
/// let mut sim = Simulator::new(&design);
/// let mut recorder = TraceRecorder::all_signals(&design);
/// recorder.record(&sim);
/// for _ in 0..3 {
///     sim.set_input_by_name("enable", 1)?;
///     sim.step()?;
///     recorder.record(&sim);
/// }
/// let vcd = recorder.to_vcd("counter_demo");
/// assert!(vcd.contains("$var wire 4"));
/// assert!(vcd.contains("#3"));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TraceRecorder<'a> {
    design: &'a ValidatedDesign,
    signals: Vec<SignalId>,
    /// One sample per recorded time step, in signal order.
    samples: Vec<Vec<u128>>,
}

impl<'a> TraceRecorder<'a> {
    /// Creates a recorder for an explicit set of signals.
    #[must_use]
    pub fn new(design: &'a ValidatedDesign, signals: Vec<SignalId>) -> Self {
        TraceRecorder {
            design,
            signals,
            samples: Vec::new(),
        }
    }

    /// Creates a recorder covering every input, register and output of the
    /// design.
    #[must_use]
    pub fn all_signals(design: &'a ValidatedDesign) -> Self {
        let d = design.design();
        let mut signals = d.inputs();
        signals.extend(d.registers());
        signals.extend(d.outputs());
        TraceRecorder::new(design, signals)
    }

    /// The signals being recorded.
    #[must_use]
    pub fn signals(&self) -> &[SignalId] {
        &self.signals
    }

    /// Number of samples recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Takes one sample of all recorded signals from the simulator.
    pub fn record(&mut self, sim: &Simulator<'_>) {
        self.samples
            .push(self.signals.iter().map(|&s| sim.peek(s)).collect());
    }

    /// Appends a pre-computed sample (one value per recorded signal, in
    /// signal order).  Used by counterexample replay, where values come from
    /// the property checker's model rather than a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the number of values does not match the number of recorded
    /// signals.
    pub fn push_sample(&mut self, values: Vec<u128>) {
        assert_eq!(
            values.len(),
            self.signals.len(),
            "one value per recorded signal"
        );
        self.samples.push(values);
    }

    /// Renders the recorded trace as a VCD document with one timestep per
    /// sample.
    #[must_use]
    pub fn to_vcd(&self, module_name: &str) -> String {
        let d = self.design.design();
        let mut out = String::new();
        let _ = writeln!(out, "$date reproduction run $end");
        let _ = writeln!(out, "$version golden-free-htd $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {module_name} $end");
        for (i, &sig) in self.signals.iter().enumerate() {
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                d.signal_width(sig),
                vcd_identifier(i),
                sanitize(d.signal_name(sig))
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        let mut previous: Vec<Option<u128>> = vec![None; self.signals.len()];
        for (time, sample) in self.samples.iter().enumerate() {
            let _ = writeln!(out, "#{time}");
            if time == 0 {
                let _ = writeln!(out, "$dumpvars");
            }
            for (i, (&value, &sig)) in sample.iter().zip(&self.signals).enumerate() {
                if previous[i] == Some(value) {
                    continue;
                }
                previous[i] = Some(value);
                let width = d.signal_width(sig);
                if width == 1 {
                    let _ = writeln!(out, "{}{}", value & 1, vcd_identifier(i));
                } else {
                    let _ = writeln!(out, "b{:b} {}", value, vcd_identifier(i));
                }
            }
            if time == 0 {
                let _ = writeln!(out, "$end");
            }
        }
        out
    }
}

/// Renders the structural fanout analysis of Algorithm 1 as a GraphViz DOT
/// digraph: one cluster per `fanouts_CCk` level, the primary inputs as the
/// root node, one edge per single-cycle structural dependency, and the
/// signals unreachable from the inputs (the coverage-check findings) in a
/// separate cluster.
///
/// # Example
///
/// ```
/// use htd_rtl::Design;
/// use htd_rtl::export::fanout_dot;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// let mut d = Design::new("pipe");
/// let i = d.add_input("i", 4)?;
/// let r = d.add_register("r", 4, 0)?;
/// d.set_register_next(r, d.signal(i))?;
/// d.add_output("o", d.signal(r))?;
/// let dot = fanout_dot(&d.validated()?);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("fanouts_CC1"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn fanout_dot(design: &ValidatedDesign) -> String {
    let d = design.design();
    let levels = fanout_levels(design);
    let uncovered = input_unreachable_signals(design);
    let mut out = String::new();
    let _ = writeln!(out, "digraph fanout_levels {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    let _ = writeln!(out, "  inputs [shape=ellipse, label=\"primary inputs\"];");

    for (k, level) in levels.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_cc{} {{", k + 1);
        let _ = writeln!(out, "    label=\"fanouts_CC{}\";", k + 1);
        for &sig in level {
            let _ = writeln!(out, "    {};", node_name(d.signal_name(sig)));
        }
        let _ = writeln!(out, "  }}");
    }
    if !uncovered.is_empty() {
        let _ = writeln!(out, "  subgraph cluster_uncovered {{");
        let _ = writeln!(out, "    label=\"uncovered (coverage check)\";");
        let _ = writeln!(out, "    style=dashed;");
        for &sig in &uncovered {
            let _ = writeln!(out, "    {} [color=red];", node_name(d.signal_name(sig)));
        }
        let _ = writeln!(out, "  }}");
    }

    // Edges: inputs -> CC1, and each signal -> its single-cycle fanout.
    let inputs = d.inputs();
    for &sig in &get_fanout(design, &inputs) {
        let _ = writeln!(out, "  inputs -> {};", node_name(d.signal_name(sig)));
    }
    for source in d.state_and_output_signals() {
        if matches!(d.signal_info(source).kind(), SignalKind::Output) {
            continue;
        }
        for &sink in &get_fanout(design, &[source]) {
            let _ = writeln!(
                out,
                "  {} -> {};",
                node_name(d.signal_name(source)),
                node_name(d.signal_name(sink))
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// VCD identifier for the `i`-th recorded signal (printable ASCII 33..=126,
/// little-endian multi-character for larger indices).
fn vcd_identifier(mut index: usize) -> String {
    const FIRST: u8 = 33;
    const COUNT: usize = 94;
    let mut id = String::new();
    loop {
        id.push(char::from(FIRST + (index % COUNT) as u8));
        index /= COUNT;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    id
}

/// VCD reference names may not contain whitespace; DOT identifiers are kept
/// alphanumeric.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

fn node_name(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("\"{cleaned}\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;

    fn demo_design() -> ValidatedDesign {
        let mut d = Design::new("demo");
        let input = d.add_input("in", 4).unwrap();
        let stage = d.add_register("stage", 4, 0).unwrap();
        let flag = d.add_register("flag", 1, 0).unwrap();
        d.set_register_next(stage, d.signal(input)).unwrap();
        let any = d.red_or(d.signal(input));
        d.set_register_next(flag, any).unwrap();
        d.add_output("out", d.signal(stage)).unwrap();
        let timer = d.add_register("timer", 3, 0).unwrap();
        let one = d.constant(1, 3).unwrap();
        let tick = d.add(d.signal(timer), one).unwrap();
        d.set_register_next(timer, tick).unwrap();
        d.validated().unwrap()
    }

    #[test]
    fn vcd_contains_definitions_and_value_changes() {
        let design = demo_design();
        let mut sim = Simulator::new(&design);
        let mut recorder = TraceRecorder::all_signals(&design);
        recorder.record(&sim);
        for value in [3u128, 3, 0] {
            sim.set_input_by_name("in", value).unwrap();
            sim.step().unwrap();
            recorder.record(&sim);
        }
        let vcd = recorder.to_vcd("demo");
        assert!(vcd.contains("$var wire 4"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#3"));
        assert!(vcd.contains("b11 "), "vector value change present");
        assert_eq!(recorder.len(), 4);
        assert!(!recorder.is_empty());
    }

    #[test]
    fn unchanged_values_are_not_re_emitted() {
        let design = demo_design();
        let sim = Simulator::new(&design);
        let mut recorder =
            TraceRecorder::new(&design, vec![design.design().require("timer").unwrap()]);
        recorder.record(&sim);
        recorder.record(&sim); // no step in between: identical sample
        let vcd = recorder.to_vcd("demo");
        let changes = vcd.matches("b0 !").count() + vcd.matches("0!").count();
        assert_eq!(
            changes, 1,
            "the second, identical sample emits nothing:\n{vcd}"
        );
    }

    #[test]
    fn push_sample_accepts_external_values() {
        let design = demo_design();
        let stage = design.design().require("stage").unwrap();
        let mut recorder = TraceRecorder::new(&design, vec![stage]);
        recorder.push_sample(vec![0xA]);
        recorder.push_sample(vec![0x5]);
        let vcd = recorder.to_vcd("replay");
        assert!(vcd.contains("b1010 "));
        assert!(vcd.contains("b101 "));
    }

    #[test]
    #[should_panic(expected = "one value per recorded signal")]
    fn push_sample_rejects_wrong_arity() {
        let design = demo_design();
        let stage = design.design().require("stage").unwrap();
        let mut recorder = TraceRecorder::new(&design, vec![stage]);
        recorder.push_sample(vec![1, 2]);
    }

    #[test]
    fn vcd_identifiers_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = vcd_identifier(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id), "duplicate identifier for index {i}");
        }
    }

    #[test]
    fn dot_groups_levels_and_marks_uncovered_signals() {
        let design = demo_design();
        let dot = fanout_dot(&design);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("fanouts_CC1"));
        assert!(dot.contains("fanouts_CC2"));
        assert!(dot.contains("uncovered (coverage check)"));
        assert!(dot.contains("\"timer\" [color=red]"));
        assert!(dot.contains("inputs -> \"stage\""));
        assert!(dot.contains("\"stage\" -> \"out\""));
    }
}
