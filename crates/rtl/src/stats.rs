//! Design statistics.
//!
//! The statistics are reported by the examples and the benchmark harness so
//! the size of each Trust-Hub-style benchmark can be compared against the
//! numbers implied by the paper (state bits, structural depth, …).

use std::fmt;

use crate::design::{SignalKind, ValidatedDesign};
use crate::structural::structural_depth;

/// Summary metrics for a design.
///
/// # Example
///
/// ```
/// use htd_rtl::Design;
/// use htd_rtl::stats::DesignStats;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// let mut d = Design::new("reg");
/// let i = d.add_input("i", 8)?;
/// let r = d.add_register("r", 8, 0)?;
/// d.set_register_next(r, d.signal(i))?;
/// d.add_output("o", d.signal(r))?;
/// let stats = DesignStats::of(&d.validated()?);
/// assert_eq!(stats.registers, 1);
/// assert_eq!(stats.state_bits, 8);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DesignStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of registers (state-holding elements).
    pub registers: usize,
    /// Number of named combinational wires.
    pub wires: usize,
    /// Total number of state bits (sum of register widths).
    pub state_bits: u64,
    /// Total number of input bits.
    pub input_bits: u64,
    /// Total number of output bits.
    pub output_bits: u64,
    /// Number of expression nodes in the arena.
    pub expr_nodes: usize,
    /// Structural depth: the number of fanout levels from the inputs until
    /// the fixpoint (bounds the number of properties in the detection flow).
    pub structural_depth: usize,
}

impl DesignStats {
    /// Computes the statistics of a validated design.
    #[must_use]
    pub fn of(design: &ValidatedDesign) -> Self {
        let d = design.design();
        let mut stats = DesignStats {
            expr_nodes: d.num_exprs(),
            ..Default::default()
        };
        for (_, s) in d.signals() {
            match s.kind() {
                SignalKind::Input => {
                    stats.inputs += 1;
                    stats.input_bits += u64::from(s.width());
                }
                SignalKind::Output => {
                    stats.outputs += 1;
                    stats.output_bits += u64::from(s.width());
                }
                SignalKind::Register { .. } => {
                    stats.registers += 1;
                    stats.state_bits += u64::from(s.width());
                }
                SignalKind::Wire => stats.wires += 1,
            }
        }
        stats.structural_depth = structural_depth(design);
        stats
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} inputs ({} bits), {} outputs ({} bits), {} registers ({} state bits), \
             {} wires, {} expression nodes, structural depth {}",
            self.inputs,
            self.input_bits,
            self.outputs,
            self.output_bits,
            self.registers,
            self.state_bits,
            self.wires,
            self.expr_nodes,
            self.structural_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Design;

    #[test]
    fn stats_count_all_signal_classes() {
        let mut d = Design::new("s");
        let a = d.add_input("a", 4).unwrap();
        let b = d.add_input("b", 4).unwrap();
        let x = d.xor(d.signal(a), d.signal(b)).unwrap();
        let w = d.add_wire("w", x).unwrap();
        let r = d.add_register("r", 4, 0).unwrap();
        d.set_register_next(r, d.signal(w)).unwrap();
        d.add_output("o", d.signal(r)).unwrap();
        let stats = DesignStats::of(&d.validated().unwrap());
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.registers, 1);
        assert_eq!(stats.wires, 1);
        assert_eq!(stats.state_bits, 4);
        assert_eq!(stats.input_bits, 8);
        assert_eq!(stats.output_bits, 4);
        assert_eq!(stats.structural_depth, 2);
        assert!(!stats.to_string().is_empty());
    }
}
