//! End-to-end service tests over a loopback daemon: concurrent multi-tenant
//! determinism, snapshot-cache hits, cancellation isolation and the error
//! schema.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::TcpStream;
use std::num::NonZeroUsize;
use std::time::Duration;

use htd_core::{DetectorConfig, EngineChoice, PropertyScheduler, SessionBuilder};
use htd_rtl::{netlist, Design};
use htd_serve::client::{self, SubmitOptions};
use htd_serve::json::Json;
use htd_serve::server::{ServeOptions, Server};
use htd_serve::{ClientError, FaultSpec};

/// An 8-bit pass-through accelerator; `infected` adds a sequential Trojan
/// (a magic-value-armed trigger FSM flipping the result's low bit).
fn accelerator(infected: bool) -> String {
    let name = if infected {
        "acc_infected"
    } else {
        "acc_clean"
    };
    let mut d = Design::new(name);
    let data_in = d.add_input("data_in", 8).unwrap();
    let result = d.add_register("result", 8, 0).unwrap();
    let next = if infected {
        let trigger = d.add_register("trigger", 1, 0).unwrap();
        let seen = d.eq_const(d.signal(data_in), 0xAB).unwrap();
        let armed = d.or(d.signal(trigger), seen).unwrap();
        d.set_register_next(trigger, armed).unwrap();
        let flip = d.zero_ext(d.signal(trigger), 8).unwrap();
        d.xor(d.signal(data_in), flip).unwrap()
    } else {
        d.signal(data_in)
    };
    d.set_register_next(result, next).unwrap();
    d.add_output("data_out", d.signal(result)).unwrap();
    netlist::dump(&d.validated().unwrap())
}

/// What `htd detect --normalize` prints for this netlist: the normalized
/// report's `Display` rendering plus the CLI's trailing newline.
fn solo_normalized_report(netlist_text: &str) -> String {
    let design = netlist::parse(netlist_text).unwrap();
    let scheduler =
        PropertyScheduler::new(NonZeroUsize::new(2).unwrap()).with_level_pipelining(true);
    let mut session = SessionBuilder::new(design)
        .config(DetectorConfig::default())
        .engine(EngineChoice::Scheduled(scheduler))
        .build()
        .unwrap();
    let report = session.run().unwrap().normalized();
    let mut text = String::new();
    let _ = writeln!(text, "{report}");
    text
}

fn test_options() -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        max_jobs: NonZeroUsize::new(4).unwrap(),
        cache_bytes: 64 * 1024 * 1024,
        workers: NonZeroUsize::new(2).unwrap(),
        config: DetectorConfig::default(),
        ..ServeOptions::default()
    }
}

fn test_server() -> Server {
    Server::start(test_options()).expect("loopback server starts")
}

#[test]
fn concurrent_tenants_match_solo_runs_and_resubmits_hit_the_cache() {
    let clean = accelerator(false);
    let infected = accelerator(true);
    let want_clean = solo_normalized_report(&clean);
    let want_infected = solo_normalized_report(&infected);
    assert_ne!(want_clean, want_infected);
    assert!(
        want_infected.contains("TROJAN SUSPECTED"),
        "{want_infected}"
    );
    assert!(want_clean.contains("SECURE"), "{want_clean}");

    let server = test_server();
    let addr = server.addr().to_string();

    // Two tenants in flight at once, multiplexed over one shared pool.
    let (got_clean, got_infected) = std::thread::scope(|scope| {
        let clean_job = scope.spawn(|| client::submit(&addr, &clean, &mut |_| {}).unwrap());
        let infected_job = scope.spawn(|| client::submit(&addr, &infected, &mut |_| {}).unwrap());
        (clean_job.join().unwrap(), infected_job.join().unwrap())
    });
    assert_eq!(got_clean.report_text, want_clean);
    assert_eq!(got_infected.report_text, want_infected);
    let first_cache = |s: &client::Submission| {
        s.stats
            .as_ref()
            .and_then(|f| f.get("cache"))
            .and_then(Json::as_str)
            .map(str::to_owned)
    };
    assert_eq!(first_cache(&got_clean).as_deref(), Some("miss"));
    assert_eq!(first_cache(&got_infected).as_deref(), Some("miss"));

    // Resubmitting the same netlist forks the frozen master: a cache hit,
    // still one bit-blast, and a byte-identical report.
    let mut frames = Vec::new();
    let again = client::submit(&addr, &infected, &mut |line| frames.push(line.to_owned()))
        .expect("resubmission succeeds");
    assert_eq!(again.report_text, want_infected);
    let stats = again.stats.expect("a stats frame is streamed");
    assert_eq!(
        stats.get("cache").and_then(Json::as_str),
        Some("hit"),
        "frames: {frames:?}"
    );
    assert_eq!(
        stats
            .get("session")
            .and_then(|s| s.get("bit_blasts"))
            .and_then(Json::as_u64),
        Some(1),
        "a cache hit must not re-bit-blast"
    );
    assert!(
        frames.iter().any(|f| f.contains("\"event\":\"accepted\"")),
        "frames: {frames:?}"
    );

    // Served aggregate stats see the three completions and the cache hit.
    let served = client::stats(&addr).expect("stats endpoint answers");
    assert_eq!(served.get("completed").and_then(Json::as_u64), Some(3));
    let cache = served.get("cache").expect("cache counters present");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(2));
    let solver = served.get("solver_totals").expect("solver totals present");
    assert!(solver.get("propagations").and_then(Json::as_u64).unwrap() > 0);

    server.stop();
}

#[test]
fn a_dropped_client_never_perturbs_a_live_tenant() {
    let clean = accelerator(false);
    let infected = accelerator(true);
    let want_clean = solo_normalized_report(&clean);

    let server = test_server();
    let addr = server.addr().to_string();

    // Submit the infected design by hand and vanish right after admission:
    // the disconnect watcher flips the job's cancel flag.
    {
        let body = Json::obj([("netlist", Json::str(infected.as_str()))]).to_string();
        let mut raw = TcpStream::connect(&addr).unwrap();
        write!(
            raw,
            "POST /jobs HTTP/1.1\r\nHost: htd\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            if line.contains("\"event\":\"accepted\"") {
                break;
            }
            line.clear();
        }
        assert!(line.contains("\"event\":\"accepted\""), "got {line:?}");
        // Dropping both handles closes the socket: the client is gone.
    }

    // A live tenant submitted while the orphaned job winds down still gets
    // its exact solo report.
    let live = client::submit(&addr, &clean, &mut |_| {}).expect("live tenant completes");
    assert_eq!(live.report_text, want_clean);

    // The orphaned job reaches a terminal state (cancelled when the watcher
    // won the race, completed when the tiny flow finished first) and the
    // queue drains either way.
    let mut settled = false;
    for _ in 0..100 {
        let served = client::stats(&addr).unwrap();
        let active = served.get("queue_depth").and_then(Json::as_u64).unwrap()
            + served.get("running").and_then(Json::as_u64).unwrap();
        if active == 0 {
            settled = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(settled, "orphaned job never reached a terminal state");

    server.stop();
}

#[test]
fn rejections_use_the_structured_error_schema() {
    let server = test_server();
    let addr = server.addr().to_string();

    // Not JSON at all.
    let err = client::submit(&addr, "", &mut |_| {}); // valid JSON, valid shape, empty netlist
    match err {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, "bad_request");
            assert!(message.contains("netlist rejected"), "{message}");
        }
        other => panic!("expected a bad_request rejection, got {other:?}"),
    }

    // A syntactically broken request body, sent by hand.
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        write!(
            raw,
            "POST /jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot JSON!"
        )
        .unwrap();
        let mut answer = String::new();
        BufReader::new(raw).read_line(&mut answer).unwrap();
        assert!(answer.starts_with("HTTP/1.1 400"), "{answer}");
    }

    // Cancelling a job that never existed.
    match client::cancel(&addr, 999) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "not_found"),
        other => panic!("expected not_found, got {other:?}"),
    }

    // Cancelling a finished job acknowledges without flipping anything.
    let done = client::submit(&addr, &accelerator(false), &mut |_| {}).unwrap();
    let answer = client::cancel(&addr, done.job).unwrap();
    assert_eq!(answer.get("cancelled"), Some(&Json::Bool(false)));
    assert_eq!(
        answer.get("state").and_then(Json::as_str),
        Some("completed")
    );

    server.stop();
}

#[test]
fn an_exhausted_budget_streams_a_structured_frame_and_frees_the_runner() {
    let server = test_server();
    let addr = server.addr().to_string();
    let infected = accelerator(true);

    // A zero deadline trips at the first solver query: the job settles with
    // a terminal `budget_exhausted` frame instead of a report.
    let options = SubmitOptions {
        deadline_ms: Some(0),
        ..SubmitOptions::default()
    };
    let mut frames = Vec::new();
    let err = client::submit_with_options(&addr, &infected, &options, &mut |line| {
        frames.push(line.to_owned());
    });
    match err {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, "budget_exhausted");
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected budget_exhausted, got {other:?}"),
    }
    assert!(
        frames
            .iter()
            .any(|f| f.contains("\"event\":\"budget_exhausted\"") && f.contains("\"conflicts\"")),
        "frames: {frames:?}"
    );

    // The runner that hit the budget serves the next job normally.
    let clean = accelerator(false);
    let ok = client::submit(&addr, &clean, &mut |_| {}).expect("pool survives an exhausted job");
    assert_eq!(ok.report_text, solo_normalized_report(&clean));

    let served = client::stats(&addr).expect("stats endpoint answers");
    assert_eq!(
        served.get("budget_exhausted").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(served.get("completed").and_then(Json::as_u64), Some(1));

    server.stop();
}

#[test]
fn identical_concurrent_submissions_coalesce_into_one_run() {
    let infected = accelerator(true);
    let want = solo_normalized_report(&infected);

    // Stall the runner before the flow starts so the second submission
    // reliably arrives while the first is still in flight.
    let server = Server::start(ServeOptions {
        fault: Some(FaultSpec::SolveStall(Duration::from_millis(1500))),
        ..test_options()
    })
    .expect("loopback server starts");
    let addr = server.addr().to_string();

    let (leader, follower) = std::thread::scope(|scope| {
        let leader = scope.spawn(|| client::submit(&addr, &infected, &mut |_| {}).unwrap());
        // The leader is admitted within the stall window; 300ms is two
        // orders of magnitude below the 1500ms stall.
        std::thread::sleep(Duration::from_millis(300));
        let follower = scope.spawn(|| client::submit(&addr, &infected, &mut |_| {}).unwrap());
        (leader.join().unwrap(), follower.join().unwrap())
    });

    // Both subscribers stream the *same* run: byte-identical reports and
    // byte-identical stats frames (the leader's job id, one bit-blast).
    assert_eq!(leader.report_text, want);
    assert_eq!(follower.report_text, want);
    let stats_of = |s: &client::Submission| s.stats.clone().expect("stats frame streamed");
    assert_eq!(stats_of(&leader), stats_of(&follower));
    assert_eq!(
        stats_of(&leader)
            .get("session")
            .and_then(|s| s.get("bit_blasts"))
            .and_then(Json::as_u64),
        Some(1),
        "a coalesced pair must bit-blast exactly once"
    );
    assert_eq!(
        stats_of(&leader).get("cache").and_then(Json::as_str),
        Some("miss"),
        "one miss, no second lookup: the follower never reached the cache"
    );

    // Aggregates: two completions, one coalesced attach, a single run.
    let served = client::stats(&addr).expect("stats endpoint answers");
    assert_eq!(served.get("completed").and_then(Json::as_u64), Some(2));
    assert_eq!(served.get("coalesced").and_then(Json::as_u64), Some(1));
    let cache = served.get("cache").expect("cache counters present");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(0));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));

    server.stop();
}

#[test]
fn drain_stops_admission_and_lets_running_jobs_finish() {
    let infected = accelerator(true);
    let want = solo_normalized_report(&infected);

    let server = Server::start(ServeOptions {
        fault: Some(FaultSpec::SolveStall(Duration::from_millis(800))),
        drain_deadline: Duration::from_secs(30),
        ..test_options()
    })
    .expect("loopback server starts");
    let addr = server.addr().to_string();

    std::thread::scope(|scope| {
        let running = scope.spawn(|| client::submit(&addr, &infected, &mut |_| {}).unwrap());
        std::thread::sleep(Duration::from_millis(250));

        // POST /admin/drain acknowledges with the live-job count.
        {
            let body = "{}";
            let mut raw = TcpStream::connect(&addr).unwrap();
            write!(
                raw,
                "POST /admin/drain HTTP/1.1\r\nHost: htd\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .unwrap();
            let mut answer = String::new();
            BufReader::new(raw).read_to_string(&mut answer).unwrap();
            assert!(answer.contains("\"draining\":true"), "{answer}");
        }

        // Admission is closed with the structured `draining` rejection...
        match client::submit(&addr, &accelerator(false), &mut |_| {}) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, "draining"),
            other => panic!("expected draining rejection, got {other:?}"),
        }
        let served = client::stats(&addr).expect("stats answers while draining");
        assert_eq!(served.get("draining"), Some(&Json::Bool(true)));

        // ...but the in-flight job still completes with its full report.
        assert_eq!(running.join().unwrap().report_text, want);
    });

    // Drain shuts the daemon down once the last job settled: join returns.
    server.join();
}

/// How many `budget_exhausted` frames a raw NDJSON stream carried.
fn exhausted_frames(frames: &[String]) -> usize {
    frames
        .iter()
        .filter(|f| f.contains("\"event\":\"budget_exhausted\""))
        .count()
}

#[test]
fn request_budgets_clamp_to_the_server_cap() {
    use htd_core::SolveBudget;

    // The operator caps every job at a zero wall-clock allowance; requests
    // can only tighten that, never widen it.
    let server = Server::start(ServeOptions {
        budget: SolveBudget {
            deadline: Some(Duration::ZERO),
            conflict_ceiling: None,
        },
        ..test_options()
    })
    .expect("loopback server starts");
    let addr = server.addr().to_string();
    let infected = accelerator(true);

    let expect_exhausted = |options: &SubmitOptions, label: &str| {
        let mut frames = Vec::new();
        match client::submit_with_options(&addr, &infected, options, &mut |line| {
            frames.push(line.to_owned());
        }) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, "budget_exhausted", "{label}")
            }
            other => panic!("{label}: expected budget_exhausted, got {other:?}"),
        }
        assert_eq!(
            exhausted_frames(&frames),
            1,
            "{label}: exactly one terminal frame, got {frames:?}"
        );
    };

    // Absent request budget: the server cap alone applies.
    expect_exhausted(&SubmitOptions::default(), "absent request budget");
    // A zero request budget is within the cap (it can't get any tighter).
    expect_exhausted(
        &SubmitOptions {
            deadline_ms: Some(0),
            ..SubmitOptions::default()
        },
        "zero request budget",
    );
    // A request far above the cap is clamped down to it, not honoured.
    expect_exhausted(
        &SubmitOptions {
            deadline_ms: Some(3_600_000),
            conflict_ceiling: Some(u64::MAX),
            ..SubmitOptions::default()
        },
        "over-cap request budget",
    );

    let served = client::stats(&addr).expect("stats endpoint answers");
    assert_eq!(
        served.get("budget_exhausted").and_then(Json::as_u64),
        Some(3)
    );
    assert_eq!(served.get("completed").and_then(Json::as_u64), Some(0));
    server.stop();

    // Control: with an unlimited server cap, an absent request budget means
    // no budget at all — the same design completes normally.
    let unlimited = test_server();
    let addr = unlimited.addr().to_string();
    let ok = client::submit(&addr, &infected, &mut |_| {}).expect("uncapped job completes");
    assert_eq!(ok.report_text, solo_normalized_report(&infected));
    unlimited.stop();
}

#[test]
fn a_portfolio_backend_serves_identical_reports_and_counts_its_races() {
    use htd_core::{BackendChoice, RacePolicy};

    let server = Server::start(ServeOptions {
        backend: BackendChoice::portfolio(
            vec![BackendChoice::Builtin, BackendChoice::Builtin],
            RacePolicy::DeterministicCex,
        ),
        ..test_options()
    })
    .expect("a portfolio of builtins forks, so the server starts");
    let addr = server.addr().to_string();
    let infected = accelerator(true);

    // Deterministic-cex: the served verdict, property table and — most
    // importantly — the counterexample bytes match a solo run on the
    // builtin backend alone.  Only the work-counter lines may differ
    // (forking N members copies N× the bytes, and the portfolio prints its
    // race tally), so those are filtered before comparing.
    let counters_scrubbed = |text: &str| -> String {
        text.lines()
            .filter(|line| {
                !line.starts_with("  solver:")
                    && !line.starts_with("  snapshots:")
                    && !line.starts_with("  portfolio:")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let got = client::submit(&addr, &infected, &mut |_| {}).expect("portfolio job completes");
    assert_eq!(
        counters_scrubbed(&got.report_text),
        counters_scrubbed(&solo_normalized_report(&infected))
    );
    assert!(
        got.report_text.contains("  portfolio: "),
        "{}",
        got.report_text
    );

    // The race telemetry reaches /stats through solver_totals.
    let served = client::stats(&addr).expect("stats endpoint answers");
    let solver = served.get("solver_totals").expect("solver totals present");
    let races = solver.get("race_solves").and_then(Json::as_u64).unwrap();
    assert!(races > 0, "every solve task raced: {solver:?}");
    let wins = solver.get("race_wins").and_then(Json::as_u64).unwrap();
    assert!(wins <= races);
    assert!(solver.get("race_cancels").is_some());
    assert!(solver.get("race_wasted_conflicts").is_some());
    assert!(solver.get("race_cancel_latency_us").is_some());

    // An exhausted budget stops every racing member: the job settles with
    // exactly one budget_exhausted frame and the pool stays healthy.
    let options = SubmitOptions {
        deadline_ms: Some(0),
        ..SubmitOptions::default()
    };
    let mut frames = Vec::new();
    match client::submit_with_options(&addr, &infected, &options, &mut |line| {
        frames.push(line.to_owned());
    }) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "budget_exhausted"),
        other => panic!("expected budget_exhausted, got {other:?}"),
    }
    assert_eq!(
        exhausted_frames(&frames),
        1,
        "one terminal frame even with racing members: {frames:?}"
    );
    let ok = client::submit(&addr, &infected, &mut |_| {}).expect("pool survives");
    assert_eq!(
        counters_scrubbed(&ok.report_text),
        counters_scrubbed(&solo_normalized_report(&infected))
    );

    server.stop();
}

#[test]
fn an_unusable_backend_is_refused_at_startup() {
    use htd_core::BackendChoice;

    let Err(err) = Server::start(ServeOptions {
        backend: BackendChoice::ipasir("/nonexistent/libhtd-missing.so"),
        ..test_options()
    }) else {
        panic!("a missing library must fail bring-up")
    };
    assert!(err.to_string().contains("libhtd-missing.so"), "{err}");
}
