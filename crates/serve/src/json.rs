//! A minimal JSON value type: enough to frame the service protocol without
//! any external dependency.
//!
//! The service speaks newline-delimited JSON (NDJSON), so the writer is
//! strictly single-line: no pretty-printing, no raw control characters, keys
//! emitted in insertion order.  The parser accepts standard JSON (RFC 8259)
//! with two deliberate simplifications documented on [`Json::parse`]:
//! numbers outside `u64`/`i64`/`f64` and `\u` escapes above the BMP are
//! rejected rather than silently approximated.

use std::fmt;

/// A parsed or built JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case: ids and counters).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A number with a fraction or exponent.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order so emitted frames are stable.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Builds an array of strings.
    pub fn strings(values: impl IntoIterator<Item = impl Into<String>>) -> Json {
        Json::Arr(values.into_iter().map(|v| Json::Str(v.into())).collect())
    }

    /// Looks up a field of an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            _ => None,
        }
    }

    /// Parses a JSON document.  The whole input must be one value (trailing
    /// whitespace allowed).
    ///
    /// Restrictions relative to RFC 8259, both loud failures rather than
    /// silent precision loss: integers must fit `u64` (non-negative) or
    /// `i64` (negative), and `\uXXXX` escapes must not form surrogate
    /// pairs — the protocol never emits them.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error, with the byte
    /// offset where it occurred.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; the protocol never produces them.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so any run of bytes that stops before a
            // quote/backslash/control byte is valid UTF-8.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).ok_or_else(|| {
                                format!("surrogate \\u escape at byte {}", self.pos)
                            })?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(format!("raw control byte at byte {}", self.pos)),
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if fractional {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number `{text}` at byte {start}"))
        } else if let Some(digits) = text.strip_prefix('-') {
            digits
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Json::Int)
                .ok_or_else(|| format!("integer `{text}` out of range at byte {start}"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| format!("integer `{text}` out of range at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_protocol_shapes() {
        let frame = Json::obj([
            ("event", Json::str("accepted")),
            ("job", Json::UInt(7)),
            ("queue_depth", Json::UInt(0)),
            ("names", Json::strings(["a", "b\nc"])),
            ("ok", Json::Bool(true)),
            ("note", Json::Null),
        ]);
        let text = frame.to_string();
        assert_eq!(
            text,
            "{\"event\":\"accepted\",\"job\":7,\"queue_depth\":0,\
             \"names\":[\"a\",\"b\\nc\"],\"ok\":true,\"note\":null}"
        );
        assert_eq!(Json::parse(&text).unwrap(), frame);
    }

    #[test]
    fn parses_numbers_without_precision_loss() {
        let parsed = Json::parse("[18446744073709551615, -42, 1.5]").unwrap();
        let Json::Arr(items) = parsed else {
            panic!("expected array")
        };
        assert_eq!(items[0], Json::UInt(u64::MAX));
        assert_eq!(items[1], Json::Int(-42));
        assert_eq!(items[2], Json::Num(1.5));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"\\q\"", "1 2"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_strings_that_would_break_ndjson_framing() {
        let value = Json::str("line1\nline2\t\"quoted\"\\");
        let text = value.to_string();
        assert!(!text.contains('\n'), "newline must be escaped: {text}");
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn field_lookup_reads_objects_only() {
        let obj = Json::parse("{\"netlist\":\"module m\"}").unwrap();
        assert_eq!(obj.get("netlist").and_then(Json::as_str), Some("module m"));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(Json::Null.get("netlist"), None);
    }
}
