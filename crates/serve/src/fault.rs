//! Test-only fault injection for the daemon.
//!
//! The robustness claims of the serve tier — a panicking flow fails one job,
//! a stalled solve is drainable, a vanishing client never wedges a runner —
//! are only claims until a test can *provoke* those situations on demand.
//! [`FaultSpec`] names the provocations; the server consults it at the
//! matching points of the job lifecycle.
//!
//! The knob is the [`HTD_SERVE_FAULT`](crate::FAULT_ENV_VAR) environment
//! variable, parsed strictly like every other `HTD_SERVE_*` variable.  It is
//! **compiled out of release builds**: only test builds and builds with the
//! `fault-injection` feature accept it, and a release daemon that finds it
//! set refuses to start rather than silently ignoring a knob the operator
//! believed was active.

use std::str::FromStr;
use std::time::Duration;

/// One injected fault.  The type is always compiled (tests construct it
/// directly); only the *environment* acceptance is feature-gated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// The first job to reach a runner panics mid-flow (`runner-panic`).
    /// One-shot: later jobs run normally, so a test can prove the pool
    /// survives the panic.
    RunnerPanic,
    /// Every job stalls for the given duration before solving
    /// (`solve-stall:<ms>`), honouring cancellation while stalled.  Gives
    /// tests a window to coalesce onto, cancel, or drain an in-flight job.
    SolveStall(Duration),
    /// The server force-closes the first subscriber's socket after the
    /// job's `<n>`-th streamed frame (`stream-disconnect:<n>`).  One-shot.
    StreamDisconnect(u64),
    /// Every frame write is preceded by the given sleep
    /// (`slow-writes:<ms>`), simulating a slow-reading client.
    SlowWrites(Duration),
}

impl FromStr for FaultSpec {
    type Err = String;

    fn from_str(spec: &str) -> Result<FaultSpec, String> {
        let spec = spec.trim();
        if spec == "runner-panic" {
            return Ok(FaultSpec::RunnerPanic);
        }
        if let Some(ms) = spec.strip_prefix("solve-stall:") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad solve-stall milliseconds: {ms:?}"))?;
            return Ok(FaultSpec::SolveStall(Duration::from_millis(ms)));
        }
        if let Some(n) = spec.strip_prefix("stream-disconnect:") {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad stream-disconnect frame count: {n:?}"))?;
            return Ok(FaultSpec::StreamDisconnect(n));
        }
        if let Some(ms) = spec.strip_prefix("slow-writes:") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad slow-writes milliseconds: {ms:?}"))?;
            return Ok(FaultSpec::SlowWrites(Duration::from_millis(ms)));
        }
        Err(format!(
            "unknown fault {spec:?} (known: runner-panic, solve-stall:<ms>, \
             stream-disconnect:<n>, slow-writes:<ms>)"
        ))
    }
}

/// The injected fault from [`HTD_SERVE_FAULT`](crate::FAULT_ENV_VAR), or
/// `None` when unset.  Only available to test builds and builds with the
/// `fault-injection` feature.
///
/// # Errors
///
/// When the variable is set to an unknown or malformed fault spec.
#[cfg(any(test, feature = "fault-injection"))]
pub fn try_default_fault() -> Result<Option<FaultSpec>, String> {
    let Ok(value) = std::env::var(crate::FAULT_ENV_VAR) else {
        return Ok(None);
    };
    value.parse().map(Some).map_err(|e| {
        format!(
            "{var}={value:?} is not a fault spec: {e}; unset it to run without fault injection",
            var = crate::FAULT_ENV_VAR
        )
    })
}

/// Release builds do not inject faults: a set
/// [`HTD_SERVE_FAULT`](crate::FAULT_ENV_VAR) is refused loudly so an
/// operator never believes a fault is armed when the hooks were compiled
/// out.
///
/// # Errors
///
/// Whenever the variable is set at all.
#[cfg(not(any(test, feature = "fault-injection")))]
pub fn try_default_fault() -> Result<Option<FaultSpec>, String> {
    match std::env::var(crate::FAULT_ENV_VAR) {
        Err(_) => Ok(None),
        Ok(value) => Err(format!(
            "{var}={value:?} is set, but this build has no fault-injection hooks \
             (they are compiled in only with the `fault-injection` feature); \
             unset it or rebuild with --features htd-serve/fault-injection",
            var = crate::FAULT_ENV_VAR
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_fault_kind() {
        assert_eq!("runner-panic".parse(), Ok(FaultSpec::RunnerPanic));
        assert_eq!(
            "solve-stall:250".parse(),
            Ok(FaultSpec::SolveStall(Duration::from_millis(250)))
        );
        assert_eq!(
            "stream-disconnect:3".parse(),
            Ok(FaultSpec::StreamDisconnect(3))
        );
        assert_eq!(
            " slow-writes:10 ".parse(),
            Ok(FaultSpec::SlowWrites(Duration::from_millis(10)))
        );
    }

    #[test]
    fn rejects_unknown_and_malformed_specs() {
        assert!(FaultSpec::from_str("coffee-spill").is_err());
        assert!(FaultSpec::from_str("solve-stall:").is_err());
        assert!(FaultSpec::from_str("solve-stall:soon").is_err());
        assert!(FaultSpec::from_str("stream-disconnect:-1").is_err());
        let err = FaultSpec::from_str("nope").unwrap_err();
        assert!(err.contains("runner-panic"), "error names the knobs: {err}");
    }
}
