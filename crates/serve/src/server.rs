//! The detection daemon: a bounded job queue in front of a shared
//! [`SharedSolvePool`], a netlist-keyed [`SnapshotCache`] of frozen master
//! encodings, and one NDJSON event stream per submitted job.
//!
//! See the [crate docs](crate) for the wire protocol.  Concurrency layout:
//!
//! * one **accept** thread takes connections and hands each to a detached
//!   connection thread;
//! * a connection thread parses the request; for `POST /jobs` it performs
//!   admission control, writes the `accepted` frame, enqueues the job and
//!   then lingers as a **disconnect watcher** — a client hangup flips the
//!   job's cancel flag, which the flow coordinator honours between tasks;
//! * `max(2, workers)` **runner** threads drain the queue.  Each runner
//!   resolves the snapshot cache, builds a
//!   [`DetectionSession`](htd_core::DetectionSession) on a fork of
//!   the frozen master, attaches the shared pool and streams the flow's
//!   events back over the socket.  Two runners minimum means two jobs
//!   multiplex over the pool even on a single-core host.
//!
//! Every job runs on an O(bytes) fork of a *pristine* master — never the
//! master itself — so a cache hit, a cache miss and a cache-disabled run all
//! execute byte-identical solver work and produce byte-identical
//! [`DetectionReport::normalized`] renderings.

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use htd_core::{
    DetectError, DetectionReport, DetectorConfig, EngineChoice, FlowEvent, PropertyScheduler,
    SessionBuilder, SharedSolvePool,
};
use htd_ipc::{MiterSession, SessionStats};
use htd_rtl::{netlist, ValidatedDesign};
use htd_sat::{Solver, SolverStats};

use crate::cache::{FrozenMaster, SnapshotCache};
use crate::http::{self, Request, RequestError};
use crate::json::Json;

/// Upper bound on a submitted request body (the JSON-wrapped netlist).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// How often a disconnect watcher wakes to poll its job's completion flag.
const WATCH_INTERVAL: Duration = Duration::from_millis(200);

/// Upper bound on any single blocking write of a response frame.  A client
/// that stays connected but stops reading fills the TCP send buffer; without
/// a timeout the runner would block in `writeln!` forever (the disconnect
/// watcher never fires — the peer is still there — and the cancel flag
/// cannot interrupt a blocked write), wedging the runner pool.  A timed-out
/// write is treated exactly like a hangup: cancel the job, stop streaming.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Finished jobs retained for `GET /stats` (a bounded ring; older records
/// are dropped first).
const FINISHED_RING: usize = 64;

/// Daemon configuration, resolved from the environment by
/// [`from_env`](Self::from_env) and overridable per flag by the CLI.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// The listen address, e.g. `127.0.0.1:7171` (port 0 picks a free one).
    pub addr: String,
    /// Admission bound: queued plus running jobs may not exceed this.
    pub max_jobs: NonZeroUsize,
    /// Snapshot-cache byte budget; 0 disables caching.
    pub cache_bytes: u64,
    /// Worker threads of the shared solve pool (and, capped below at 2, the
    /// number of job runner threads).
    pub workers: NonZeroUsize,
    /// The detection configuration applied to every served job.
    pub config: DetectorConfig,
}

impl ServeOptions {
    /// Resolves the daemon configuration from `HTD_SERVE_*` (strict: a
    /// malformed value is an error, never a silent default), with the pool
    /// sized to the host's available parallelism.
    ///
    /// # Errors
    ///
    /// A description of the malformed environment variable.
    pub fn from_env() -> Result<ServeOptions, String> {
        Ok(ServeOptions {
            addr: crate::try_default_addr()?,
            max_jobs: crate::try_default_max_jobs()?,
            cache_bytes: crate::try_default_cache_bytes()?,
            workers: PropertyScheduler::available_parallelism(),
            config: DetectorConfig::default(),
        })
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Completed,
    Cancelled,
    Failed,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    fn is_active(self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

#[derive(Debug)]
struct JobRecord {
    id: u64,
    design: String,
    state: JobState,
    cancel: Arc<AtomicBool>,
    wall_secs: Option<f64>,
    cache: Option<&'static str>,
}

#[derive(Debug, Default)]
struct JobTable {
    next_id: u64,
    records: Vec<JobRecord>,
}

struct QueuedJob {
    id: u64,
    design: ValidatedDesign,
    /// The canonical netlist dump `key` was hashed from; the cache compares
    /// it on a hash hit so a collision cannot serve another tenant's design.
    dump: String,
    key: u64,
    stream: TcpStream,
    cancel: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
}

#[derive(Debug, Default)]
struct Totals {
    completed: u64,
    cancelled: u64,
    failed: u64,
    solver: SolverStats,
    session: SessionStats,
}

struct ServerState {
    options: ServeOptions,
    pool: SharedSolvePool,
    cache: Mutex<SnapshotCache>,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    jobs: Mutex<JobTable>,
    totals: Mutex<Totals>,
    shutdown: AtomicBool,
}

/// A running daemon: an accept thread, the runner threads and the shared
/// solve pool.  Dropping (or [`stop`](Self::stop)-ping) it shuts all of
/// them down; [`join`](Self::join) blocks for the daemon's lifetime.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    runners: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listen address and starts the accept and runner threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the address.
    pub fn start(options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&*options.addr)?;
        let addr = listener.local_addr()?;
        let pool = SharedSolvePool::new(options.workers);
        let runner_count = options.workers.get().max(2);
        let cache_bytes = options.cache_bytes;
        let state = Arc::new(ServerState {
            options,
            pool,
            cache: Mutex::new(SnapshotCache::new(cache_bytes)),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(JobTable::default()),
            totals: Mutex::new(Totals::default()),
            shutdown: AtomicBool::new(false),
        });
        let runners = (0..runner_count)
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || runner_loop(&state))
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let state = Arc::clone(&accept_state);
                // Detached: a connection thread either answers and exits or
                // lingers as a disconnect watcher until its job finishes.
                std::thread::spawn(move || handle_connection(&state, stream));
            }
        });
        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            runners,
        })
    }

    /// The bound listen address (with the real port when `:0` was asked).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the daemon: cancels active jobs, wakes and joins every thread,
    /// and shuts the shared pool down.
    pub fn stop(mut self) {
        self.halt();
    }

    /// Blocks until the accept loop exits (in practice: forever, until the
    /// process is killed or another thread stops the listener).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.halt();
    }

    fn halt(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        {
            let jobs = self.state.jobs.lock().expect("no poisoned locks");
            for record in &jobs.records {
                if record.state.is_active() {
                    record.cancel.store(true, Ordering::SeqCst);
                }
            }
        }
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.state.queue_cv.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for runner in self.runners.drain(..) {
            let _ = runner.join();
        }
        self.state.pool.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.halt();
    }
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let request = match http::read_request(&mut reader, MAX_BODY_BYTES) {
        Ok(request) => request,
        Err(RequestError::TooLarge { declared, limit }) => {
            let _ = http::write_error(
                &mut stream,
                413,
                "Payload Too Large",
                "oversized",
                &format!("request body of {declared} bytes exceeds the {limit}-byte limit"),
            );
            return;
        }
        Err(RequestError::Malformed(message)) => {
            let _ = http::write_error(&mut stream, 400, "Bad Request", "bad_request", &message);
            return;
        }
        Err(RequestError::Io(_)) => return,
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => handle_submit(state, stream, &request),
        ("GET", "/stats") => {
            let body = stats_json(state);
            let _ = http::write_json(&mut stream, 200, "OK", &body);
        }
        ("DELETE", path) if path.starts_with("/jobs/") => {
            handle_cancel(state, &mut stream, &path["/jobs/".len()..]);
        }
        ("POST" | "GET" | "DELETE", _) => {
            let _ = http::write_error(
                &mut stream,
                404,
                "Not Found",
                "not_found",
                &format!("no such resource: {}", request.path),
            );
        }
        (method, _) => {
            let _ = http::write_error(
                &mut stream,
                405,
                "Method Not Allowed",
                "method_not_allowed",
                &format!("unsupported method: {method}"),
            );
        }
    }
}

fn handle_submit(state: &Arc<ServerState>, mut stream: TcpStream, request: &Request) {
    let design = match parse_submission(&request.body) {
        Ok(design) => design,
        Err(message) => {
            let _ = http::write_error(&mut stream, 400, "Bad Request", "bad_request", &message);
            return;
        }
    };
    // One dump walk yields both the cache key and the canonical text the
    // cache verifies against on a hash hit.
    let dump = netlist::dump(&design);
    let key = netlist::hash_of_dump(&dump);

    // Admission control: allocate an id only when the bounded queue has room.
    let (id, cancel, queue_depth) = {
        let mut jobs = state.jobs.lock().expect("no poisoned locks");
        let active = jobs.records.iter().filter(|r| r.state.is_active()).count();
        if active >= state.options.max_jobs.get() {
            drop(jobs);
            let _ = http::write_error(
                &mut stream,
                503,
                "Service Unavailable",
                "overloaded",
                &format!(
                    "{active} jobs active, admission bound is {}; retry later",
                    state.options.max_jobs
                ),
            );
            return;
        }
        jobs.next_id += 1;
        let id = jobs.next_id;
        let cancel = Arc::new(AtomicBool::new(false));
        jobs.records.push(JobRecord {
            id,
            design: design.design().name().to_string(),
            state: JobState::Queued,
            cancel: Arc::clone(&cancel),
            wall_secs: None,
            cache: None,
        });
        let depth = state.queue.lock().expect("no poisoned locks").len();
        (id, cancel, depth)
    };

    if http::write_stream_header(&mut stream).is_err() {
        cancel_before_run(state, id);
        return;
    }
    let accepted = Json::obj([
        ("event", Json::str("accepted")),
        ("job", Json::UInt(id)),
        ("design", Json::str(design.design().name())),
        ("queue_depth", Json::UInt(queue_depth as u64)),
    ]);
    if writeln!(stream, "{accepted}").is_err() || stream.flush().is_err() {
        cancel_before_run(state, id);
        return;
    }

    let done = Arc::new(AtomicBool::new(false));
    let runner_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            cancel_before_run(state, id);
            return;
        }
    };
    {
        let mut queue = state.queue.lock().expect("no poisoned locks");
        queue.push_back(QueuedJob {
            id,
            design,
            dump,
            key,
            stream: runner_stream,
            cancel: Arc::clone(&cancel),
            done: Arc::clone(&done),
        });
    }
    state.queue_cv.notify_all();

    watch_for_disconnect(&stream, &cancel, &done);
}

/// Lingers on the submitting connection until the job finishes; a read of 0
/// bytes (client hangup) or a socket error flips the cancel flag, which the
/// flow coordinator observes between solve tasks.
fn watch_for_disconnect(stream: &TcpStream, cancel: &AtomicBool, done: &AtomicBool) {
    if stream.set_read_timeout(Some(WATCH_INTERVAL)).is_err() {
        return;
    }
    let mut scratch = [0u8; 64];
    let mut stream = stream;
    loop {
        if done.load(Ordering::SeqCst) {
            return;
        }
        match io::Read::read(&mut stream, &mut scratch) {
            Ok(0) => {
                cancel.store(true, Ordering::SeqCst);
                return;
            }
            // Bytes after the request are not part of the protocol; drain
            // and ignore them.
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                cancel.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

fn parse_submission(body: &str) -> Result<ValidatedDesign, String> {
    let document = Json::parse(body).map_err(|e| format!("request body is not valid JSON: {e}"))?;
    let netlist = document
        .get("netlist")
        .and_then(Json::as_str)
        .ok_or_else(|| "request body must be an object with a string `netlist` field".to_owned())?;
    netlist::parse(netlist).map_err(|e| format!("netlist rejected: {e}"))
}

fn runner_loop(state: &Arc<ServerState>) {
    loop {
        let job = {
            let mut queue = state.queue.lock().expect("no poisoned locks");
            loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = state.queue_cv.wait(queue).expect("no poisoned locks");
            }
        };
        run_job(state, job);
    }
}

fn run_job(state: &Arc<ServerState>, job: QueuedJob) {
    let QueuedJob {
        id,
        design,
        dump,
        key,
        mut stream,
        cancel,
        done,
    } = job;
    set_job_state(state, id, JobState::Running);
    // Bound every frame write so a connected-but-not-reading client cannot
    // wedge this runner once the TCP send buffer fills (see WRITE_TIMEOUT).
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let started = Instant::now();

    let outcome = if cancel.load(Ordering::SeqCst) {
        let _ = writeln!(
            stream,
            "{}",
            error_frame(id, "cancelled", "job cancelled before it started")
        );
        (JobState::Cancelled, None)
    } else {
        serve_detection(state, id, &design, &dump, key, &mut stream, &cancel)
    };
    let wall = started.elapsed().as_secs_f64();

    let (final_state, cache_tag) = outcome;
    finish_job(state, id, final_state, Some(wall), cache_tag);
    {
        let mut totals = state.totals.lock().expect("no poisoned locks");
        match final_state {
            JobState::Completed => totals.completed += 1,
            JobState::Cancelled => totals.cancelled += 1,
            _ => totals.failed += 1,
        }
    }
    done.store(true, Ordering::SeqCst);
    let _ = stream.flush();
    // Half-close so the client sees EOF immediately; the watcher's clone
    // shares the socket and exits on the done flag.
    let _ = stream.shutdown(Shutdown::Write);
}

/// Resolves the cache, runs the detection flow on a fork of the frozen
/// master, and streams the event/stats/report frames.  Returns the job's
/// final state and its cache disposition.
fn serve_detection(
    state: &Arc<ServerState>,
    id: u64,
    design: &ValidatedDesign,
    dump: &str,
    key: u64,
    stream: &mut TcpStream,
    cancel: &Arc<AtomicBool>,
) -> (JobState, Option<&'static str>) {
    let config = state.options.config.clone();
    let (design, run_miter, cache_tag) = if state.options.cache_bytes == 0 {
        // Caching disabled: build and fork anyway, so all three cache
        // dispositions execute the identical fork-of-pristine-master path.
        // The lookup still goes through the (always-empty) cache so the
        // miss counter reflects every lookup, as CacheStats documents.
        let _ = state.cache.lock().expect("no poisoned locks").fetch(key, dump);
        let master = MiterSession::with_options(design, config.checker, Box::new(Solver::new()));
        let fork = master.try_fork().expect("the builtin backend forks");
        (design.clone(), fork, "off")
    } else {
        let cached = state
            .cache
            .lock()
            .expect("no poisoned locks")
            .fetch(key, dump);
        match cached {
            Some((design, fork)) => (design, fork, "hit"),
            None => {
                // Build outside the cache lock: an expensive bit-blast must
                // not stall unrelated jobs' cache lookups.  A concurrent
                // same-key build loses the insert race and is simply dropped.
                let master =
                    MiterSession::with_options(design, config.checker, Box::new(Solver::new()));
                let fork = master.try_fork().expect("the builtin backend forks");
                state.cache.lock().expect("no poisoned locks").insert(
                    key,
                    dump.to_owned(),
                    FrozenMaster {
                        design: design.clone(),
                        miter: master,
                    },
                );
                (design.clone(), fork, "miss")
            }
        }
    };

    let scheduler = PropertyScheduler::new(state.options.workers).with_level_pipelining(true);
    let mut session = match SessionBuilder::new(design)
        .config(config)
        .engine(EngineChoice::Scheduled(scheduler))
        .build_with_miter(run_miter)
    {
        Ok(session) => session,
        Err(e) => {
            let _ = writeln!(stream, "{}", error_frame(id, "rejected", &e.to_string()));
            return (JobState::Failed, Some(cache_tag));
        }
    };
    session.attach_pool(state.pool.clone());
    session.set_cancel_flag(Arc::clone(cancel));

    let result = {
        let mut sink = stream.try_clone().ok();
        if sink.is_none() {
            // No stream to report on: stop the flow rather than solve into
            // the void.
            cancel.store(true, Ordering::SeqCst);
        }
        session.run_with_observer(&mut |event| {
            let Some(out) = sink.as_mut() else { return };
            let frame = event_json(id, event);
            if writeln!(out, "{frame}").is_err() {
                // The client hung up or stopped reading (WRITE_TIMEOUT
                // elapsed on a full send buffer); turn the dead stream into
                // a cancellation so the flow stops burning pool time, and
                // drop the sink so later events don't block on it again.
                cancel.store(true, Ordering::SeqCst);
                sink = None;
            }
        })
    };

    match result {
        Ok(report) => {
            let session_stats = session.session_stats();
            {
                let mut totals = state.totals.lock().expect("no poisoned locks");
                accumulate_solver(&mut totals.solver, &report.solver_totals);
                accumulate_session(&mut totals.session, &session_stats);
            }
            let depth = state.queue.lock().expect("no poisoned locks").len();
            let stats = Json::obj([
                ("event", Json::str("stats")),
                ("job", Json::UInt(id)),
                ("cache", Json::str(cache_tag)),
                ("wall_secs", Json::Num(report.total_duration.as_secs_f64())),
                ("queue_depth", Json::UInt(depth as u64)),
                ("solver", solver_json(&report.solver_totals)),
                ("session", session_json(&session_stats)),
            ]);
            let _ = writeln!(stream, "{stats}");
            let _ = writeln!(stream, "{}", report_frame(id, &report));
            (JobState::Completed, Some(cache_tag))
        }
        Err(DetectError::Cancelled) => {
            let _ = writeln!(
                stream,
                "{}",
                error_frame(id, "cancelled", "detection run cancelled")
            );
            (JobState::Cancelled, Some(cache_tag))
        }
        Err(e) => {
            let _ = writeln!(stream, "{}", error_frame(id, "flow_error", &e.to_string()));
            (JobState::Failed, Some(cache_tag))
        }
    }
}

/// The terminal frame: the normalized report rendered exactly like
/// `htd detect --normalize` prints it (the [`std::fmt::Display`] text plus
/// the CLI's trailing newline), so clients can byte-diff served and local
/// runs.
fn report_frame(id: u64, report: &DetectionReport) -> Json {
    use std::fmt::Write as _;
    let normalized = report.normalized();
    let mut text = String::new();
    let _ = writeln!(text, "{normalized}");
    Json::obj([
        ("event", Json::str("report")),
        ("job", Json::UInt(id)),
        ("summary", Json::str(report.summary())),
        ("text", Json::Str(text)),
    ])
}

fn error_frame(id: u64, code: &str, message: &str) -> Json {
    Json::obj([
        ("event", Json::str("error")),
        ("job", Json::UInt(id)),
        ("code", Json::str(code)),
        ("message", Json::str(message)),
    ])
}

fn event_json(id: u64, event: &FlowEvent) -> Json {
    let (kind, mut fields) = match event {
        FlowEvent::LevelStarted {
            level,
            signals,
            node,
            deps,
            dep_signals,
        } => (
            "level_started",
            vec![
                ("level", Json::UInt(*level as u64)),
                ("node", Json::UInt(*node as u64)),
                (
                    "deps",
                    Json::Arr(deps.iter().map(|&d| Json::UInt(d as u64)).collect()),
                ),
                ("signals", Json::strings(signals.iter().cloned())),
                ("dep_signals", Json::strings(dep_signals.iter().cloned())),
            ],
        ),
        FlowEvent::PropertyProved {
            property,
            duration,
            spurious_resolved,
            solver,
            node,
        } => (
            "property_proved",
            vec![
                ("property", Json::str(property.clone())),
                ("node", Json::UInt(*node as u64)),
                ("secs", Json::Num(duration.as_secs_f64())),
                ("spurious_resolved", Json::UInt(*spurious_resolved as u64)),
                ("solver", solver_json(solver)),
            ],
        ),
        FlowEvent::CounterexampleFound {
            property,
            diffs,
            spurious,
            solver,
            node,
        } => (
            "counterexample",
            vec![
                ("property", Json::str(property.clone())),
                ("node", Json::UInt(*node as u64)),
                ("spurious", Json::Bool(*spurious)),
                ("diffs", Json::strings(diffs.iter().cloned())),
                ("solver", solver_json(solver)),
            ],
        ),
        FlowEvent::ResolutionRound {
            property,
            round,
            waived,
            node,
        } => (
            "resolution_round",
            vec![
                ("property", Json::str(property.clone())),
                ("node", Json::UInt(*node as u64)),
                ("round", Json::UInt(*round as u64)),
                ("waived", Json::strings(waived.iter().cloned())),
            ],
        ),
        FlowEvent::Coverage {
            covered,
            uncovered,
            node,
        } => (
            "coverage",
            vec![
                ("node", Json::UInt(*node as u64)),
                ("covered", Json::UInt(*covered as u64)),
                ("uncovered", Json::strings(uncovered.iter().cloned())),
            ],
        ),
        // FlowEvent is non-exhaustive; unknown variants become opaque frames
        // rather than silent gaps in the stream.
        other => ("unknown", vec![("debug", Json::str(format!("{other:?}")))]),
    };
    let mut frame = vec![("event", Json::str(kind)), ("job", Json::UInt(id))];
    frame.append(&mut fields);
    Json::obj(frame)
}

/// Solver counters under their schema-v4 benchmark field names.
fn solver_json(stats: &SolverStats) -> Json {
    Json::obj([
        ("conflicts", Json::UInt(stats.conflicts)),
        ("propagations", Json::UInt(stats.propagations)),
        ("restarts", Json::UInt(stats.restarts)),
        ("decisions", Json::UInt(stats.decisions)),
        ("gc_runs", Json::UInt(stats.gc_runs)),
        ("clauses_collected", Json::UInt(stats.clauses_collected)),
        ("learnt_lbd_sum", Json::UInt(stats.learnt_lbd_sum)),
        ("fork_count", Json::UInt(stats.fork_count)),
        ("bytes_cloned", Json::UInt(stats.bytes_cloned)),
        (
            "arena_words_reclaimed",
            Json::UInt(stats.arena_words_reclaimed),
        ),
    ])
}

/// Session counters under their schema-v4 benchmark field names.
fn session_json(stats: &SessionStats) -> Json {
    Json::obj([
        ("bit_blasts", Json::UInt(stats.bit_blasts)),
        ("properties_checked", Json::UInt(stats.properties_checked)),
        ("nodes_encoded", Json::UInt(stats.nodes_encoded)),
        ("queries", Json::UInt(stats.queries)),
        ("structurally_proved", Json::UInt(stats.structurally_proved)),
        ("epoch_rebinds", Json::UInt(stats.epoch_rebinds)),
        ("parallel_tasks", Json::UInt(stats.parallel_tasks)),
        ("tasks_skipped", Json::UInt(stats.tasks_skipped)),
        ("snapshot_forks", Json::UInt(stats.snapshot_forks)),
        (
            "snapshot_bytes_cloned",
            Json::UInt(stats.snapshot_bytes_cloned),
        ),
    ])
}

fn accumulate_solver(into: &mut SolverStats, add: &SolverStats) {
    into.decisions += add.decisions;
    into.propagations += add.propagations;
    into.conflicts += add.conflicts;
    into.restarts += add.restarts;
    into.learnt_clauses += add.learnt_clauses;
    into.removed_clauses += add.removed_clauses;
    into.solves += add.solves;
    into.gc_runs += add.gc_runs;
    into.clauses_collected += add.clauses_collected;
    into.learnt_lbd_sum += add.learnt_lbd_sum;
    into.fork_count += add.fork_count;
    into.bytes_cloned += add.bytes_cloned;
    into.arena_words_reclaimed += add.arena_words_reclaimed;
}

fn accumulate_session(into: &mut SessionStats, add: &SessionStats) {
    into.bit_blasts += add.bit_blasts;
    into.properties_checked += add.properties_checked;
    into.nodes_encoded += add.nodes_encoded;
    into.queries += add.queries;
    into.structurally_proved += add.structurally_proved;
    into.epoch_rebinds += add.epoch_rebinds;
    into.parallel_tasks += add.parallel_tasks;
    into.tasks_skipped += add.tasks_skipped;
    into.snapshot_forks += add.snapshot_forks;
    into.snapshot_bytes_cloned += add.snapshot_bytes_cloned;
}

fn set_job_state(state: &Arc<ServerState>, id: u64, new: JobState) {
    let mut jobs = state.jobs.lock().expect("no poisoned locks");
    if let Some(record) = jobs.records.iter_mut().find(|r| r.id == id) {
        record.state = new;
    }
}

/// Marks a job that died before reaching a runner (failed header/accepted
/// write or stream clone) as cancelled.  `run_job` owns the `Totals`
/// counters for jobs that did run; this path must bump them itself or
/// `GET /stats` totals understate cancellations relative to the per-job
/// records.
fn cancel_before_run(state: &Arc<ServerState>, id: u64) {
    finish_job(state, id, JobState::Cancelled, None, None);
    state.totals.lock().expect("no poisoned locks").cancelled += 1;
}

fn finish_job(
    state: &Arc<ServerState>,
    id: u64,
    final_state: JobState,
    wall_secs: Option<f64>,
    cache: Option<&'static str>,
) {
    let mut jobs = state.jobs.lock().expect("no poisoned locks");
    if let Some(record) = jobs.records.iter_mut().find(|r| r.id == id) {
        record.state = final_state;
        record.wall_secs = wall_secs;
        record.cache = cache;
    }
    // Bound the finished ring: drop the oldest finished records first.
    let finished = jobs.records.iter().filter(|r| !r.state.is_active()).count();
    if finished > FINISHED_RING {
        let mut to_drop = finished - FINISHED_RING;
        jobs.records.retain(|r| {
            if to_drop > 0 && !r.state.is_active() {
                to_drop -= 1;
                false
            } else {
                true
            }
        });
    }
}

fn stats_json(state: &Arc<ServerState>) -> Json {
    let queue_depth = state.queue.lock().expect("no poisoned locks").len();
    let jobs = state.jobs.lock().expect("no poisoned locks");
    let running = jobs
        .records
        .iter()
        .filter(|r| r.state == JobState::Running)
        .count();
    let job_records: Vec<Json> = jobs
        .records
        .iter()
        .map(|r| {
            Json::obj([
                ("job", Json::UInt(r.id)),
                ("design", Json::str(r.design.clone())),
                ("state", Json::str(r.state.as_str())),
                ("wall_secs", r.wall_secs.map_or(Json::Null, Json::Num)),
                ("cache", r.cache.map_or(Json::Null, Json::str)),
            ])
        })
        .collect();
    drop(jobs);
    let cache = state.cache.lock().expect("no poisoned locks").stats();
    let totals = state.totals.lock().expect("no poisoned locks");
    Json::obj([
        ("max_jobs", Json::UInt(state.options.max_jobs.get() as u64)),
        ("workers", Json::UInt(state.options.workers.get() as u64)),
        ("queue_depth", Json::UInt(queue_depth as u64)),
        ("running", Json::UInt(running as u64)),
        ("completed", Json::UInt(totals.completed)),
        ("cancelled", Json::UInt(totals.cancelled)),
        ("failed", Json::UInt(totals.failed)),
        (
            "cache",
            Json::obj([
                ("entries", Json::UInt(cache.entries as u64)),
                ("bytes", Json::UInt(cache.bytes)),
                ("capacity_bytes", Json::UInt(cache.capacity_bytes)),
                ("hits", Json::UInt(cache.hits)),
                ("misses", Json::UInt(cache.misses)),
                ("evicted_entries", Json::UInt(cache.evicted_entries)),
                ("evicted_bytes", Json::UInt(cache.evicted_bytes)),
            ]),
        ),
        ("solver_totals", solver_json(&totals.solver)),
        ("session_totals", session_json(&totals.session)),
        ("jobs", Json::Arr(job_records)),
    ])
}

fn handle_cancel(state: &Arc<ServerState>, stream: &mut TcpStream, raw_id: &str) {
    let Ok(id) = raw_id.parse::<u64>() else {
        let _ = http::write_error(
            stream,
            400,
            "Bad Request",
            "bad_request",
            &format!("job id must be an integer, got {raw_id:?}"),
        );
        return;
    };
    let jobs = state.jobs.lock().expect("no poisoned locks");
    let Some(record) = jobs.records.iter().find(|r| r.id == id) else {
        drop(jobs);
        let _ = http::write_error(
            stream,
            404,
            "Not Found",
            "not_found",
            &format!("no such job: {id}"),
        );
        return;
    };
    let was_active = record.state.is_active();
    if was_active {
        record.cancel.store(true, Ordering::SeqCst);
    }
    let body = Json::obj([
        ("job", Json::UInt(id)),
        ("state", Json::str(record.state.as_str())),
        ("cancelled", Json::Bool(was_active)),
    ]);
    drop(jobs);
    let _ = http::write_json(stream, 200, "OK", &body);
}
