//! The detection daemon: a fair-share job queue in front of a shared
//! [`SharedSolvePool`], a netlist-keyed [`SnapshotCache`] of frozen master
//! encodings, and one NDJSON event stream per subscribed client.
//!
//! See the [crate docs](crate) for the wire protocol.  Concurrency layout:
//!
//! * one **accept** thread takes connections and hands each to a detached
//!   connection thread;
//! * a connection thread parses the request under a header read timeout (the
//!   slow-loris guard); for `POST /jobs` it performs admission control,
//!   writes the `accepted` frame and then lingers as a **subscriber
//!   watcher** — a client hangup or `DELETE` detaches that subscriber, and
//!   the underlying run is cancelled once no subscribers remain;
//! * `max(2, workers)` **runner** threads drain a per-tenant
//!   deficit-round-robin queue ([`FairQueue`]).  Each runner resolves the
//!   snapshot cache, builds a
//!   [`DetectionSession`](htd_core::DetectionSession) on a fork of the
//!   frozen master under the job's [`SolveBudget`], and fans the flow's
//!   events out to every subscriber.  Job execution is wrapped in
//!   [`catch_unwind`](std::panic::catch_unwind): a panicking flow fails
//!   *that job* with an `internal` error frame and the runner keeps
//!   serving.
//!
//! **Coalescing.**  Submissions are keyed by the netlist content hash
//! (byte-verified against the canonical dump, exactly like the snapshot
//! cache): a submission identical to an in-flight job attaches to it as a
//! follower instead of running the flow again, and every subscriber
//! receives the byte-identical frame stream.
//!
//! Every job runs on an O(bytes) fork of a *pristine* master — never the
//! master itself — so a cache hit, a cache miss and a cache-disabled run all
//! execute byte-identical solver work and produce byte-identical
//! [`DetectionReport::normalized`] renderings.

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use htd_core::{
    BackendChoice, DetectError, DetectionReport, DetectorConfig, EngineChoice, FlowEvent,
    PropertyScheduler, SessionBuilder, SharedSolvePool, SolveBudget,
};
use htd_ipc::{MiterSession, SessionStats};
use htd_rtl::{netlist, ValidatedDesign};
use htd_sat::SolverStats;

use crate::cache::{FrozenMaster, SnapshotCache};
use crate::fault::FaultSpec;
use crate::http::{self, Request, RequestError};
use crate::json::Json;
use crate::queue::FairQueue;

/// Upper bound on a submitted request body (the JSON-wrapped netlist).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// How often a subscriber watcher wakes to poll its job's completion flag.
const WATCH_INTERVAL: Duration = Duration::from_millis(200);

/// Upper bound on any single blocking write of a response frame.  A client
/// that stays connected but stops reading fills the TCP send buffer; without
/// a timeout the runner would block in a frame write forever (the subscriber
/// watcher never fires — the peer is still there — and the cancel flag
/// cannot interrupt a blocked write), wedging the runner pool.  A timed-out
/// write is treated exactly like a hangup: detach the subscriber, stop
/// streaming to it.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Finished jobs retained for `GET /stats` (a bounded ring; older records
/// are dropped first).
const FINISHED_RING: usize = 64;

/// Deficit granted per tenant per round of the fair queue, in netlist-dump
/// bytes: small designs interleave tightly, a huge design waits a few
/// rounds.
const FAIR_QUANTUM: u64 = 64 * 1024;

/// How often the drain supervisor re-checks for active jobs.
const DRAIN_POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Extra time a drain grants cancelled stragglers to settle before the
/// daemon shuts down regardless.
const DRAIN_HARD_GRACE: Duration = Duration::from_secs(5);

/// Locks a mutex, recovering the guarded data if the mutex is poisoned.
///
/// Job execution is already wrapped in `catch_unwind`, so a poisoned lock
/// can only come from a panic inside one of the short state-update critical
/// sections below — none of which leave the shared maps half-written in a
/// way later requests could misread.  Recovering keeps the daemon serving
/// its other tenants instead of cascading one panic into every request
/// thread that touches the same lock.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Daemon configuration, resolved from the environment by
/// [`from_env`](Self::from_env) and overridable per flag by the CLI.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// The listen address, e.g. `127.0.0.1:7171` (port 0 picks a free one).
    pub addr: String,
    /// Admission bound: queued plus running jobs may not exceed this.
    pub max_jobs: NonZeroUsize,
    /// Snapshot-cache byte budget; 0 disables caching.
    pub cache_bytes: u64,
    /// Worker threads of the shared solve pool (and, capped below at 2, the
    /// number of job runner threads).
    pub workers: NonZeroUsize,
    /// The detection configuration applied to every served job.
    pub config: DetectorConfig,
    /// The SAT backend every frozen master (and so every served job) solves
    /// on.  Must support snapshot-forking — [`Server::start`] refuses
    /// non-forkable choices.  Defaults to the builtin solver;
    /// [`from_env`](Self::from_env) resolves the strict `HTD_PORTFOLIO`
    /// default so the daemon races portfolios like any other session.
    pub backend: BackendChoice,
    /// Server-wide cap on per-job solve budgets: a request's own budget is
    /// clamped to the tighter of the two.  Unlimited by default.
    pub budget: SolveBudget,
    /// How long a drain waits for in-flight jobs before cancelling them.
    pub drain_deadline: Duration,
    /// Per-read timeout while parsing request headers (slow-loris guard).
    pub header_timeout: Duration,
    /// Injected fault for robustness tests; `None` in production.
    pub fault: Option<FaultSpec>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: crate::DEFAULT_ADDR.to_owned(),
            // htd-lint: allow(serve-panic-hygiene): evaluates a positive compile-time constant, before any request exists
            max_jobs: NonZeroUsize::new(crate::DEFAULT_MAX_JOBS).expect("positive default"),
            cache_bytes: crate::DEFAULT_CACHE_BYTES,
            workers: PropertyScheduler::available_parallelism(),
            config: DetectorConfig::default(),
            backend: BackendChoice::Builtin,
            budget: SolveBudget::default(),
            drain_deadline: crate::DEFAULT_DRAIN_DEADLINE,
            header_timeout: crate::DEFAULT_HEADER_TIMEOUT,
            fault: None,
        }
    }
}

impl ServeOptions {
    /// Resolves the daemon configuration from `HTD_SERVE_*` (strict: a
    /// malformed value is an error, never a silent default), with the pool
    /// sized to the host's available parallelism.
    ///
    /// # Errors
    ///
    /// A description of the malformed environment variable.
    pub fn from_env() -> Result<ServeOptions, String> {
        Ok(ServeOptions {
            addr: crate::try_default_addr()?,
            max_jobs: crate::try_default_max_jobs()?,
            cache_bytes: crate::try_default_cache_bytes()?,
            budget: crate::try_default_budget()?,
            drain_deadline: crate::try_default_drain_deadline()?,
            header_timeout: crate::try_default_header_timeout()?,
            fault: crate::fault::try_default_fault()?,
            backend: BackendChoice::try_default_from_env()?,
            ..ServeOptions::default()
        })
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Completed,
    Cancelled,
    Failed,
    Exhausted,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
            JobState::Exhausted => "budget_exhausted",
        }
    }

    fn is_active(self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

#[derive(Debug)]
struct JobRecord {
    id: u64,
    design: String,
    state: JobState,
    /// For an active record this is the subscriber's *detach* flag: set by
    /// `DELETE /jobs/<id>`, a client hangup, or shutdown.  The underlying
    /// run's cancel flag lives on [`Subscribers`] and flips once every
    /// subscriber has detached.
    cancel: Arc<AtomicBool>,
    wall_secs: Option<f64>,
    cache: Option<&'static str>,
}

#[derive(Debug, Default)]
struct JobTable {
    next_id: u64,
    records: Vec<JobRecord>,
}

/// One client attached to a job's frame stream.
struct Sink {
    /// The subscriber's own job id (a follower's differs from the leader's).
    job: u64,
    stream: TcpStream,
    detach: Arc<AtomicBool>,
    /// Whether this subscriber attached to an already-submitted run.
    coalesced: bool,
}

/// The fan-out state shared by a job's runner, its subscriber watchers and
/// late-attaching followers.
struct Subscribers {
    /// Cancels the underlying detection run; latched once no subscribers
    /// remain (or on drain-deadline / shutdown).
    cancel: Arc<AtomicBool>,
    sinks: Mutex<Vec<Sink>>,
    /// Streamed frame counter, for the `stream-disconnect:<n>` fault.
    frames: AtomicU64,
}

/// An in-flight (queued or running) job, keyed by netlist content hash so
/// identical submissions coalesce onto it.
struct InflightEntry {
    /// The canonical dump the key was hashed from; compared on a hash hit
    /// so a collision can never attach one tenant to another's design.
    dump: String,
    leader: u64,
    subs: Arc<Subscribers>,
    done: Arc<AtomicBool>,
}

struct QueuedJob {
    leader: u64,
    design: ValidatedDesign,
    dump: String,
    key: u64,
    budget: SolveBudget,
    subs: Arc<Subscribers>,
    done: Arc<AtomicBool>,
}

#[derive(Debug, Default)]
struct Totals {
    completed: u64,
    cancelled: u64,
    failed: u64,
    budget_exhausted: u64,
    coalesced: u64,
    solver: SolverStats,
    session: SessionStats,
}

struct ServerState {
    options: ServeOptions,
    addr: SocketAddr,
    pool: SharedSolvePool,
    cache: Mutex<SnapshotCache>,
    queue: Mutex<FairQueue<QueuedJob>>,
    queue_cv: Condvar,
    jobs: Mutex<JobTable>,
    /// Lock-order note: `inflight` is always taken *before* `jobs`,
    /// `queue` or a job's sink list, never after.
    inflight: Mutex<HashMap<u64, InflightEntry>>,
    totals: Mutex<Totals>,
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// One-shot faults (`runner-panic`, `stream-disconnect`) fire once.
    fault_armed: AtomicBool,
}

/// A running daemon: an accept thread, the runner threads and the shared
/// solve pool.  Dropping (or [`stop`](Self::stop)-ping) it shuts all of
/// them down; [`join`](Self::join) blocks for the daemon's lifetime.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    runners: Vec<JoinHandle<()>>,
}

/// A cloneable handle that starts a graceful drain from outside the server
/// — the CLI's `SIGTERM` monitor holds one.
#[derive(Clone)]
pub struct DrainHandle {
    state: Arc<ServerState>,
}

impl DrainHandle {
    /// Starts the drain (idempotent): admission stops, in-flight jobs get
    /// the drain deadline to finish, stragglers are cancelled, and the
    /// daemon then exits its accept loop so [`Server::join`] returns.
    pub fn drain(&self) {
        begin_drain(&self.state);
    }
}

impl Server {
    /// Binds the listen address and starts the accept and runner threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the address, and rejects a
    /// backend choice that cannot be brought up or cannot snapshot-fork
    /// (every served job runs on a fork of a frozen master, so a
    /// non-forkable backend could never serve a single job).
    pub fn start(options: ServeOptions) -> io::Result<Server> {
        let probe = options
            .backend
            .instantiate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        if !probe.can_fork() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "backend `{}` cannot snapshot-fork; the serve tier requires a forkable \
                     backend (builtin, ipasir:LIB, or a portfolio of those)",
                    options.backend
                ),
            ));
        }
        drop(probe);
        let listener = TcpListener::bind(&*options.addr)?;
        let addr = listener.local_addr()?;
        let pool = SharedSolvePool::new(options.workers);
        let runner_count = options.workers.get().max(2);
        let cache_bytes = options.cache_bytes;
        let state = Arc::new(ServerState {
            options,
            addr,
            pool,
            cache: Mutex::new(SnapshotCache::new(cache_bytes)),
            queue: Mutex::new(FairQueue::new(FAIR_QUANTUM)),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(JobTable::default()),
            inflight: Mutex::new(HashMap::new()),
            totals: Mutex::new(Totals::default()),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            fault_armed: AtomicBool::new(true),
        });
        let runners = (0..runner_count)
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || runner_loop(&state))
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let state = Arc::clone(&accept_state);
                // Detached: a connection thread either answers and exits or
                // lingers as a subscriber watcher until its job finishes.
                std::thread::spawn(move || handle_connection(&state, stream));
            }
        });
        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            runners,
        })
    }

    /// The bound listen address (with the real port when `:0` was asked).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can start a graceful drain from another thread (e.g.
    /// a signal monitor).
    #[must_use]
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Stops the daemon: cancels active jobs, wakes and joins every thread,
    /// and shuts the shared pool down.
    pub fn stop(mut self) {
        self.halt();
    }

    /// Blocks until the accept loop exits — on a drain, or when the process
    /// is killed or another thread stops the listener.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.halt();
    }

    fn halt(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        {
            let jobs = lock_unpoisoned(&self.state.jobs);
            for record in &jobs.records {
                if record.state.is_active() {
                    record.cancel.store(true, Ordering::SeqCst);
                }
            }
        }
        {
            // Cancel the runs directly too: the watchers that would relay a
            // detach flag may already be gone.
            let inflight = lock_unpoisoned(&self.state.inflight);
            for entry in inflight.values() {
                entry.subs.cancel.store(true, Ordering::SeqCst);
            }
        }
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.state.queue_cv.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for runner in self.runners.drain(..) {
            let _ = runner.join();
        }
        self.state.pool.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Starts the drain supervisor (idempotent): waits out active jobs until
/// the drain deadline, cancels stragglers, then stops the daemon.
fn begin_drain(state: &Arc<ServerState>) {
    if state.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    let state = Arc::clone(state);
    std::thread::spawn(move || {
        let deadline = Instant::now() + state.options.drain_deadline;
        let mut cancelled = false;
        loop {
            let active = count_active(&state);
            if active == 0 {
                break;
            }
            if !cancelled && Instant::now() >= deadline {
                cancelled = true;
                let jobs = lock_unpoisoned(&state.jobs);
                for record in &jobs.records {
                    if record.state.is_active() {
                        record.cancel.store(true, Ordering::SeqCst);
                    }
                }
                drop(jobs);
                let inflight = lock_unpoisoned(&state.inflight);
                for entry in inflight.values() {
                    entry.subs.cancel.store(true, Ordering::SeqCst);
                }
            }
            if cancelled && Instant::now() >= deadline + DRAIN_HARD_GRACE {
                break;
            }
            std::thread::sleep(DRAIN_POLL_INTERVAL);
        }
        state.shutdown.store(true, Ordering::SeqCst);
        state.queue_cv.notify_all();
        // Wake the accept loop so `Server::join` returns.
        let _ = TcpStream::connect(state.addr);
    });
}

fn count_active(state: &Arc<ServerState>) -> usize {
    lock_unpoisoned(&state.jobs)
        .records
        .iter()
        .filter(|r| r.state.is_active())
        .count()
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    // Slow-loris guard: a client may not dribble its request headers out
    // forever.  The timeout applies per read while parsing; it is lifted
    // again before any long-lived streaming below.
    let _ = stream.set_read_timeout(Some(state.options.header_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let request = match http::read_request(&mut reader, MAX_BODY_BYTES) {
        Ok(request) => request,
        Err(RequestError::TooLarge { declared, limit }) => {
            let _ = http::write_error(
                &mut stream,
                413,
                "Payload Too Large",
                "oversized",
                &format!("request body of {declared} bytes exceeds the {limit}-byte limit"),
            );
            return;
        }
        Err(RequestError::Malformed(message)) => {
            let _ = http::write_error(&mut stream, 400, "Bad Request", "bad_request", &message);
            return;
        }
        Err(RequestError::Io(e))
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            let _ = http::write_error(
                &mut stream,
                408,
                "Request Timeout",
                "timeout",
                &format!(
                    "request not received within the {}ms header timeout",
                    state.options.header_timeout.as_millis()
                ),
            );
            return;
        }
        Err(RequestError::Io(_)) => return,
    };
    let _ = stream.set_read_timeout(None);
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => handle_submit(state, stream, &request),
        ("POST", "/admin/drain") => {
            let active = count_active(state);
            begin_drain(state);
            let body = Json::obj([
                ("draining", Json::Bool(true)),
                ("active", Json::UInt(active as u64)),
            ]);
            let _ = http::write_json(&mut stream, 200, "OK", &body);
        }
        ("GET", "/stats") => {
            let body = stats_json(state);
            let _ = http::write_json(&mut stream, 200, "OK", &body);
        }
        ("DELETE", path) if path.starts_with("/jobs/") => {
            handle_cancel(state, &mut stream, &path["/jobs/".len()..]);
        }
        ("POST" | "GET" | "DELETE", _) => {
            let _ = http::write_error(
                &mut stream,
                404,
                "Not Found",
                "not_found",
                &format!("no such resource: {}", request.path),
            );
        }
        (method, _) => {
            let _ = http::write_error(
                &mut stream,
                405,
                "Method Not Allowed",
                "method_not_allowed",
                &format!("unsupported method: {method}"),
            );
        }
    }
}

fn handle_submit(state: &Arc<ServerState>, mut stream: TcpStream, request: &Request) {
    if state.draining.load(Ordering::SeqCst) {
        let _ = http::write_error(
            &mut stream,
            503,
            "Service Unavailable",
            "draining",
            "the daemon is draining and admits no new jobs",
        );
        return;
    }
    let (design, request_budget) = match parse_submission(&request.body) {
        Ok(parsed) => parsed,
        Err(message) => {
            let _ = http::write_error(&mut stream, 400, "Bad Request", "bad_request", &message);
            return;
        }
    };
    // A request may only tighten the operator's cap, never exceed it.
    let budget = request_budget.min(state.options.budget);
    // One dump walk yields both the coalescing/cache key and the canonical
    // text verified against on a hash hit.
    let dump = netlist::dump(&design);
    let key = netlist::hash_of_dump(&dump);
    let tenant = request.tenant.clone().unwrap_or_else(|| {
        stream
            .peer_addr()
            .map_or_else(|_| "unknown".to_owned(), |peer| peer.ip().to_string())
    });
    // Bound every frame write so a connected-but-not-reading client cannot
    // wedge anything once the TCP send buffer fills (see WRITE_TIMEOUT).
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));

    // Coalesce-or-lead under the inflight lock, so two identical
    // submissions racing cannot both become leaders for one key.  The lock
    // is held across the accepted-frame write, which is bounded by
    // WRITE_TIMEOUT.
    let mut inflight = lock_unpoisoned(&state.inflight);
    let attachable = inflight
        .get(&key)
        // A run all of whose subscribers already detached is winding down;
        // don't attach to it — lead a fresh run instead (the stale entry is
        // replaced below and retired by its runner leader-checked).
        .filter(|entry| entry.dump == dump && !entry.subs.cancel.load(Ordering::SeqCst))
        .map(|entry| {
            (
                entry.leader,
                Arc::clone(&entry.subs),
                Arc::clone(&entry.done),
            )
        });

    if let Some((leader, subs, done)) = attachable {
        let (id, detach) = {
            let mut jobs = lock_unpoisoned(&state.jobs);
            jobs.next_id += 1;
            let id = jobs.next_id;
            let detach = Arc::new(AtomicBool::new(false));
            // Mirror the leader's live state so /stats shows this record
            // running when the underlying flow already started.
            let running = jobs
                .records
                .iter()
                .any(|r| r.id == leader && r.state == JobState::Running);
            jobs.records.push(JobRecord {
                id,
                design: design.design().name().to_string(),
                state: if running {
                    JobState::Running
                } else {
                    JobState::Queued
                },
                cancel: Arc::clone(&detach),
                wall_secs: None,
                cache: None,
            });
            (id, detach)
        };
        let accepted = Json::obj([
            ("event", Json::str("accepted")),
            ("job", Json::UInt(id)),
            ("design", Json::str(design.design().name())),
            ("coalesced_into", Json::UInt(leader)),
        ]);
        if http::write_stream_header(&mut stream).is_err()
            || writeln!(stream, "{accepted}").is_err()
            || stream.flush().is_err()
        {
            drop(inflight);
            settle_subscriber(state, id, JobState::Cancelled, None, None);
            return;
        }
        let sink_stream = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => {
                drop(inflight);
                settle_subscriber(state, id, JobState::Cancelled, None, None);
                return;
            }
        };
        lock_unpoisoned(&subs.sinks).push(Sink {
            job: id,
            stream: sink_stream,
            detach: Arc::clone(&detach),
            coalesced: true,
        });
        lock_unpoisoned(&state.totals).coalesced += 1;
        drop(inflight);
        watch_subscriber(state, &stream, id, &subs, &detach, &done);
        return;
    }

    // Leader path: admission control, then queue a fresh run.
    let (id, detach, queue_depth) = {
        let mut jobs = lock_unpoisoned(&state.jobs);
        let active = jobs.records.iter().filter(|r| r.state.is_active()).count();
        if active >= state.options.max_jobs.get() {
            drop(jobs);
            drop(inflight);
            let _ = http::write_error(
                &mut stream,
                503,
                "Service Unavailable",
                "overloaded",
                &format!(
                    "{active} jobs active, admission bound is {}; retry later",
                    state.options.max_jobs
                ),
            );
            return;
        }
        jobs.next_id += 1;
        let id = jobs.next_id;
        let detach = Arc::new(AtomicBool::new(false));
        jobs.records.push(JobRecord {
            id,
            design: design.design().name().to_string(),
            state: JobState::Queued,
            cancel: Arc::clone(&detach),
            wall_secs: None,
            cache: None,
        });
        let depth = lock_unpoisoned(&state.queue).len();
        (id, detach, depth)
    };

    let accepted = Json::obj([
        ("event", Json::str("accepted")),
        ("job", Json::UInt(id)),
        ("design", Json::str(design.design().name())),
        ("queue_depth", Json::UInt(queue_depth as u64)),
    ]);
    if http::write_stream_header(&mut stream).is_err()
        || writeln!(stream, "{accepted}").is_err()
        || stream.flush().is_err()
    {
        drop(inflight);
        settle_subscriber(state, id, JobState::Cancelled, None, None);
        return;
    }
    let runner_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            drop(inflight);
            settle_subscriber(state, id, JobState::Cancelled, None, None);
            return;
        }
    };
    let done = Arc::new(AtomicBool::new(false));
    let subs = Arc::new(Subscribers {
        cancel: Arc::new(AtomicBool::new(false)),
        sinks: Mutex::new(vec![Sink {
            job: id,
            stream: runner_stream,
            detach: Arc::clone(&detach),
            coalesced: false,
        }]),
        frames: AtomicU64::new(0),
    });
    inflight.insert(
        key,
        InflightEntry {
            dump: dump.clone(),
            leader: id,
            subs: Arc::clone(&subs),
            done: Arc::clone(&done),
        },
    );
    let cost = dump.len() as u64;
    lock_unpoisoned(&state.queue).push(
        &tenant,
        cost,
        QueuedJob {
            leader: id,
            design,
            dump,
            key,
            budget,
            subs: Arc::clone(&subs),
            done: Arc::clone(&done),
        },
    );
    drop(inflight);
    state.queue_cv.notify_all();

    watch_subscriber(state, &stream, id, &subs, &detach, &done);
}

/// Lingers on the submitting connection until the job finishes; a read of 0
/// bytes (client hangup), a socket error, or the subscriber's detach flag
/// (set by `DELETE` or shutdown) detaches this subscriber from the fan-out.
fn watch_subscriber(
    state: &Arc<ServerState>,
    stream: &TcpStream,
    id: u64,
    subs: &Subscribers,
    detach: &AtomicBool,
    done: &AtomicBool,
) {
    if stream.set_read_timeout(Some(WATCH_INTERVAL)).is_err() {
        return;
    }
    let mut scratch = [0u8; 64];
    let mut stream = stream;
    loop {
        if done.load(Ordering::SeqCst) {
            return;
        }
        if detach.load(Ordering::SeqCst) {
            detach_subscriber(state, id, subs);
            return;
        }
        match io::Read::read(&mut stream, &mut scratch) {
            Ok(0) => {
                detach.store(true, Ordering::SeqCst);
                detach_subscriber(state, id, subs);
                return;
            }
            // Bytes after the request are not part of the protocol; drain
            // and ignore them.
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                detach.store(true, Ordering::SeqCst);
                detach_subscriber(state, id, subs);
                return;
            }
        }
    }
}

/// Removes subscriber `id` from the fan-out and settles its record; the
/// underlying run is cancelled once no subscribers remain.
fn detach_subscriber(state: &Arc<ServerState>, id: u64, subs: &Subscribers) {
    let mut sinks = lock_unpoisoned(&subs.sinks);
    sinks.retain(|sink| sink.job != id);
    let abandoned = sinks.is_empty();
    drop(sinks);
    if abandoned {
        subs.cancel.store(true, Ordering::SeqCst);
    }
    settle_subscriber(state, id, JobState::Cancelled, None, None);
}

fn parse_submission(body: &str) -> Result<(ValidatedDesign, SolveBudget), String> {
    let document = Json::parse(body).map_err(|e| format!("request body is not valid JSON: {e}"))?;
    let netlist = document
        .get("netlist")
        .and_then(Json::as_str)
        .ok_or_else(|| "request body must be an object with a string `netlist` field".to_owned())?;
    let design = netlist::parse(netlist).map_err(|e| format!("netlist rejected: {e}"))?;
    let budget = match document.get("budget") {
        None => SolveBudget::default(),
        Some(spec) => parse_budget(spec)?,
    };
    Ok((design, budget))
}

fn parse_budget(spec: &Json) -> Result<SolveBudget, String> {
    if !matches!(spec, Json::Obj(_)) {
        return Err("`budget` must be an object".to_owned());
    }
    let mut budget = SolveBudget::default();
    if let Some(ms) = spec.get("deadline_ms") {
        let ms = ms
            .as_u64()
            .ok_or("`budget.deadline_ms` must be a non-negative integer")?;
        budget.deadline = Some(Duration::from_millis(ms));
    }
    if let Some(ceiling) = spec.get("conflict_ceiling") {
        budget.conflict_ceiling = Some(
            ceiling
                .as_u64()
                .ok_or("`budget.conflict_ceiling` must be a non-negative integer")?,
        );
    }
    Ok(budget)
}

fn runner_loop(state: &Arc<ServerState>) {
    loop {
        let job = {
            let mut queue = lock_unpoisoned(&state.queue);
            loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop() {
                    break job;
                }
                queue = state
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        run_job(state, job);
    }
}

fn run_job(state: &Arc<ServerState>, job: QueuedJob) {
    let QueuedJob {
        leader,
        design,
        dump,
        key,
        budget,
        subs,
        done,
    } = job;
    set_running(state, &subs);
    let started = Instant::now();
    let fault = state.options.fault;

    // Panic isolation: whatever happens inside the flow, this job settles
    // with a structured terminal frame and the runner survives to serve the
    // next one.  (Injected fault points hold no locks when they fire.)
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if matches!(fault, Some(FaultSpec::RunnerPanic))
            && state.fault_armed.swap(false, Ordering::SeqCst)
        {
            panic!("injected runner panic (HTD_SERVE_FAULT=runner-panic)");
        }
        if let Some(FaultSpec::SolveStall(stall)) = fault {
            let stall_until = Instant::now() + stall;
            while Instant::now() < stall_until && !subs.cancel.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        if subs.cancel.load(Ordering::SeqCst) {
            (
                JobState::Cancelled,
                None,
                vec![error_frame(
                    leader,
                    "cancelled",
                    "job cancelled before it started",
                )],
            )
        } else {
            serve_detection(state, leader, &design, &dump, key, budget, &subs)
        }
    }));
    let (final_state, cache_tag, terminal) = outcome.unwrap_or_else(|payload| {
        (
            JobState::Failed,
            None,
            vec![error_frame(
                leader,
                "internal",
                &format!("job runner panicked: {}", panic_message(&payload)),
            )],
        )
    });
    let wall = started.elapsed().as_secs_f64();

    // Retire the inflight entry *before* the terminal frames go out: a new
    // identical submission must lead a fresh run, not attach to a finishing
    // one.  Leader-checked, because a stale abandoned entry may have been
    // replaced by a newer leader for the same key.
    {
        let mut inflight = lock_unpoisoned(&state.inflight);
        if inflight.get(&key).is_some_and(|e| e.leader == leader) {
            inflight.remove(&key);
        }
    }

    let sinks: Vec<Sink> = std::mem::take(&mut *lock_unpoisoned(&subs.sinks));
    for mut sink in sinks {
        if !sink.detach.load(Ordering::SeqCst) {
            for frame in &terminal {
                if writeln!(sink.stream, "{frame}").is_err() {
                    break;
                }
            }
        }
        let tag = if sink.coalesced {
            Some("coalesced")
        } else {
            cache_tag
        };
        settle_subscriber(state, sink.job, final_state, Some(wall), tag);
        let _ = sink.stream.flush();
        // Half-close so the client sees EOF immediately; the watcher's
        // clone shares the socket and exits on the done flag.
        let _ = sink.stream.shutdown(Shutdown::Write);
    }
    done.store(true, Ordering::SeqCst);
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_owned())
}

/// Marks every current subscriber's record as running.
fn set_running(state: &Arc<ServerState>, subs: &Subscribers) {
    let ids: Vec<u64> = lock_unpoisoned(&subs.sinks)
        .iter()
        .map(|sink| sink.job)
        .collect();
    let mut jobs = lock_unpoisoned(&state.jobs);
    for record in &mut jobs.records {
        if ids.contains(&record.id) && record.state == JobState::Queued {
            record.state = JobState::Running;
        }
    }
}

/// Writes one frame to every live subscriber, detaching the dead ones; the
/// run is cancelled once no subscribers remain.
fn fan_out(state: &Arc<ServerState>, subs: &Subscribers, frame: &Json) {
    let fault = state.options.fault;
    if let Some(FaultSpec::SlowWrites(delay)) = fault {
        std::thread::sleep(delay);
    }
    let line = format!("{frame}\n");
    let mut sinks = lock_unpoisoned(&subs.sinks);
    let frame_index = subs.frames.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(FaultSpec::StreamDisconnect(after)) = fault {
        if frame_index == after && state.fault_armed.swap(false, Ordering::SeqCst) {
            if let Some(first) = sinks.first() {
                let _ = first.stream.shutdown(Shutdown::Both);
            }
        }
    }
    let mut dead = Vec::new();
    sinks.retain_mut(|sink| {
        if sink.detach.load(Ordering::SeqCst) || sink.stream.write_all(line.as_bytes()).is_err() {
            // The client hung up, was cancelled, or stopped reading
            // (WRITE_TIMEOUT elapsed on a full send buffer): detach it so
            // later frames don't block on it again.
            sink.detach.store(true, Ordering::SeqCst);
            dead.push(sink.job);
            false
        } else {
            true
        }
    });
    let abandoned = sinks.is_empty();
    drop(sinks);
    for id in dead {
        settle_subscriber(state, id, JobState::Cancelled, None, None);
    }
    if abandoned {
        subs.cancel.store(true, Ordering::SeqCst);
    }
}

/// Resolves the cache, runs the detection flow on a fork of the frozen
/// master under the job's budget, and fans the event frames out to every
/// subscriber.  Returns the job's final state, its cache disposition, and
/// the terminal frames for [`run_job`] to deliver after the inflight entry
/// is retired.
fn serve_detection(
    state: &Arc<ServerState>,
    id: u64,
    design: &ValidatedDesign,
    dump: &str,
    key: u64,
    budget: SolveBudget,
    subs: &Subscribers,
) -> (JobState, Option<&'static str>, Vec<Json>) {
    let mut config = state.options.config.clone();
    config.budget = budget;
    // Frozen masters solve on the configured backend (builtin unless
    // HTD_PORTFOLIO races a portfolio).  Bring-up was validated at
    // Server::start, so a failure here (e.g. a solver library deleted at
    // runtime) fails only this job, with a clean frame.
    let build_master = || -> Result<MiterSession, DetectError> {
        Ok(MiterSession::with_options(
            design,
            config.checker,
            state.options.backend.instantiate()?,
        ))
    };
    let (design, run_miter, cache_tag) = if state.options.cache_bytes == 0 {
        // Caching disabled: build and fork anyway, so all three cache
        // dispositions execute the identical fork-of-pristine-master path.
        // The lookup still goes through the (always-empty) cache so the
        // miss counter reflects every lookup, as CacheStats documents.
        let _ = lock_unpoisoned(&state.cache).fetch(key, dump);
        let master = match build_master() {
            Ok(master) => master,
            Err(e) => {
                return (
                    JobState::Failed,
                    Some("off"),
                    vec![error_frame(id, "rejected", &e.to_string())],
                );
            }
        };
        // htd-lint: allow(serve-panic-hygiene): Server::start refused non-forkable backends; a panic here is caught by the runner's catch_unwind and fails only this job
        let fork = master.try_fork().expect("startup-validated backends fork");
        (design.clone(), fork, "off")
    } else {
        let cached = lock_unpoisoned(&state.cache).fetch(key, dump);
        match cached {
            Some((design, fork)) => (design, fork, "hit"),
            None => {
                // Build outside the cache lock: an expensive bit-blast must
                // not stall unrelated jobs' cache lookups.  A concurrent
                // same-key build loses the insert race and is simply dropped.
                let master = match build_master() {
                    Ok(master) => master,
                    Err(e) => {
                        return (
                            JobState::Failed,
                            Some("miss"),
                            vec![error_frame(id, "rejected", &e.to_string())],
                        );
                    }
                };
                // htd-lint: allow(serve-panic-hygiene): Server::start refused non-forkable backends; a panic here is caught by the runner's catch_unwind and fails only this job
                let fork = master.try_fork().expect("startup-validated backends fork");
                lock_unpoisoned(&state.cache).insert(
                    key,
                    dump.to_owned(),
                    FrozenMaster {
                        design: design.clone(),
                        miter: master,
                    },
                );
                (design.clone(), fork, "miss")
            }
        }
    };

    let scheduler = PropertyScheduler::new(state.options.workers).with_level_pipelining(true);
    let mut session = match SessionBuilder::new(design)
        .config(config)
        .engine(EngineChoice::Scheduled(scheduler))
        .build_with_miter(run_miter)
    {
        Ok(session) => session,
        Err(e) => {
            return (
                JobState::Failed,
                Some(cache_tag),
                vec![error_frame(id, "rejected", &e.to_string())],
            );
        }
    };
    session.attach_pool(state.pool.clone());
    session.set_cancel_flag(Arc::clone(&subs.cancel));

    let result = session.run_with_observer(&mut |event| {
        fan_out(state, subs, &event_json(id, event));
    });

    match result {
        Ok(report) => {
            let session_stats = session.session_stats();
            {
                let mut totals = lock_unpoisoned(&state.totals);
                accumulate_solver(&mut totals.solver, &report.solver_totals);
                accumulate_session(&mut totals.session, &session_stats);
            }
            let depth = lock_unpoisoned(&state.queue).len();
            let stats = Json::obj([
                ("event", Json::str("stats")),
                ("job", Json::UInt(id)),
                ("cache", Json::str(cache_tag)),
                ("wall_secs", Json::Num(report.total_duration.as_secs_f64())),
                ("queue_depth", Json::UInt(depth as u64)),
                ("solver", solver_json(&report.solver_totals)),
                ("session", session_json(&session_stats)),
            ]);
            let report = report_frame(id, &report);
            (JobState::Completed, Some(cache_tag), vec![stats, report])
        }
        Err(DetectError::Cancelled) => (
            JobState::Cancelled,
            Some(cache_tag),
            vec![error_frame(id, "cancelled", "detection run cancelled")],
        ),
        Err(DetectError::BudgetExhausted { reason, conflicts }) => {
            let frame = Json::obj([
                ("event", Json::str("budget_exhausted")),
                ("job", Json::UInt(id)),
                ("reason", Json::str(reason.clone())),
                ("conflicts", Json::UInt(conflicts)),
                (
                    "message",
                    Json::str(format!(
                        "solve budget exhausted ({reason}) after {conflicts} conflicts; \
                         events streamed so far are valid partial progress"
                    )),
                ),
            ]);
            (JobState::Exhausted, Some(cache_tag), vec![frame])
        }
        Err(e) => (
            JobState::Failed,
            Some(cache_tag),
            vec![error_frame(id, "flow_error", &e.to_string())],
        ),
    }
}

/// The terminal frame: the normalized report rendered exactly like
/// `htd detect --normalize` prints it (the [`std::fmt::Display`] text plus
/// the CLI's trailing newline), so clients can byte-diff served and local
/// runs.
fn report_frame(id: u64, report: &DetectionReport) -> Json {
    use std::fmt::Write as _;
    let normalized = report.normalized();
    let mut text = String::new();
    let _ = writeln!(text, "{normalized}");
    Json::obj([
        ("event", Json::str("report")),
        ("job", Json::UInt(id)),
        ("summary", Json::str(report.summary())),
        ("text", Json::Str(text)),
    ])
}

fn error_frame(id: u64, code: &str, message: &str) -> Json {
    Json::obj([
        ("event", Json::str("error")),
        ("job", Json::UInt(id)),
        ("code", Json::str(code)),
        ("message", Json::str(message)),
    ])
}

fn event_json(id: u64, event: &FlowEvent) -> Json {
    let (kind, mut fields) = match event {
        FlowEvent::LevelStarted {
            level,
            signals,
            node,
            deps,
            dep_signals,
        } => (
            "level_started",
            vec![
                ("level", Json::UInt(*level as u64)),
                ("node", Json::UInt(*node as u64)),
                (
                    "deps",
                    Json::Arr(deps.iter().map(|&d| Json::UInt(d as u64)).collect()),
                ),
                ("signals", Json::strings(signals.iter().cloned())),
                ("dep_signals", Json::strings(dep_signals.iter().cloned())),
            ],
        ),
        FlowEvent::PropertyProved {
            property,
            duration,
            spurious_resolved,
            solver,
            node,
        } => (
            "property_proved",
            vec![
                ("property", Json::str(property.clone())),
                ("node", Json::UInt(*node as u64)),
                ("secs", Json::Num(duration.as_secs_f64())),
                ("spurious_resolved", Json::UInt(*spurious_resolved as u64)),
                ("solver", solver_json(solver)),
            ],
        ),
        FlowEvent::CounterexampleFound {
            property,
            diffs,
            spurious,
            solver,
            node,
        } => (
            "counterexample",
            vec![
                ("property", Json::str(property.clone())),
                ("node", Json::UInt(*node as u64)),
                ("spurious", Json::Bool(*spurious)),
                ("diffs", Json::strings(diffs.iter().cloned())),
                ("solver", solver_json(solver)),
            ],
        ),
        FlowEvent::ResolutionRound {
            property,
            round,
            waived,
            node,
        } => (
            "resolution_round",
            vec![
                ("property", Json::str(property.clone())),
                ("node", Json::UInt(*node as u64)),
                ("round", Json::UInt(*round as u64)),
                ("waived", Json::strings(waived.iter().cloned())),
            ],
        ),
        FlowEvent::Coverage {
            covered,
            uncovered,
            node,
        } => (
            "coverage",
            vec![
                ("node", Json::UInt(*node as u64)),
                ("covered", Json::UInt(*covered as u64)),
                ("uncovered", Json::strings(uncovered.iter().cloned())),
            ],
        ),
        // FlowEvent is non-exhaustive; unknown variants become opaque frames
        // rather than silent gaps in the stream.
        other => ("unknown", vec![("debug", Json::str(format!("{other:?}")))]),
    };
    let mut frame = vec![("event", Json::str(kind)), ("job", Json::UInt(id))];
    frame.append(&mut fields);
    Json::obj(frame)
}

/// Solver counters under their schema-v4 benchmark field names.
fn solver_json(stats: &SolverStats) -> Json {
    Json::obj([
        ("conflicts", Json::UInt(stats.conflicts)),
        ("propagations", Json::UInt(stats.propagations)),
        ("restarts", Json::UInt(stats.restarts)),
        ("decisions", Json::UInt(stats.decisions)),
        ("gc_runs", Json::UInt(stats.gc_runs)),
        ("clauses_collected", Json::UInt(stats.clauses_collected)),
        ("learnt_lbd_sum", Json::UInt(stats.learnt_lbd_sum)),
        ("fork_count", Json::UInt(stats.fork_count)),
        ("bytes_cloned", Json::UInt(stats.bytes_cloned)),
        (
            "arena_words_reclaimed",
            Json::UInt(stats.arena_words_reclaimed),
        ),
        // Portfolio-race counters: all zero unless HTD_PORTFOLIO races
        // the daemon's solves across multiple backends.
        ("race_solves", Json::UInt(stats.race_solves)),
        ("race_wins", Json::UInt(stats.race_wins)),
        ("race_cancels", Json::UInt(stats.race_cancels)),
        (
            "race_wasted_conflicts",
            Json::UInt(stats.race_wasted_conflicts),
        ),
        (
            "race_cancel_latency_us",
            Json::UInt(stats.race_cancel_latency_us),
        ),
    ])
}

/// Session counters under their schema-v4 benchmark field names.
fn session_json(stats: &SessionStats) -> Json {
    Json::obj([
        ("bit_blasts", Json::UInt(stats.bit_blasts)),
        ("properties_checked", Json::UInt(stats.properties_checked)),
        ("nodes_encoded", Json::UInt(stats.nodes_encoded)),
        ("queries", Json::UInt(stats.queries)),
        ("structurally_proved", Json::UInt(stats.structurally_proved)),
        ("epoch_rebinds", Json::UInt(stats.epoch_rebinds)),
        ("parallel_tasks", Json::UInt(stats.parallel_tasks)),
        ("tasks_skipped", Json::UInt(stats.tasks_skipped)),
        ("snapshot_forks", Json::UInt(stats.snapshot_forks)),
        (
            "snapshot_bytes_cloned",
            Json::UInt(stats.snapshot_bytes_cloned),
        ),
    ])
}

fn accumulate_solver(into: &mut SolverStats, add: &SolverStats) {
    // Exhaustive by construction: `SolverStats::accumulate` destructures
    // every counter, so new solver counters (e.g. the portfolio race
    // telemetry) can never silently go missing from the daemon totals.
    into.accumulate(add);
}

/// Settles subscriber `id`'s record exactly once: a record that already
/// reached a terminal state (settled by a watcher on detach, or by the
/// runner at job end — whichever got there first) is left untouched, so the
/// totals are bumped once per record.
fn settle_subscriber(
    state: &Arc<ServerState>,
    id: u64,
    final_state: JobState,
    wall_secs: Option<f64>,
    cache: Option<&'static str>,
) {
    {
        let mut jobs = lock_unpoisoned(&state.jobs);
        let Some(record) = jobs.records.iter_mut().find(|r| r.id == id) else {
            return;
        };
        if !record.state.is_active() {
            return;
        }
        record.state = final_state;
        record.wall_secs = wall_secs;
        record.cache = cache;
        // Bound the finished ring: drop the oldest finished records first.
        let finished = jobs.records.iter().filter(|r| !r.state.is_active()).count();
        if finished > FINISHED_RING {
            let mut to_drop = finished - FINISHED_RING;
            jobs.records.retain(|r| {
                if to_drop > 0 && !r.state.is_active() {
                    to_drop -= 1;
                    false
                } else {
                    true
                }
            });
        }
    }
    let mut totals = lock_unpoisoned(&state.totals);
    match final_state {
        JobState::Completed => totals.completed += 1,
        JobState::Cancelled => totals.cancelled += 1,
        JobState::Exhausted => totals.budget_exhausted += 1,
        _ => totals.failed += 1,
    }
}

fn accumulate_session(into: &mut SessionStats, add: &SessionStats) {
    // Exhaustive destructuring (no `..`): a counter added to SessionStats
    // that is not accumulated here must be a compile error, not a totals
    // row that silently stays zero.
    let SessionStats {
        bit_blasts,
        properties_checked,
        nodes_encoded,
        queries,
        structurally_proved,
        epoch_rebinds,
        parallel_tasks,
        tasks_skipped,
        snapshot_forks,
        snapshot_bytes_cloned,
    } = *add;
    into.bit_blasts += bit_blasts;
    into.properties_checked += properties_checked;
    into.nodes_encoded += nodes_encoded;
    into.queries += queries;
    into.structurally_proved += structurally_proved;
    into.epoch_rebinds += epoch_rebinds;
    into.parallel_tasks += parallel_tasks;
    into.tasks_skipped += tasks_skipped;
    into.snapshot_forks += snapshot_forks;
    into.snapshot_bytes_cloned += snapshot_bytes_cloned;
}

fn stats_json(state: &Arc<ServerState>) -> Json {
    let queue_depth = lock_unpoisoned(&state.queue).len();
    let jobs = lock_unpoisoned(&state.jobs);
    let running = jobs
        .records
        .iter()
        .filter(|r| r.state == JobState::Running)
        .count();
    let job_records: Vec<Json> = jobs
        .records
        .iter()
        .map(|r| {
            Json::obj([
                ("job", Json::UInt(r.id)),
                ("design", Json::str(r.design.clone())),
                ("state", Json::str(r.state.as_str())),
                ("wall_secs", r.wall_secs.map_or(Json::Null, Json::Num)),
                ("cache", r.cache.map_or(Json::Null, Json::str)),
            ])
        })
        .collect();
    drop(jobs);
    let cache = lock_unpoisoned(&state.cache).stats();
    let totals = lock_unpoisoned(&state.totals);
    Json::obj([
        ("max_jobs", Json::UInt(state.options.max_jobs.get() as u64)),
        ("workers", Json::UInt(state.options.workers.get() as u64)),
        ("queue_depth", Json::UInt(queue_depth as u64)),
        ("running", Json::UInt(running as u64)),
        (
            "draining",
            Json::Bool(state.draining.load(Ordering::SeqCst)),
        ),
        ("completed", Json::UInt(totals.completed)),
        ("cancelled", Json::UInt(totals.cancelled)),
        ("failed", Json::UInt(totals.failed)),
        ("budget_exhausted", Json::UInt(totals.budget_exhausted)),
        ("coalesced", Json::UInt(totals.coalesced)),
        (
            "cache",
            Json::obj([
                ("entries", Json::UInt(cache.entries as u64)),
                ("bytes", Json::UInt(cache.bytes)),
                ("capacity_bytes", Json::UInt(cache.capacity_bytes)),
                ("hits", Json::UInt(cache.hits)),
                ("misses", Json::UInt(cache.misses)),
                ("evicted_entries", Json::UInt(cache.evicted_entries)),
                ("evicted_bytes", Json::UInt(cache.evicted_bytes)),
            ]),
        ),
        ("solver_totals", solver_json(&totals.solver)),
        ("session_totals", session_json(&totals.session)),
        ("jobs", Json::Arr(job_records)),
    ])
}

fn handle_cancel(state: &Arc<ServerState>, stream: &mut TcpStream, raw_id: &str) {
    let Ok(id) = raw_id.parse::<u64>() else {
        let _ = http::write_error(
            stream,
            400,
            "Bad Request",
            "bad_request",
            &format!("job id must be an integer, got {raw_id:?}"),
        );
        return;
    };
    let jobs = lock_unpoisoned(&state.jobs);
    let Some(record) = jobs.records.iter().find(|r| r.id == id) else {
        drop(jobs);
        let _ = http::write_error(
            stream,
            404,
            "Not Found",
            "not_found",
            &format!("no such job: {id}"),
        );
        return;
    };
    let was_active = record.state.is_active();
    if was_active {
        record.cancel.store(true, Ordering::SeqCst);
    }
    let body = Json::obj([
        ("job", Json::UInt(id)),
        ("state", Json::str(record.state.as_str())),
        ("cancelled", Json::Bool(was_active)),
    ]);
    drop(jobs);
    let _ = http::write_json(stream, 200, "OK", &body);
}
