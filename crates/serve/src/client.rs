//! A blocking client for the service protocol, used by `htd submit` /
//! `htd cancel`-style tooling and the end-to-end tests.
//!
//! [`submit`] streams a netlist to a daemon and surfaces every NDJSON frame
//! through a callback as it arrives, returning the terminal report;
//! [`submit_with_options`] adds tenancy, per-job budgets and bounded retry
//! with deterministic jitter ([`RetryPolicy`]); [`stats`] and [`cancel`]
//! wrap the plain JSON endpoints.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::Json;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing or reading the socket failed.
    Io(String),
    /// The server's answer did not follow the protocol.
    Protocol(String),
    /// The server answered with its structured error schema (admission
    /// rejections, parse errors) or streamed a terminal `error` frame
    /// (cancellation, flow failures).
    Server {
        /// The machine-readable error code (`overloaded`, `cancelled`, ...).
        code: String,
        /// The human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(message) => write!(f, "connection failed: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// Retries apply only to *pre-acceptance* failures — a refused connection,
/// `503 overloaded`, `503 draining` — never to a job that was already
/// accepted (re-submitting a running job would start a second run once it
/// no longer coalesces).  The jitter is seeded, not sampled from a global
/// RNG, so a given policy always produces the same schedule: tests assert
/// on it, and two clients desynchronise simply by seeding differently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times to retry after the first attempt fails.
    pub retries: u32,
    /// Backoff base: attempt `i` sleeps `base * 2^i` plus jitter in
    /// `[0, base)`.
    pub base: Duration,
    /// Seed of the jitter sequence.
    pub seed: u64,
}

impl RetryPolicy {
    /// The full backoff schedule this policy will sleep through, one entry
    /// per retry.
    #[must_use]
    pub fn schedule(&self) -> Vec<Duration> {
        let mut state = self.seed | 1;
        let base_ms = u64::try_from(self.base.as_millis()).unwrap_or(u64::MAX);
        (0..self.retries)
            .map(|attempt| {
                // xorshift64: cheap, dependency-free, deterministic.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let backoff = self.base.saturating_mul(1u32 << attempt.min(16));
                let jitter_ms = if base_ms == 0 { 0 } else { state % base_ms };
                backoff.saturating_add(Duration::from_millis(jitter_ms))
            })
            .collect()
    }
}

/// Options for [`submit_with_options`]; the default submits exactly like
/// [`submit`] — no tenant header, unlimited budget, no retries.
#[derive(Clone, Debug, Default)]
pub struct SubmitOptions {
    /// Sent as the `X-HTD-Tenant` header for fair-share scheduling.
    pub tenant: Option<String>,
    /// Per-job wall-clock budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-job solver-conflict budget.
    pub conflict_ceiling: Option<u64>,
    /// Retry refused/overloaded/draining submissions on this schedule.
    pub retry: Option<RetryPolicy>,
}

/// The result of a successful [`submit`]: the job's identity and terminal
/// frames.
#[derive(Debug)]
pub struct Submission {
    /// The server-assigned job id.
    pub job: u64,
    /// The report text streamed in the terminal frame — byte-identical to
    /// `htd detect --normalize` output for the same netlist.
    pub report_text: String,
    /// The one-line summary (`<design>: SECURE`, ...).
    pub summary: String,
    /// The `stats` frame, when the server sent one (cache disposition,
    /// wall-clock, solver/session counters).
    pub stats: Option<Json>,
}

/// Submits a netlist to the daemon at `addr` and drains the NDJSON stream,
/// invoking `on_line` with every raw frame line as it arrives.
///
/// # Errors
///
/// [`ClientError::Server`] when the daemon rejects the submission or the job
/// ends in a terminal `error` frame; [`ClientError::Protocol`] when the
/// stream ends without a report; [`ClientError::Io`] on socket failures.
pub fn submit(
    addr: &str,
    netlist: &str,
    on_line: &mut dyn FnMut(&str),
) -> Result<Submission, ClientError> {
    submit_with_options(addr, netlist, &SubmitOptions::default(), on_line)
}

/// [`submit`] with tenancy, a per-job budget, and bounded retry.
///
/// With a [`RetryPolicy`], pre-acceptance failures (refused connection,
/// `503 overloaded`, `503 draining`) are retried on the policy's backoff
/// schedule; any failure after the job was accepted — including a terminal
/// `error` or `budget_exhausted` frame — is surfaced immediately.
///
/// # Errors
///
/// As [`submit`], after the retry schedule (if any) is exhausted.
pub fn submit_with_options(
    addr: &str,
    netlist: &str,
    options: &SubmitOptions,
    on_line: &mut dyn FnMut(&str),
) -> Result<Submission, ClientError> {
    let schedule = options.retry.map(|policy| policy.schedule());
    let mut delays = schedule.iter().flatten();
    loop {
        match submit_once(addr, netlist, options, on_line) {
            Ok(submission) => return Ok(submission),
            Err((error, accepted)) => {
                let retryable = !accepted && is_retryable(&error);
                match delays.next() {
                    Some(delay) if retryable => std::thread::sleep(*delay),
                    _ => return Err(error),
                }
            }
        }
    }
}

/// Whether a pre-acceptance failure is worth retrying: transient admission
/// pushback or a connection that never got through.
fn is_retryable(error: &ClientError) -> bool {
    match error {
        ClientError::Io(_) => true,
        ClientError::Server { code, .. } => code == "overloaded" || code == "draining",
        ClientError::Protocol(_) => false,
    }
}

/// One submission attempt; errors carry whether the job had already been
/// accepted (accepted jobs must not be retried).
fn submit_once(
    addr: &str,
    netlist: &str,
    options: &SubmitOptions,
    on_line: &mut dyn FnMut(&str),
) -> Result<Submission, (ClientError, bool)> {
    let mut fields = vec![("netlist", Json::str(netlist))];
    if options.deadline_ms.is_some() || options.conflict_ceiling.is_some() {
        let mut budget = Vec::new();
        if let Some(ms) = options.deadline_ms {
            budget.push(("deadline_ms", Json::UInt(ms)));
        }
        if let Some(ceiling) = options.conflict_ceiling {
            budget.push(("conflict_ceiling", Json::UInt(ceiling)));
        }
        fields.push(("budget", Json::obj(budget)));
    }
    let body = Json::obj(fields).to_string();
    let stream = request(
        addr,
        "POST",
        "/jobs",
        Some(&body),
        options.tenant.as_deref(),
    )
    .map_err(|e| (e, false))?;
    let mut reader = BufReader::new(stream);
    let (status, error_body) = read_status_and_headers(&mut reader).map_err(|e| (e, false))?;
    if status != 200 {
        return Err((server_error(status, &error_body, &mut reader), false));
    }

    let mut job = None;
    let mut stats = None;
    let mut line = String::new();
    // From here on the job was accepted: failures must not be retried.
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err((ClientError::Io(e.to_string()), true)),
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        on_line(trimmed);
        let frame = Json::parse(trimmed).map_err(|e| {
            (
                ClientError::Protocol(format!("bad frame {trimmed:?}: {e}")),
                true,
            )
        })?;
        match frame.get("event").and_then(Json::as_str) {
            Some("accepted") => job = frame.get("job").and_then(Json::as_u64),
            Some("stats") => stats = Some(frame),
            Some("report") => {
                let text = frame
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        (
                            ClientError::Protocol("report frame without `text`".to_owned()),
                            true,
                        )
                    })?
                    .to_owned();
                let summary = frame
                    .get("summary")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned();
                // Drain to EOF before returning: the server half-closes the
                // stream only after the job record reaches its terminal
                // state, so a caller's follow-up (an immediate `cancel` or
                // `stats`) observes a settled job, not a closing race.
                let mut rest = String::new();
                let _ = reader.read_to_string(&mut rest);
                return Ok(Submission {
                    job: job.unwrap_or(0),
                    report_text: text,
                    summary,
                    stats,
                });
            }
            Some("error") => {
                // Settle the job record before surfacing the failure, as on
                // the report path above.
                let mut rest = String::new();
                let _ = reader.read_to_string(&mut rest);
                return Err((
                    ClientError::Server {
                        code: frame
                            .get("code")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_owned(),
                        message: frame
                            .get("message")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_owned(),
                    },
                    true,
                ));
            }
            Some("budget_exhausted") => {
                // Terminal like `error`: the verdict is unknown; the frames
                // streamed so far are valid partial progress.
                let mut rest = String::new();
                let _ = reader.read_to_string(&mut rest);
                return Err((
                    ClientError::Server {
                        code: "budget_exhausted".to_owned(),
                        message: frame
                            .get("message")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_owned(),
                    },
                    true,
                ));
            }
            _ => {}
        }
    }
    Err((
        ClientError::Protocol("stream ended before a report or error frame".to_owned()),
        true,
    ))
}

/// Fetches the daemon's `GET /stats` document.
///
/// # Errors
///
/// [`ClientError`] on socket, protocol or server failures.
pub fn stats(addr: &str) -> Result<Json, ClientError> {
    plain_json(addr, "GET", "/stats")
}

/// Cancels a job via `DELETE /jobs/<id>`; returns the server's answer
/// (`{"job":...,"state":...,"cancelled":...}`).
///
/// # Errors
///
/// [`ClientError::Server`] with code `not_found` for unknown job ids, plus
/// the usual socket and protocol failures.
pub fn cancel(addr: &str, job: u64) -> Result<Json, ClientError> {
    plain_json(addr, "DELETE", &format!("/jobs/{job}"))
}

fn plain_json(addr: &str, method: &str, path: &str) -> Result<Json, ClientError> {
    let stream = request(addr, method, path, None, None)?;
    let mut reader = BufReader::new(stream);
    let (status, reason) = read_status_and_headers(&mut reader)?;
    if status != 200 {
        return Err(server_error(status, &reason, &mut reader));
    }
    let mut body = String::new();
    reader
        .read_to_string(&mut body)
        .map_err(|e| ClientError::Io(e.to_string()))?;
    Json::parse(body.trim()).map_err(|e| ClientError::Protocol(format!("bad response body: {e}")))
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    tenant: Option<&str>,
) -> Result<TcpStream, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
    let body = body.unwrap_or("");
    let tenant_header = tenant.map_or(String::new(), |t| format!("X-HTD-Tenant: {t}\r\n"));
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: htd\r\nContent-Type: application/json\r\n\
         {tenant_header}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| ClientError::Io(e.to_string()))?;
    stream.flush().map_err(|e| ClientError::Io(e.to_string()))?;
    Ok(stream)
}

/// Reads the status line and headers; returns the status code and reason.
fn read_status_and_headers(
    reader: &mut BufReader<TcpStream>,
) -> Result<(u16, String), ClientError> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| ClientError::Io(e.to_string()))?;
    let mut parts = line.trim_end().splitn(3, ' ');
    let (Some(version), Some(code), reason) = (parts.next(), parts.next(), parts.next()) else {
        return Err(ClientError::Protocol(format!("bad status line {line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::Protocol(format!("bad status line {line:?}")));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| ClientError::Protocol(format!("bad status code {code:?}")))?;
    let reason = reason.unwrap_or("").to_owned();
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header.trim_end().is_empty() => break,
            Ok(_) => {}
            Err(e) => return Err(ClientError::Io(e.to_string())),
        }
    }
    Ok((status, reason))
}

/// Builds a [`ClientError::Server`] from an error response body (falling
/// back to the HTTP reason phrase when the body is unusable).
fn server_error(status: u16, reason: &str, reader: &mut BufReader<TcpStream>) -> ClientError {
    let mut body = String::new();
    let _ = reader.read_to_string(&mut body);
    if let Ok(parsed) = Json::parse(body.trim()) {
        if let Some(error) = parsed.get("error") {
            return ClientError::Server {
                code: error
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
                message: error
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
            };
        }
    }
    ClientError::Server {
        code: format!("http_{status}"),
        message: reason.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_schedule_is_deterministic_for_a_seed() {
        let policy = RetryPolicy {
            retries: 4,
            base: Duration::from_millis(10),
            seed: 42,
        };
        assert_eq!(policy.schedule(), policy.schedule());
        // Not seed 43: the low bit is forced to 1, so 42 and 43 coincide.
        let other = RetryPolicy { seed: 99, ..policy };
        assert_ne!(policy.schedule(), other.schedule());
    }

    #[test]
    fn retry_schedule_backs_off_exponentially_with_bounded_jitter() {
        let base = Duration::from_millis(10);
        let policy = RetryPolicy {
            retries: 5,
            base,
            seed: 7,
        };
        let schedule = policy.schedule();
        assert_eq!(schedule.len(), 5);
        for (attempt, delay) in schedule.iter().enumerate() {
            let backoff = base * (1 << attempt);
            assert!(
                *delay >= backoff,
                "attempt {attempt}: {delay:?} < {backoff:?}"
            );
            assert!(
                *delay < backoff + base,
                "attempt {attempt}: jitter exceeds base: {delay:?}"
            );
        }
    }

    #[test]
    fn zero_retries_produce_an_empty_schedule() {
        let policy = RetryPolicy {
            retries: 0,
            base: Duration::from_millis(10),
            seed: 1,
        };
        assert!(policy.schedule().is_empty());
    }

    #[test]
    fn only_pre_acceptance_pushback_is_retryable() {
        assert!(is_retryable(&ClientError::Io("refused".into())));
        for code in ["overloaded", "draining"] {
            assert!(is_retryable(&ClientError::Server {
                code: code.into(),
                message: String::new(),
            }));
        }
        for code in ["budget_exhausted", "cancelled", "bad_request", "internal"] {
            assert!(!is_retryable(&ClientError::Server {
                code: code.into(),
                message: String::new(),
            }));
        }
        assert!(!is_retryable(&ClientError::Protocol("bad frame".into())));
    }
}
