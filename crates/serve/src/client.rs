//! A blocking client for the service protocol, used by `htd submit` /
//! `htd cancel`-style tooling and the end-to-end tests.
//!
//! [`submit`] streams a netlist to a daemon and surfaces every NDJSON frame
//! through a callback as it arrives, returning the terminal report; [`stats`]
//! and [`cancel`] wrap the plain JSON endpoints.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::json::Json;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing or reading the socket failed.
    Io(String),
    /// The server's answer did not follow the protocol.
    Protocol(String),
    /// The server answered with its structured error schema (admission
    /// rejections, parse errors) or streamed a terminal `error` frame
    /// (cancellation, flow failures).
    Server {
        /// The machine-readable error code (`overloaded`, `cancelled`, ...).
        code: String,
        /// The human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(message) => write!(f, "connection failed: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// The result of a successful [`submit`]: the job's identity and terminal
/// frames.
#[derive(Debug)]
pub struct Submission {
    /// The server-assigned job id.
    pub job: u64,
    /// The report text streamed in the terminal frame — byte-identical to
    /// `htd detect --normalize` output for the same netlist.
    pub report_text: String,
    /// The one-line summary (`<design>: SECURE`, ...).
    pub summary: String,
    /// The `stats` frame, when the server sent one (cache disposition,
    /// wall-clock, solver/session counters).
    pub stats: Option<Json>,
}

/// Submits a netlist to the daemon at `addr` and drains the NDJSON stream,
/// invoking `on_line` with every raw frame line as it arrives.
///
/// # Errors
///
/// [`ClientError::Server`] when the daemon rejects the submission or the job
/// ends in a terminal `error` frame; [`ClientError::Protocol`] when the
/// stream ends without a report; [`ClientError::Io`] on socket failures.
pub fn submit(
    addr: &str,
    netlist: &str,
    on_line: &mut dyn FnMut(&str),
) -> Result<Submission, ClientError> {
    let body = Json::obj([("netlist", Json::str(netlist))]).to_string();
    let stream = request(addr, "POST", "/jobs", Some(&body))?;
    let mut reader = BufReader::new(stream);
    let (status, error_body) = read_status_and_headers(&mut reader)?;
    if status != 200 {
        return Err(server_error(status, &error_body, &mut reader));
    }

    let mut job = None;
    let mut stats = None;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(ClientError::Io(e.to_string())),
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        on_line(trimmed);
        let frame = Json::parse(trimmed)
            .map_err(|e| ClientError::Protocol(format!("bad frame {trimmed:?}: {e}")))?;
        match frame.get("event").and_then(Json::as_str) {
            Some("accepted") => job = frame.get("job").and_then(Json::as_u64),
            Some("stats") => stats = Some(frame),
            Some("report") => {
                let text = frame
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ClientError::Protocol("report frame without `text`".to_owned()))?
                    .to_owned();
                let summary = frame
                    .get("summary")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned();
                // Drain to EOF before returning: the server half-closes the
                // stream only after the job record reaches its terminal
                // state, so a caller's follow-up (an immediate `cancel` or
                // `stats`) observes a settled job, not a closing race.
                let mut rest = String::new();
                let _ = reader.read_to_string(&mut rest);
                return Ok(Submission {
                    job: job.unwrap_or(0),
                    report_text: text,
                    summary,
                    stats,
                });
            }
            Some("error") => {
                // Settle the job record before surfacing the failure, as on
                // the report path above.
                let mut rest = String::new();
                let _ = reader.read_to_string(&mut rest);
                return Err(ClientError::Server {
                    code: frame
                        .get("code")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_owned(),
                    message: frame
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_owned(),
                });
            }
            _ => {}
        }
    }
    Err(ClientError::Protocol(
        "stream ended before a report or error frame".to_owned(),
    ))
}

/// Fetches the daemon's `GET /stats` document.
///
/// # Errors
///
/// [`ClientError`] on socket, protocol or server failures.
pub fn stats(addr: &str) -> Result<Json, ClientError> {
    plain_json(addr, "GET", "/stats")
}

/// Cancels a job via `DELETE /jobs/<id>`; returns the server's answer
/// (`{"job":...,"state":...,"cancelled":...}`).
///
/// # Errors
///
/// [`ClientError::Server`] with code `not_found` for unknown job ids, plus
/// the usual socket and protocol failures.
pub fn cancel(addr: &str, job: u64) -> Result<Json, ClientError> {
    plain_json(addr, "DELETE", &format!("/jobs/{job}"))
}

fn plain_json(addr: &str, method: &str, path: &str) -> Result<Json, ClientError> {
    let stream = request(addr, method, path, None)?;
    let mut reader = BufReader::new(stream);
    let (status, reason) = read_status_and_headers(&mut reader)?;
    if status != 200 {
        return Err(server_error(status, &reason, &mut reader));
    }
    let mut body = String::new();
    reader
        .read_to_string(&mut body)
        .map_err(|e| ClientError::Io(e.to_string()))?;
    Json::parse(body.trim()).map_err(|e| ClientError::Protocol(format!("bad response body: {e}")))
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<TcpStream, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: htd\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| ClientError::Io(e.to_string()))?;
    stream.flush().map_err(|e| ClientError::Io(e.to_string()))?;
    Ok(stream)
}

/// Reads the status line and headers; returns the status code and reason.
fn read_status_and_headers(
    reader: &mut BufReader<TcpStream>,
) -> Result<(u16, String), ClientError> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| ClientError::Io(e.to_string()))?;
    let mut parts = line.trim_end().splitn(3, ' ');
    let (Some(version), Some(code), reason) = (parts.next(), parts.next(), parts.next()) else {
        return Err(ClientError::Protocol(format!("bad status line {line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::Protocol(format!("bad status line {line:?}")));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| ClientError::Protocol(format!("bad status code {code:?}")))?;
    let reason = reason.unwrap_or("").to_owned();
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header.trim_end().is_empty() => break,
            Ok(_) => {}
            Err(e) => return Err(ClientError::Io(e.to_string())),
        }
    }
    Ok((status, reason))
}

/// Builds a [`ClientError::Server`] from an error response body (falling
/// back to the HTTP reason phrase when the body is unusable).
fn server_error(status: u16, reason: &str, reader: &mut BufReader<TcpStream>) -> ClientError {
    let mut body = String::new();
    let _ = reader.read_to_string(&mut body);
    if let Ok(parsed) = Json::parse(body.trim()) {
        if let Some(error) = parsed.get("error") {
            return ClientError::Server {
                code: error
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
                message: error
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
            };
        }
    }
    ClientError::Server {
        code: format!("http_{status}"),
        message: reason.to_owned(),
    }
}
