//! A deficit-round-robin fair queue for job admission.
//!
//! The daemon's original FIFO queue let one chatty tenant monopolise the
//! runner pool: submit ten jobs back-to-back and everyone else's single job
//! waits behind all ten.  [`FairQueue`] replaces it with per-tenant
//! sub-queues served deficit-round-robin (DRR): each visit grants a tenant
//! `quantum` bytes of *deficit*, and the tenant's head job is dispatched
//! once its cost (the netlist dump length) fits inside the accumulated
//! deficit.  Tenants with small designs therefore interleave fairly with a
//! tenant submitting large ones, and a tenant's own jobs still run in
//! submission order.
//!
//! The queue is agnostic to what a tenant *is* — the server keys it by the
//! `X-HTD-Tenant` request header, falling back to the peer IP address.
//! A tenant's deficit is deliberately forgotten when its sub-queue drains:
//! fairness is about *waiting* work, and banking credit while idle would let
//! a tenant burst past everyone later.

use std::collections::VecDeque;

/// A multi-tenant queue served deficit-round-robin.
///
/// Generic over the queued item so the scheduling policy is unit-testable
/// without dragging sockets and job records in.
#[derive(Debug)]
pub struct FairQueue<T> {
    tenants: Vec<TenantQueue<T>>,
    /// Index of the next tenant the DRR scan visits.
    cursor: usize,
    /// Deficit granted per visit, in the same unit as item costs.
    quantum: u64,
    len: usize,
}

#[derive(Debug)]
struct TenantQueue<T> {
    name: String,
    deficit: u64,
    items: VecDeque<(u64, T)>,
}

impl<T> FairQueue<T> {
    /// Creates an empty queue granting `quantum` cost units per DRR visit.
    #[must_use]
    pub fn new(quantum: u64) -> FairQueue<T> {
        FairQueue {
            tenants: Vec::new(),
            cursor: 0,
            quantum: quantum.max(1),
            len: 0,
        }
    }

    /// Appends an item with the given `cost` to `tenant`'s sub-queue.
    pub fn push(&mut self, tenant: &str, cost: u64, item: T) {
        self.len += 1;
        if let Some(queue) = self.tenants.iter_mut().find(|t| t.name == tenant) {
            queue.items.push_back((cost, item));
            return;
        }
        self.tenants.push(TenantQueue {
            name: tenant.to_owned(),
            deficit: 0,
            items: VecDeque::from([(cost, item)]),
        });
    }

    /// Pops the next item under the DRR policy, or `None` when empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        // Terminates: every iteration either serves an item or grows some
        // tenant's deficit by a positive quantum, and all costs are finite.
        loop {
            if self.cursor >= self.tenants.len() {
                self.cursor = 0;
            }
            let tenant = &mut self.tenants[self.cursor];
            // Tenant sub-queues are never left empty (an emptied tenant is
            // removed below); should that invariant ever break, dropping the
            // empty tenant and continuing degrades fairness for one round
            // instead of panicking a request worker.
            let Some(head_cost) = tenant.items.front().map(|(cost, _)| *cost) else {
                self.tenants.remove(self.cursor);
                if self.tenants.is_empty() {
                    return None;
                }
                continue;
            };
            if tenant.deficit >= head_cost {
                let Some((_, item)) = tenant.items.pop_front() else {
                    // Unreachable: `head_cost` above proved a front exists.
                    continue;
                };
                tenant.deficit -= head_cost;
                self.len -= 1;
                if tenant.items.is_empty() {
                    // Dropping the tenant resets its deficit: credit does
                    // not accumulate while it has nothing waiting.
                    self.tenants.remove(self.cursor);
                }
                return Some(item);
            }
            tenant.deficit += self.quantum;
            self.cursor += 1;
        }
    }

    /// Queued items across every tenant.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tenant_is_fifo() {
        let mut q = FairQueue::new(10);
        q.push("a", 5, 1);
        q.push("a", 50, 2);
        q.push("a", 5, 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn tenants_interleave_instead_of_draining_in_arrival_order() {
        let mut q = FairQueue::new(10);
        // Tenant a floods first; b's single job must not wait behind all
        // of a's.
        for i in 0..4 {
            q.push("a", 10, ("a", i));
        }
        q.push("b", 10, ("b", 0));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let b_pos = order.iter().position(|&(t, _)| t == "b").unwrap();
        assert!(
            b_pos <= 1,
            "tenant b served at position {b_pos}, after the flood: {order:?}"
        );
        // Within a tenant, submission order holds.
        let a_jobs: Vec<_> = order.iter().filter(|&&(t, _)| t == "a").collect();
        assert_eq!(a_jobs, [&("a", 0), &("a", 1), &("a", 2), &("a", 3)]);
    }

    #[test]
    fn expensive_jobs_wait_for_deficit_to_accrue() {
        let mut q = FairQueue::new(10);
        // a's head costs 3 quanta; b's cheap jobs flow while a accrues.
        q.push("a", 30, "a-big");
        q.push("b", 10, "b-1");
        q.push("b", 10, "b-2");
        assert_eq!(q.pop(), Some("b-1"));
        assert_eq!(q.pop(), Some("b-2"));
        assert_eq!(q.pop(), Some("a-big"));
    }

    #[test]
    fn idle_tenants_do_not_bank_credit() {
        let mut q = FairQueue::new(10);
        q.push("a", 10, "a-1");
        assert_eq!(q.pop(), Some("a-1"));
        // a drained; its deficit is gone.  On return it competes from zero.
        q.push("b", 10, "b-1");
        q.push("a", 30, "a-big");
        assert_eq!(q.pop(), Some("b-1"));
        assert_eq!(q.pop(), Some("a-big"));
    }

    #[test]
    fn zero_quantum_is_clamped_and_still_serves() {
        let mut q = FairQueue::new(0);
        q.push("a", 1000, "a");
        assert_eq!(q.pop(), Some("a"));
    }
}
