//! # htd-serve
//!
//! A multi-tenant detection service for the golden-free Trojan-detection
//! flow: a long-lived daemon that accepts netlists over HTTP/1.1, runs each
//! through the full Algorithm-1 flow, and streams progress back as
//! newline-delimited JSON.  Many concurrent jobs multiplex over **one**
//! shared [`SharedSolvePool`](htd_core::SharedSolvePool), and returning
//! designs skip the bit-blast entirely through a content-hash-keyed cache of
//! frozen master encodings, collision-checked against the canonical netlist
//! dump so one tenant can never be served another's design (see [`cache`]).
//!
//! Everything is dependency-free: the HTTP layer is hand-rolled over
//! [`std::net::TcpListener`] ([`http`]), the JSON layer over a small value
//! type ([`json`]).
//!
//! # Wire protocol
//!
//! All endpoints speak HTTP/1.1 with `Connection: close`; there is no
//! keep-alive and no chunked encoding.  Non-streaming responses carry a
//! `Content-Length`-framed JSON body; failures use one structured schema:
//!
//! ```text
//! {"error":{"code":"<machine-readable>","message":"<human-readable>"}}
//! ```
//!
//! with codes `bad_request` (400), `oversized` (413), `not_found` (404),
//! `method_not_allowed` (405) and `overloaded` (503).
//!
//! ## `POST /jobs` — submit a detection job
//!
//! Request body: `{"netlist":"<canonical netlist text>"}` (the textual
//! format of [`htd_rtl::netlist`]; produce it with `htd export`).  The
//! design is parsed and validated during admission, so parse errors answer
//! with `400` before a job id is allocated; when `queued + running` jobs
//! would exceed the admission bound the answer is `503 overloaded`.
//!
//! Accepted submissions answer `200` with `Content-Type:
//! application/x-ndjson` and an EOF-terminated stream of one JSON frame per
//! line, every frame tagged with `"event"` and `"job"`:
//!
//! | frame | meaning |
//! |---|---|
//! | `accepted` | job id, design name, queue depth at admission |
//! | `level_started` | a fanout level began (signals, flow-graph node, deps) |
//! | `property_proved` | per-property verdict with solver counters |
//! | `counterexample` | a (possibly spurious) divergence with diff signals |
//! | `resolution_round` | a spurious counterexample being discharged |
//! | `coverage` | the final signal-coverage check |
//! | `stats` | terminal: cache disposition (`"hit"`/`"miss"`/`"off"`), wall seconds, aggregate solver/session counters |
//! | `report` | terminal: one-line `summary` plus the full report `text` |
//! | `error` | terminal: the job failed or was cancelled (`code`, `message`) |
//!
//! The `report.text` field is the
//! [`DetectionReport::normalized`](htd_core::DetectionReport::normalized)
//! [`Display`](std::fmt::Display) rendering plus a trailing newline —
//! **byte-identical** to `htd detect --normalize` run locally on the same
//! netlist.  Reports are deterministic up to wall-clock time for any worker
//! count and any interleaving of concurrent jobs, so the diff holds whether
//! the job hit the snapshot cache, missed it, or ran with caching disabled.
//!
//! Disconnecting the submitting client cancels its job: the server watches
//! the connection and flips the job's cancel flag, which the flow honours
//! between solve tasks ([`DetectError::Cancelled`](htd_core::DetectError)).
//!
//! ## `DELETE /jobs/<id>` — cancel a job
//!
//! Answers `{"job":<id>,"state":"<state>","cancelled":<bool>}`; `cancelled`
//! is `true` when the job was still queued or running.  Unknown ids answer
//! `404 not_found`.
//!
//! ## `GET /stats` — service observability
//!
//! One JSON document: the admission bound and pool width, current queue
//! depth and running count, completed/cancelled/failed totals, snapshot
//! cache counters (`entries`, `bytes`, `capacity_bytes`, `hits`, `misses`,
//! `evicted_entries`, `evicted_bytes`), aggregate `solver_totals` /
//! `session_totals` under their schema-v4 benchmark field names, and a
//! bounded ring of recent per-job records (id, design, state, wall seconds,
//! cache disposition).
//!
//! # Environment
//!
//! Mirroring the strict `HTD_JOBS` / `HTD_GC_*` style, a malformed value is
//! a loud error, never a silent default:
//!
//! * [`HTD_SERVE_ADDR`](ADDR_ENV_VAR) — listen address
//!   (default `127.0.0.1:7171`); must parse as a socket address.
//! * [`HTD_SERVE_MAX_JOBS`](MAX_JOBS_ENV_VAR) — admission bound
//!   (default 8); must be a positive integer.
//! * [`HTD_SERVE_CACHE_BYTES`](CACHE_BYTES_ENV_VAR) — snapshot-cache byte
//!   budget (default 256 MiB); a non-negative integer, `0` disables caching.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod server;

use std::net::SocketAddr;
use std::num::NonZeroUsize;

pub use cache::{CacheStats, FrozenMaster, SnapshotCache};
pub use client::{ClientError, Submission};
pub use json::Json;
pub use server::{ServeOptions, Server};

/// Environment variable naming the daemon's listen address.
pub const ADDR_ENV_VAR: &str = "HTD_SERVE_ADDR";

/// Environment variable bounding admitted (queued plus running) jobs.
pub const MAX_JOBS_ENV_VAR: &str = "HTD_SERVE_MAX_JOBS";

/// Environment variable budgeting the snapshot cache, in bytes.
pub const CACHE_BYTES_ENV_VAR: &str = "HTD_SERVE_CACHE_BYTES";

/// The listen address used when [`ADDR_ENV_VAR`] is unset.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7171";

/// The admission bound used when [`MAX_JOBS_ENV_VAR`] is unset.
pub const DEFAULT_MAX_JOBS: usize = 8;

/// The cache budget used when [`CACHE_BYTES_ENV_VAR`] is unset (256 MiB).
pub const DEFAULT_CACHE_BYTES: u64 = 256 * 1024 * 1024;

/// The default listen address: [`ADDR_ENV_VAR`] or [`DEFAULT_ADDR`].
///
/// # Errors
///
/// When the variable is set but does not parse as a socket address — never
/// a silent fallback, matching the strict `HTD_JOBS` / `HTD_GC_*` style.
pub fn try_default_addr() -> Result<String, String> {
    let Ok(value) = std::env::var(ADDR_ENV_VAR) else {
        return Ok(DEFAULT_ADDR.to_owned());
    };
    let trimmed = value.trim();
    trimmed.parse::<SocketAddr>().map_err(|_| {
        format!(
            "{ADDR_ENV_VAR}={value:?} is not a socket address \
             (e.g. {ADDR_ENV_VAR}=127.0.0.1:7171); unset it for the default of {DEFAULT_ADDR}"
        )
    })?;
    Ok(trimmed.to_owned())
}

/// [`try_default_addr`], panicking on a malformed [`ADDR_ENV_VAR`].
///
/// # Panics
///
/// If the variable is set to anything but a socket address.
#[must_use]
pub fn default_addr() -> String {
    try_default_addr().unwrap_or_else(|message| panic!("{message}"))
}

/// The default admission bound: [`MAX_JOBS_ENV_VAR`] or
/// [`DEFAULT_MAX_JOBS`].
///
/// # Errors
///
/// When the variable is set but is not a positive integer.
pub fn try_default_max_jobs() -> Result<NonZeroUsize, String> {
    let Ok(value) = std::env::var(MAX_JOBS_ENV_VAR) else {
        return Ok(NonZeroUsize::new(DEFAULT_MAX_JOBS).expect("default bound is positive"));
    };
    value.trim().parse::<NonZeroUsize>().map_err(|_| {
        format!(
            "{MAX_JOBS_ENV_VAR}={value:?} is not a positive integer job bound \
             (e.g. {MAX_JOBS_ENV_VAR}=8); unset it for the default of {DEFAULT_MAX_JOBS}"
        )
    })
}

/// [`try_default_max_jobs`], panicking on a malformed [`MAX_JOBS_ENV_VAR`].
///
/// # Panics
///
/// If the variable is set to anything but a positive integer.
#[must_use]
pub fn default_max_jobs() -> NonZeroUsize {
    try_default_max_jobs().unwrap_or_else(|message| panic!("{message}"))
}

/// The default cache budget: [`CACHE_BYTES_ENV_VAR`] or
/// [`DEFAULT_CACHE_BYTES`].  Zero disables caching.
///
/// # Errors
///
/// When the variable is set but is not a non-negative integer.
pub fn try_default_cache_bytes() -> Result<u64, String> {
    let Ok(value) = std::env::var(CACHE_BYTES_ENV_VAR) else {
        return Ok(DEFAULT_CACHE_BYTES);
    };
    value.trim().parse::<u64>().map_err(|_| {
        format!(
            "{CACHE_BYTES_ENV_VAR}={value:?} is not a byte count \
             (e.g. {CACHE_BYTES_ENV_VAR}=268435456, or 0 to disable caching); \
             unset it for the default of {DEFAULT_CACHE_BYTES}"
        )
    })
}

/// [`try_default_cache_bytes`], panicking on a malformed
/// [`CACHE_BYTES_ENV_VAR`].
///
/// # Panics
///
/// If the variable is set to anything but a non-negative integer.
#[must_use]
pub fn default_cache_bytes() -> u64 {
    try_default_cache_bytes().unwrap_or_else(|message| panic!("{message}"))
}
