//! # htd-serve
//!
//! A multi-tenant detection service for the golden-free Trojan-detection
//! flow: a long-lived daemon that accepts netlists over HTTP/1.1, runs each
//! through the full Algorithm-1 flow, and streams progress back as
//! newline-delimited JSON.  Many concurrent jobs multiplex over **one**
//! shared [`SharedSolvePool`](htd_core::SharedSolvePool), and returning
//! designs skip the bit-blast entirely through a content-hash-keyed cache of
//! frozen master encodings, collision-checked against the canonical netlist
//! dump so one tenant can never be served another's design (see [`cache`]).
//!
//! Everything is dependency-free: the HTTP layer is hand-rolled over
//! [`std::net::TcpListener`] ([`http`]), the JSON layer over a small value
//! type ([`json`]).
//!
//! # Wire protocol
//!
//! All endpoints speak HTTP/1.1 with `Connection: close`; there is no
//! keep-alive and no chunked encoding.  Non-streaming responses carry a
//! `Content-Length`-framed JSON body; failures use one structured schema:
//!
//! ```text
//! {"error":{"code":"<machine-readable>","message":"<human-readable>"}}
//! ```
//!
//! with codes `bad_request` (400), `oversized` (413), `not_found` (404),
//! `method_not_allowed` (405), `timeout` (408, the request headers did not
//! arrive within the header read timeout — the slow-loris guard),
//! `overloaded` (503) and `draining` (503, the daemon is shutting down and
//! admits no new work).
//!
//! ## `POST /jobs` — submit a detection job
//!
//! Request body: `{"netlist":"<canonical netlist text>"}` (the textual
//! format of [`htd_rtl::netlist`]; produce it with `htd export`), plus an
//! optional per-job resource budget:
//!
//! ```text
//! {"netlist":"...","budget":{"deadline_ms":60000,"conflict_ceiling":1000000}}
//! ```
//!
//! Both budget fields are optional non-negative integers.  The effective
//! budget is the *tighter* of the request's and the server's configured cap
//! (a client cannot ask for more than the operator allows).  Conflict
//! ceilings are enforced by the builtin solver; deadlines are enforced for
//! every backend.
//!
//! The design is parsed and validated during admission, so parse errors
//! answer with `400` before a job id is allocated; when `queued + running`
//! jobs would exceed the admission bound the answer is `503 overloaded`,
//! and while the daemon drains every submission answers `503 draining`.
//!
//! **Tenancy and fair share.**  Submissions may carry an `X-HTD-Tenant`
//! header; jobs queue per tenant (falling back to the peer IP address) and
//! runners pick them deficit-round-robin weighted by netlist size
//! ([`queue`]), so one flooding tenant cannot starve the others.
//!
//! **Coalescing.**  A submission whose netlist is byte-identical to one
//! already queued or running *attaches* to that job instead of running it
//! again: the `accepted` frame carries `coalesced_into` naming the leader
//! job, all subsequent frames are fanned out to every attached subscriber
//! (tagged with the leader's job id), and each subscriber receives the
//! byte-identical terminal report.  Identity uses the same content-hash +
//! byte-verified-dump discipline as the snapshot cache, so a hash collision
//! can never attach one tenant to another tenant's design.  Detaching
//! (disconnect or `DELETE`) affects only that subscriber; the underlying
//! run is cancelled once no subscribers remain.
//!
//! Accepted submissions answer `200` with `Content-Type:
//! application/x-ndjson` and an EOF-terminated stream of one JSON frame per
//! line, every frame tagged with `"event"` and `"job"`:
//!
//! | frame | meaning |
//! |---|---|
//! | `accepted` | job id, design name, queue depth at admission |
//! | `level_started` | a fanout level began (signals, flow-graph node, deps) |
//! | `property_proved` | per-property verdict with solver counters |
//! | `counterexample` | a (possibly spurious) divergence with diff signals |
//! | `resolution_round` | a spurious counterexample being discharged |
//! | `coverage` | the final signal-coverage check |
//! | `stats` | terminal: cache disposition (`"hit"`/`"miss"`/`"off"`), wall seconds, aggregate solver/session counters |
//! | `report` | terminal: one-line `summary` plus the full report `text` |
//! | `error` | terminal: the job failed or was cancelled (`code`, `message`) |
//! | `budget_exhausted` | terminal: the job's solve budget ran out (`reason` is `"deadline"` or `"conflicts"`, plus `conflicts` charged); the event log streamed so far is valid partial progress |
//!
//! The `error` frame's `code` is `cancelled` for client-driven
//! cancellation, `rejected`/`flow_error` for flow failures, and `internal`
//! when the flow panicked — panic isolation fails *that job* and the
//! runner pool keeps serving.
//!
//! The `report.text` field is the
//! [`DetectionReport::normalized`](htd_core::DetectionReport::normalized)
//! [`Display`](std::fmt::Display) rendering plus a trailing newline —
//! **byte-identical** to `htd detect --normalize` run locally on the same
//! netlist.  Reports are deterministic up to wall-clock time for any worker
//! count and any interleaving of concurrent jobs, so the diff holds whether
//! the job hit the snapshot cache, missed it, or ran with caching disabled.
//!
//! Disconnecting the submitting client cancels its job: the server watches
//! the connection and flips the job's cancel flag, which the flow honours
//! between solve tasks ([`DetectError::Cancelled`](htd_core::DetectError)).
//!
//! ## `DELETE /jobs/<id>` — cancel a job
//!
//! Answers `{"job":<id>,"state":"<state>","cancelled":<bool>}`; `cancelled`
//! is `true` when the job was still queued or running.  Unknown ids answer
//! `404 not_found`.  For a coalesced job the id names one subscriber:
//! cancelling it detaches that subscriber only.
//!
//! ## `POST /admin/drain` — graceful shutdown
//!
//! Starts a drain: admission stops (`503 draining`), running and queued
//! jobs are given the drain deadline to finish, stragglers are then
//! cancelled, and finally the daemon exits its accept loop so
//! [`Server::join`] returns.  Answers `{"draining":true,"active":<n>}`.
//! The CLI wires `SIGTERM` to the same path.
//!
//! ## `GET /stats` — service observability
//!
//! One JSON document: the admission bound and pool width, current queue
//! depth and running count, whether the daemon is `draining`,
//! completed/cancelled/failed/`budget_exhausted`/`coalesced` totals,
//! snapshot cache counters (`entries`, `bytes`, `capacity_bytes`, `hits`,
//! `misses`, `evicted_entries`, `evicted_bytes`), aggregate
//! `solver_totals` / `session_totals` under their schema-v4 benchmark
//! field names, and a bounded ring of recent per-job records (id, design,
//! state, wall seconds, cache disposition — `"coalesced"` for attached
//! subscribers).  Job states: `queued`, `running`, `completed`,
//! `cancelled`, `failed`, `budget_exhausted`.
//!
//! `solver_totals` also carries the portfolio-race counters
//! (`race_solves`, `race_wins`, `race_cancels`, `race_wasted_conflicts`,
//! `race_cancel_latency_us`): when the daemon's backend is a racing
//! portfolio (the `HTD_PORTFOLIO` environment default applies to the
//! serve tier like any other session), these report how many solve tasks
//! raced, how many were decided by a racer rather than the primary
//! member, and what the cancelled losers cost.  All five are zero for
//! single backends, so existing consumers see only additive fields.
//!
//! # Environment
//!
//! Mirroring the strict `HTD_JOBS` / `HTD_GC_*` style, a malformed value is
//! a loud error, never a silent default:
//!
//! * [`HTD_SERVE_ADDR`](ADDR_ENV_VAR) — listen address
//!   (default `127.0.0.1:7171`); must parse as a socket address.
//! * [`HTD_SERVE_MAX_JOBS`](MAX_JOBS_ENV_VAR) — admission bound
//!   (default 8); must be a positive integer.
//! * [`HTD_SERVE_CACHE_BYTES`](CACHE_BYTES_ENV_VAR) — snapshot-cache byte
//!   budget (default 256 MiB); a non-negative integer, `0` disables caching.
//! * [`HTD_SERVE_BUDGET_DEADLINE_MS`](BUDGET_DEADLINE_ENV_VAR) — per-job
//!   wall-clock budget cap in milliseconds (default unlimited); a positive
//!   integer.
//! * [`HTD_SERVE_BUDGET_CONFLICTS`](BUDGET_CONFLICTS_ENV_VAR) — per-job
//!   solver-conflict budget cap (default unlimited); a positive integer.
//! * [`HTD_SERVE_DRAIN_DEADLINE_MS`](DRAIN_DEADLINE_ENV_VAR) — how long a
//!   drain waits for in-flight jobs before cancelling them (default 30 s);
//!   a positive integer.
//! * [`HTD_PORTFOLIO`](htd_core::PORTFOLIO_ENV_VAR) — race every served
//!   solve across a portfolio of backends (same syntax as
//!   `--backend portfolio:…`); the members must support snapshot-forking,
//!   and `Server::start` refuses a non-forkable choice.
//! * [`HTD_SERVE_HEADER_TIMEOUT_MS`](HEADER_TIMEOUT_ENV_VAR) — per-read
//!   timeout while parsing request headers, the slow-loris guard (default
//!   5 s); a positive integer.
//! * [`HTD_SERVE_FAULT`](FAULT_ENV_VAR) — test-only fault injection
//!   ([`fault`]); release builds without the `fault-injection` feature
//!   refuse to start when it is set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod fault;
pub mod http;
pub mod json;
pub mod queue;
pub mod server;

use std::net::SocketAddr;
use std::num::NonZeroUsize;
use std::time::Duration;

pub use cache::{CacheStats, FrozenMaster, SnapshotCache};
pub use client::{ClientError, RetryPolicy, Submission, SubmitOptions};
pub use fault::FaultSpec;
pub use json::Json;
pub use queue::FairQueue;
pub use server::{DrainHandle, ServeOptions, Server};

/// Environment variable naming the daemon's listen address.
pub const ADDR_ENV_VAR: &str = "HTD_SERVE_ADDR";

/// Environment variable bounding admitted (queued plus running) jobs.
pub const MAX_JOBS_ENV_VAR: &str = "HTD_SERVE_MAX_JOBS";

/// Environment variable budgeting the snapshot cache, in bytes.
pub const CACHE_BYTES_ENV_VAR: &str = "HTD_SERVE_CACHE_BYTES";

/// Environment variable capping per-job wall-clock budgets, in milliseconds.
pub const BUDGET_DEADLINE_ENV_VAR: &str = "HTD_SERVE_BUDGET_DEADLINE_MS";

/// Environment variable capping per-job solver-conflict budgets.
pub const BUDGET_CONFLICTS_ENV_VAR: &str = "HTD_SERVE_BUDGET_CONFLICTS";

/// Environment variable setting the drain deadline, in milliseconds.
pub const DRAIN_DEADLINE_ENV_VAR: &str = "HTD_SERVE_DRAIN_DEADLINE_MS";

/// Environment variable setting the header read timeout, in milliseconds.
pub const HEADER_TIMEOUT_ENV_VAR: &str = "HTD_SERVE_HEADER_TIMEOUT_MS";

/// Environment variable naming an injected fault (test builds only; see
/// [`fault`]).
pub const FAULT_ENV_VAR: &str = "HTD_SERVE_FAULT";

/// The listen address used when [`ADDR_ENV_VAR`] is unset.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7171";

/// The admission bound used when [`MAX_JOBS_ENV_VAR`] is unset.
pub const DEFAULT_MAX_JOBS: usize = 8;

/// The cache budget used when [`CACHE_BYTES_ENV_VAR`] is unset (256 MiB).
pub const DEFAULT_CACHE_BYTES: u64 = 256 * 1024 * 1024;

/// The drain deadline used when [`DRAIN_DEADLINE_ENV_VAR`] is unset.
pub const DEFAULT_DRAIN_DEADLINE: Duration = Duration::from_secs(30);

/// The header read timeout used when [`HEADER_TIMEOUT_ENV_VAR`] is unset.
pub const DEFAULT_HEADER_TIMEOUT: Duration = Duration::from_secs(5);

/// The default listen address: [`ADDR_ENV_VAR`] or [`DEFAULT_ADDR`].
///
/// # Errors
///
/// When the variable is set but does not parse as a socket address — never
/// a silent fallback, matching the strict `HTD_JOBS` / `HTD_GC_*` style.
pub fn try_default_addr() -> Result<String, String> {
    let Ok(value) = std::env::var(ADDR_ENV_VAR) else {
        return Ok(DEFAULT_ADDR.to_owned());
    };
    let trimmed = value.trim();
    trimmed.parse::<SocketAddr>().map_err(|_| {
        format!(
            "{ADDR_ENV_VAR}={value:?} is not a socket address \
             (e.g. {ADDR_ENV_VAR}=127.0.0.1:7171); unset it for the default of {DEFAULT_ADDR}"
        )
    })?;
    Ok(trimmed.to_owned())
}

/// [`try_default_addr`], panicking on a malformed [`ADDR_ENV_VAR`].
///
/// # Panics
///
/// If the variable is set to anything but a socket address.
#[must_use]
pub fn default_addr() -> String {
    try_default_addr().unwrap_or_else(|message| panic!("{message}"))
}

/// The default admission bound: [`MAX_JOBS_ENV_VAR`] or
/// [`DEFAULT_MAX_JOBS`].
///
/// # Errors
///
/// When the variable is set but is not a positive integer.
pub fn try_default_max_jobs() -> Result<NonZeroUsize, String> {
    let Ok(value) = std::env::var(MAX_JOBS_ENV_VAR) else {
        return Ok(NonZeroUsize::new(DEFAULT_MAX_JOBS).expect("default bound is positive"));
    };
    value.trim().parse::<NonZeroUsize>().map_err(|_| {
        format!(
            "{MAX_JOBS_ENV_VAR}={value:?} is not a positive integer job bound \
             (e.g. {MAX_JOBS_ENV_VAR}=8); unset it for the default of {DEFAULT_MAX_JOBS}"
        )
    })
}

/// [`try_default_max_jobs`], panicking on a malformed [`MAX_JOBS_ENV_VAR`].
///
/// # Panics
///
/// If the variable is set to anything but a positive integer.
#[must_use]
pub fn default_max_jobs() -> NonZeroUsize {
    try_default_max_jobs().unwrap_or_else(|message| panic!("{message}"))
}

/// The default cache budget: [`CACHE_BYTES_ENV_VAR`] or
/// [`DEFAULT_CACHE_BYTES`].  Zero disables caching.
///
/// # Errors
///
/// When the variable is set but is not a non-negative integer.
pub fn try_default_cache_bytes() -> Result<u64, String> {
    let Ok(value) = std::env::var(CACHE_BYTES_ENV_VAR) else {
        return Ok(DEFAULT_CACHE_BYTES);
    };
    value.trim().parse::<u64>().map_err(|_| {
        format!(
            "{CACHE_BYTES_ENV_VAR}={value:?} is not a byte count \
             (e.g. {CACHE_BYTES_ENV_VAR}=268435456, or 0 to disable caching); \
             unset it for the default of {DEFAULT_CACHE_BYTES}"
        )
    })
}

/// [`try_default_cache_bytes`], panicking on a malformed
/// [`CACHE_BYTES_ENV_VAR`].
///
/// # Panics
///
/// If the variable is set to anything but a non-negative integer.
#[must_use]
pub fn default_cache_bytes() -> u64 {
    try_default_cache_bytes().unwrap_or_else(|message| panic!("{message}"))
}

/// A positive-millisecond environment variable as an optional [`Duration`]
/// (`None` when unset), in the strict `HTD_SERVE_*` style.
fn try_millis_var(var: &str, example: u64) -> Result<Option<Duration>, String> {
    let Ok(value) = std::env::var(var) else {
        return Ok(None);
    };
    match value.trim().parse::<u64>() {
        Ok(ms) if ms > 0 => Ok(Some(Duration::from_millis(ms))),
        _ => Err(format!(
            "{var}={value:?} is not a positive millisecond count (e.g. {var}={example})"
        )),
    }
}

/// The server-wide per-job budget cap from [`BUDGET_DEADLINE_ENV_VAR`] and
/// [`BUDGET_CONFLICTS_ENV_VAR`]; unlimited when both are unset.
///
/// # Errors
///
/// When either variable is set but is not a positive integer.
pub fn try_default_budget() -> Result<htd_core::SolveBudget, String> {
    let deadline = try_millis_var(BUDGET_DEADLINE_ENV_VAR, 60_000)?;
    let conflict_ceiling = match std::env::var(BUDGET_CONFLICTS_ENV_VAR) {
        Err(_) => None,
        Ok(value) => match value.trim().parse::<u64>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                return Err(format!(
                    "{BUDGET_CONFLICTS_ENV_VAR}={value:?} is not a positive conflict count \
                     (e.g. {BUDGET_CONFLICTS_ENV_VAR}=1000000); unset it for no conflict cap"
                ));
            }
        },
    };
    Ok(htd_core::SolveBudget {
        deadline,
        conflict_ceiling,
    })
}

/// The drain deadline: [`DRAIN_DEADLINE_ENV_VAR`] or
/// [`DEFAULT_DRAIN_DEADLINE`].
///
/// # Errors
///
/// When the variable is set but is not a positive integer.
pub fn try_default_drain_deadline() -> Result<Duration, String> {
    Ok(try_millis_var(DRAIN_DEADLINE_ENV_VAR, 30_000)?.unwrap_or(DEFAULT_DRAIN_DEADLINE))
}

/// The header read timeout: [`HEADER_TIMEOUT_ENV_VAR`] or
/// [`DEFAULT_HEADER_TIMEOUT`].
///
/// # Errors
///
/// When the variable is set but is not a positive integer.
pub fn try_default_header_timeout() -> Result<Duration, String> {
    Ok(try_millis_var(HEADER_TIMEOUT_ENV_VAR, 5_000)?.unwrap_or(DEFAULT_HEADER_TIMEOUT))
}
