//! Just enough HTTP/1.1 to carry the service protocol over a raw
//! [`std::net::TcpStream`]: request-line + header parsing with a bounded
//! body, and plain / streaming response writers.
//!
//! Every response closes the connection (`Connection: close`), which is what
//! makes the NDJSON stream EOF-terminated — no chunked transfer encoding,
//! no keep-alive state machine.

use std::io::{self, BufRead, Write};

use crate::json::Json;

/// Maximum allowed size of a single header line (request line included).
const MAX_LINE_BYTES: usize = 64 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// The request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, e.g. `/jobs` or `/jobs/3`.
    pub path: String,
    /// The `X-HTD-Tenant` header, when the client sent one.  The server
    /// keys fair-share scheduling by it, falling back to the peer address.
    pub tenant: Option<String>,
    /// The decoded body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The socket failed or the peer closed before a full request arrived.
    Io(io::Error),
    /// The request was syntactically malformed (maps to `400`).
    Malformed(String),
    /// The declared body exceeds the server's cap (maps to `413`).
    TooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
}

impl From<io::Error> for RequestError {
    fn from(err: io::Error) -> Self {
        RequestError::Io(err)
    }
}

/// Reads one request from `reader`, capping the body at `max_body` bytes.
///
/// # Errors
///
/// [`RequestError::Malformed`] on syntax errors, [`RequestError::TooLarge`]
/// when `Content-Length` exceeds the cap, [`RequestError::Io`] when the
/// underlying stream fails.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Request, RequestError> {
    let line = read_line(reader)?;
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::Malformed(format!(
            "bad request line: {line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    let method = method.to_owned();
    let path = path.to_owned();

    let mut content_length = 0usize;
    let mut tenant = None;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!("bad header: {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| {
                RequestError::Malformed(format!("bad Content-Length: {:?}", value.trim()))
            })?;
        } else if name.trim().eq_ignore_ascii_case("x-htd-tenant") {
            let value = value.trim();
            if !value.is_empty() {
                tenant = Some(value.to_owned());
            }
        }
    }
    if content_length > max_body {
        return Err(RequestError::TooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| RequestError::Malformed("body is not valid UTF-8".to_owned()))?;
    Ok(Request {
        method,
        path,
        tenant,
        body,
    })
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the terminator.
fn read_line(reader: &mut impl BufRead) -> Result<String, RequestError> {
    let mut raw = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if raw.is_empty() {
                    return Err(RequestError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before a full request",
                    )));
                }
                break;
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                raw.push(byte[0]);
                if raw.len() > MAX_LINE_BYTES {
                    return Err(RequestError::Malformed("header line too long".to_owned()));
                }
            }
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map_err(|_| RequestError::Malformed("header line is not valid UTF-8".to_owned()))
}

/// Writes a complete JSON response with `Content-Length` framing.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_json(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    body: &Json,
) -> io::Result<()> {
    let mut payload = body.to_string();
    payload.push('\n');
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )?;
    writer.flush()
}

/// Writes the structured error schema: `{"error":{"code":...,"message":...}}`.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_error(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    code: &str,
    message: &str,
) -> io::Result<()> {
    let body = Json::obj([(
        "error",
        Json::obj([("code", Json::str(code)), ("message", Json::str(message))]),
    )]);
    write_json(writer, status, reason, &body)
}

/// Starts an EOF-terminated NDJSON stream: status line and headers only; the
/// caller then writes one JSON document per line and closes the socket.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_stream_header(writer: &mut impl Write) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "body");
    }

    #[test]
    fn extracts_the_tenant_header_case_insensitively() {
        let req =
            parse("POST /jobs HTTP/1.1\r\nx-htd-tenant:  alice \r\nContent-Length: 0\r\n\r\n")
                .unwrap();
        assert_eq!(req.tenant.as_deref(), Some("alice"));
        let req = parse("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.tenant, None);
        // An empty tenant value is treated as absent, not as a tenant named "".
        let req = parse("GET /stats HTTP/1.1\r\nX-HTD-Tenant:\r\n\r\n").unwrap();
        assert_eq!(req.tenant, None);
    }

    #[test]
    fn parses_bare_lf_requests() {
        let req = parse("GET /stats HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let err = parse("POST /jobs HTTP/1.1\r\nContent-Length: 4096\r\n\r\n").unwrap_err();
        match err {
            RequestError::TooLarge { declared, limit } => {
                assert_eq!(declared, 4096);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(
            parse("NONSENSE\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /stats SPDY/3\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn error_responses_use_the_structured_schema() {
        let mut out = Vec::new();
        write_error(
            &mut out,
            503,
            "Service Unavailable",
            "overloaded",
            "queue full",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        let body = text.split("\r\n\r\n").nth(1).unwrap().trim();
        let parsed = Json::parse(body).unwrap();
        assert_eq!(
            parsed
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("overloaded")
        );
    }
}
