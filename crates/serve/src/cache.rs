//! The netlist-keyed snapshot cache: frozen master [`MiterSession`]s indexed
//! by [`content_hash`](htd_rtl::netlist::content_hash) of the canonical
//! netlist text.
//!
//! A cache entry holds the *master* encoding of a design — the product of the
//! one expensive bit-blast — and is never run directly.  Every served job
//! runs on an O(bytes) [`MiterSession::try_fork`] of the frozen master, so a
//! cache hit skips the bit-blast entirely while the master stays pristine:
//! forks of a never-run master produce reports byte-identical to a fresh
//! session's (the ipc determinism suite asserts this).
//!
//! The content hash is FxHash — fast, but neither cryptographic nor secretly
//! seeded, so a multi-tenant service must assume colliding netlists can be
//! *crafted*, not just stumbled into.  Per the
//! [`content_hash`](htd_rtl::netlist::content_hash) contract, every entry
//! therefore stores the canonical netlist dump alongside the master, and a
//! lookup only hits when the stored dump is byte-identical to the submitted
//! one; a hash collision is an honest miss, never another tenant's design.
//!
//! Eviction is LRU under a byte budget measured by
//! [`MiterSession::resident_bytes`] (the AIG footprint plus the backend's
//! forkable snapshot bytes — a pristine master holds its whole footprint in
//! the encoding, not the solver) plus the retained dump text.  A budget of
//! zero disables caching (every submit rebuilds, nothing is retained).

use htd_ipc::MiterSession;
use htd_rtl::ValidatedDesign;

/// A cached master encoding: the validated design plus its frozen,
/// never-solved miter session.
#[derive(Debug)]
pub struct FrozenMaster {
    /// The validated design the miter encodes.
    pub design: ValidatedDesign,
    /// The frozen master session; fork it, never run it.
    pub miter: MiterSession,
}

#[derive(Debug)]
struct Entry {
    key: u64,
    /// The canonical netlist dump the key was hashed from; compared on every
    /// hash hit so a collision cannot serve a different design.
    dump: String,
    master: FrozenMaster,
    bytes: u64,
    last_used: u64,
}

/// Cache observability counters, reported by `GET /stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently resident (per entry: `resident_bytes` plus the
    /// retained canonical dump).
    pub bytes: u64,
    /// The configured byte budget.
    pub capacity_bytes: u64,
    /// Lookups that found a reusable master.
    pub hits: u64,
    /// Lookups that missed (including all lookups when caching is disabled).
    pub misses: u64,
    /// Entries evicted to stay under the budget.
    pub evicted_entries: u64,
    /// Bytes released by those evictions.
    pub evicted_bytes: u64,
}

/// An LRU cache of frozen masters under a byte budget.
#[derive(Debug)]
pub struct SnapshotCache {
    entries: Vec<Entry>,
    capacity_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    evicted_entries: u64,
    evicted_bytes: u64,
}

impl SnapshotCache {
    /// Creates a cache with the given byte budget (zero disables caching).
    #[must_use]
    pub fn new(capacity_bytes: u64) -> Self {
        SnapshotCache {
            entries: Vec::new(),
            capacity_bytes,
            clock: 0,
            hits: 0,
            misses: 0,
            evicted_entries: 0,
            evicted_bytes: 0,
        }
    }

    /// Looks up `key` and, on a hit, returns a clone of the design plus an
    /// O(bytes) fork of the frozen master, bumping the entry's recency.
    /// Returns `None` (and counts a miss) otherwise.
    ///
    /// A hit requires the stored canonical `dump` to match byte-for-byte,
    /// not just the 64-bit hash: FxHash is collidable, and serving a
    /// different tenant's design on a collision would be a silent
    /// cross-tenant report leak.
    pub fn fetch(&mut self, key: u64, dump: &str) -> Option<(ValidatedDesign, MiterSession)> {
        self.clock += 1;
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.key == key && e.dump == dump)
        {
            // The builtin arena backend always forks; a non-forkable master
            // could only get here through a future backend change, and then
            // the honest answer is a miss, not a panic.
            if let Some(fork) = entry.master.miter.try_fork() {
                entry.last_used = self.clock;
                self.hits += 1;
                return Some((entry.master.design.clone(), fork));
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts a freshly built master under `key` (the
    /// [`hash_of_dump`](htd_rtl::netlist::hash_of_dump) of `dump`), then
    /// evicts least-recently-used entries (possibly the new one) until the
    /// resident bytes fit the budget.  A zero budget retains nothing.
    /// Hash-colliding designs coexist as separate entries.
    pub fn insert(&mut self, key: u64, dump: String, master: FrozenMaster) {
        if self.entries.iter().any(|e| e.key == key && e.dump == dump) {
            // A concurrent submit of the same netlist built a duplicate
            // master while we were building ours; keep the resident one.
            return;
        }
        self.clock += 1;
        let bytes = master.miter.resident_bytes() + dump.len() as u64;
        self.entries.push(Entry {
            key,
            dump,
            master,
            bytes,
            last_used: self.clock,
        });
        while self.resident_bytes() > self.capacity_bytes {
            let Some(oldest) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                break;
            };
            let evicted = self.entries.swap_remove(oldest);
            self.evicted_entries += 1;
            self.evicted_bytes += evicted.bytes;
        }
    }

    fn resident_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// The current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            bytes: self.resident_bytes(),
            capacity_bytes: self.capacity_bytes,
            hits: self.hits,
            misses: self.misses,
            evicted_entries: self.evicted_entries,
            evicted_bytes: self.evicted_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_sat::Solver;

    fn master(name: &str, width: u32) -> (u64, String, FrozenMaster) {
        let mut d = htd_rtl::Design::new(name);
        let input = d.add_input("in", width).unwrap();
        let r = d.add_register("r", width, 0).unwrap();
        d.set_register_next(r, d.signal(input)).unwrap();
        d.add_output("out", d.signal(r)).unwrap();
        let design = d.validated().unwrap();
        let dump = htd_rtl::netlist::dump(&design);
        let key = design.content_hash();
        let miter = MiterSession::new(&design, Box::new(Solver::new()));
        (key, dump, FrozenMaster { design, miter })
    }

    fn entry_bytes(dump: &str, frozen: &FrozenMaster) -> u64 {
        frozen.miter.resident_bytes() + dump.len() as u64
    }

    #[test]
    fn hits_fork_without_evicting_and_misses_count() {
        let mut cache = SnapshotCache::new(u64::MAX);
        let (key, dump, frozen) = master("a", 4);
        assert!(cache.fetch(key, &dump).is_none());
        cache.insert(key, dump.clone(), frozen);
        let (design, fork) = cache.fetch(key, &dump).expect("resident entry must hit");
        assert_eq!(design.design().name(), "a");
        assert_eq!(fork.design_name(), "a");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn a_hash_collision_is_a_miss_not_another_tenants_design() {
        let mut cache = SnapshotCache::new(u64::MAX);
        let (key, dump, frozen) = master("a", 4);
        cache.insert(key, dump.clone(), frozen);
        // A different netlist landing on the same 64-bit key (FxHash is
        // collidable by construction) must miss, not serve design `a`.
        let (_, colliding_dump, colliding) = master("b", 8);
        assert!(cache.fetch(key, &colliding_dump).is_none());
        // And it can be cached under the same key without displacing `a`.
        cache.insert(key, colliding_dump.clone(), colliding);
        let (design, _) = cache.fetch(key, &colliding_dump).expect("own entry");
        assert_eq!(design.design().name(), "b");
        let (design, _) = cache.fetch(key, &dump).expect("`a` stays resident");
        assert_eq!(design.design().name(), "a");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 2));
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let (key_a, dump_a, frozen_a) = master("a", 4);
        let (key_b, dump_b, frozen_b) = master("b", 8);
        let bytes_a = entry_bytes(&dump_a, &frozen_a);
        let bytes_b = entry_bytes(&dump_b, &frozen_b);
        // Budget fits either entry alone but not both.
        let mut cache = SnapshotCache::new(bytes_a.max(bytes_b));
        cache.insert(key_a, dump_a.clone(), frozen_a);
        cache.insert(key_b, dump_b.clone(), frozen_b);
        assert!(
            cache.fetch(key_a, &dump_a).is_none(),
            "older entry must be evicted"
        );
        assert!(
            cache.fetch(key_b, &dump_b).is_some(),
            "newer entry must survive"
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evicted_entries, 1);
        assert_eq!(stats.evicted_bytes, bytes_a);
    }

    #[test]
    fn a_zero_budget_disables_caching() {
        let mut cache = SnapshotCache::new(0);
        let (key, dump, frozen) = master("a", 4);
        cache.insert(key, dump.clone(), frozen);
        assert!(cache.fetch(key, &dump).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn recently_used_entries_outlive_older_inserts() {
        let (key_a, dump_a, frozen_a) = master("a", 4);
        let (key_b, dump_b, frozen_b) = master("b", 4);
        let (key_c, dump_c, frozen_c) = master("c", 4);
        let per_entry = entry_bytes(&dump_a, &frozen_a);
        // Room for two same-shaped entries.
        let mut cache = SnapshotCache::new(per_entry * 2);
        cache.insert(key_a, dump_a.clone(), frozen_a);
        cache.insert(key_b, dump_b.clone(), frozen_b);
        assert!(
            cache.fetch(key_a, &dump_a).is_some(),
            "touch `a` so `b` is the LRU"
        );
        cache.insert(key_c, dump_c.clone(), frozen_c);
        assert!(cache.fetch(key_a, &dump_a).is_some());
        assert!(
            cache.fetch(key_b, &dump_b).is_none(),
            "`b` was least recently used"
        );
        assert!(cache.fetch(key_c, &dump_c).is_some());
    }
}
