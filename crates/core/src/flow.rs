//! Detector configuration and the legacy borrow-tied detector shim.
//!
//! The flow itself (Algorithm 1 of the paper) lives in
//! [`crate::session::run_flow`] and is shared between the incremental
//! [`DetectionSession`](crate::DetectionSession) — the primary entry point —
//! and the deprecated [`TrojanDetector`] kept here for backward
//! compatibility and as the *fresh-solve reference path*: it rebuilds the
//! AIG, the CNF and the SAT solver for every property, which the
//! equivalence tests and the `property_runtime` benchmark compare the
//! session path against.

use htd_ipc::{CheckerOptions, IntervalProperty, PropertyChecker, PropertyReport};
use htd_rtl::{SignalId, ValidatedDesign};

use crate::error::DetectError;
use crate::report::DetectionReport;
use crate::session::{run_flow, validate_config, validate_design, PropertyEngine};

/// Configuration of the detection flow.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectorConfig {
    /// Options passed to the underlying property checker.
    pub checker: CheckerOptions,
    /// Additionally assume equality of all signals proven by *earlier*
    /// properties when checking a fanout property (default: `true`).
    ///
    /// This applies the re-verification fix of Sec. V-B, scenario (1)
    /// proactively: a fanout property may otherwise fail only because its
    /// antecedent does not mention a signal that another property has already
    /// proven equal.
    pub assume_previously_proven: bool,
    /// Benign-state waivers (Sec. V-B, scenario (2)): registers the
    /// verification engineer has inspected and disqualified as Trojan state
    /// (FSM phases, busy flags, round counters, …).  When a counterexample is
    /// fully explained by waived registers, the flow adds equality
    /// assumptions for them and re-verifies instead of reporting a Trojan.
    pub benign_state: Vec<SignalId>,
    /// Maximum number of spurious-counterexample resolution rounds per
    /// property.  Must be at least 1.
    pub max_resolution_iterations: usize,
    /// Safety bound on the number of fanout iterations (the loop is bounded
    /// by the structural depth of the design; this limit only guards against
    /// configuration errors).  Must be at least 1.
    pub max_flow_iterations: usize,
    /// Per-run resource budget (wall-clock deadline, solver-conflict
    /// ceiling), enforced *inside* the solver via the interrupt seam.  The
    /// default is unlimited — budgets are strictly opt-in, so existing flows
    /// and their reports are unchanged.  An exhausted budget surfaces as
    /// [`DetectError::BudgetExhausted`].
    pub budget: htd_sat::SolveBudget,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            checker: CheckerOptions::default(),
            assume_previously_proven: true,
            benign_state: Vec::new(),
            max_resolution_iterations: 16,
            max_flow_iterations: 4096,
            budget: htd_sat::SolveBudget::default(),
        }
    }
}

/// The legacy fresh-solve engine: one `PropertyChecker` encoding (AIG + CNF +
/// solver) per property check.
pub(crate) struct LegacyEngine {
    options: CheckerOptions,
}

impl LegacyEngine {
    pub(crate) fn new(options: CheckerOptions) -> Self {
        LegacyEngine { options }
    }
}

impl PropertyEngine for LegacyEngine {
    fn check(
        &mut self,
        design: &ValidatedDesign,
        property: &IntervalProperty,
    ) -> Result<PropertyReport, DetectError> {
        Ok(PropertyChecker::with_options(design, self.options).check(property))
    }
}

/// The golden-free Trojan detector: Algorithm 1 of the paper, re-encoding the
/// miter for every property.
///
/// Deprecated: [`SessionBuilder`](crate::SessionBuilder) /
/// [`DetectionSession`](crate::DetectionSession) run the same flow against
/// one live incremental miter encoding (one bit-blast per run instead of one
/// per property), own their design, support pluggable SAT backends and
/// stream [`FlowEvent`](crate::FlowEvent)s.  This type remains as the
/// fresh-solve reference path for equivalence tests and benchmarks.
#[deprecated(
    since = "0.2.0",
    note = "use `SessionBuilder`/`DetectionSession`; the session path bit-blasts once per run \
            instead of once per property"
)]
#[derive(Debug)]
pub struct TrojanDetector<'a> {
    design: &'a ValidatedDesign,
    config: DetectorConfig,
}

#[allow(deprecated)]
impl<'a> TrojanDetector<'a> {
    /// Creates a detector with the default configuration.
    ///
    /// # Errors
    ///
    /// Fails if the design has no primary inputs or no state/output signals —
    /// the flow's decomposition is not applicable to such designs.
    pub fn new(design: &'a ValidatedDesign) -> Result<Self, DetectError> {
        Self::with_config(design, DetectorConfig::default())
    }

    /// Creates a detector with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new), plus
    /// [`DetectError::InvalidConfig`] for zero iteration budgets.
    pub fn with_config(
        design: &'a ValidatedDesign,
        config: DetectorConfig,
    ) -> Result<Self, DetectError> {
        validate_design(design)?;
        validate_config(&config)?;
        Ok(TrojanDetector { design, config })
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Runs the full detection flow: init property, fanout properties until
    /// the structural fixpoint, then the signal-coverage check.
    ///
    /// The flow stops at the first property that fails after
    /// spurious-counterexample resolution, exactly as a verification engineer
    /// would, because the counterexample already localises the potential
    /// Trojan.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::IterationLimit`] or
    /// [`DetectError::ResolutionLimit`] when the configured safety bounds are
    /// exceeded (which indicates a configuration problem, not a Trojan).
    pub fn run(&self) -> Result<DetectionReport, DetectError> {
        let mut engine = LegacyEngine::new(self.config.checker);
        run_flow(self.design, &self.config, &mut engine, None, &mut |_| {})
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::report::{DetectedBy, DetectionOutcome};
    use htd_rtl::Design;

    /// A clean 3-stage pass-through pipeline: in -> s1 -> s2 -> out.
    fn clean_pipeline() -> ValidatedDesign {
        let mut d = Design::new("clean_pipeline");
        let input = d.add_input("in", 8).unwrap();
        let s1 = d.add_register("s1", 8, 0).unwrap();
        let s2 = d.add_register("s2", 8, 0).unwrap();
        d.set_register_next(s1, d.signal(input)).unwrap();
        d.set_register_next(s2, d.signal(s1)).unwrap();
        d.add_output("out", d.signal(s2)).unwrap();
        d.validated().unwrap()
    }

    /// The same pipeline with a sequential Trojan whose trigger is a
    /// free-running counter (input-independent, like AES-T2500) and whose
    /// payload flips the LSB of stage 2 once the counter saturates.
    fn infected_pipeline() -> ValidatedDesign {
        let mut d = Design::new("infected_pipeline");
        let input = d.add_input("in", 8).unwrap();
        let s1 = d.add_register("s1", 8, 0).unwrap();
        let s2 = d.add_register("s2", 8, 0).unwrap();
        let counter = d.add_register("trojan_counter", 2, 0).unwrap();
        let one = d.constant(1, 2).unwrap();
        let count_next = d.add(d.signal(counter), one).unwrap();
        d.set_register_next(counter, count_next).unwrap();
        d.set_register_next(s1, d.signal(input)).unwrap();
        let armed = d.eq_const(d.signal(counter), 3).unwrap();
        let flip = d.zero_ext(armed, 8).unwrap();
        let payload = d.xor(d.signal(s1), flip).unwrap();
        d.set_register_next(s2, payload).unwrap();
        d.add_output("out", d.signal(s2)).unwrap();
        d.validated().unwrap()
    }

    /// A design whose trigger FSM watches the input (like the plaintext-
    /// sequence triggers of most AES Trust-Hub benchmarks): the trigger state
    /// itself lies in `fanouts_CC1`, so the init property already fails.
    fn input_triggered_design() -> ValidatedDesign {
        let mut d = Design::new("input_triggered");
        let input = d.add_input("in", 8).unwrap();
        let trigger = d.add_register("trigger", 1, 0).unwrap();
        let result = d.add_register("result", 8, 0).unwrap();
        let magic = d.eq_const(d.signal(input), 0xA5).unwrap();
        let trig_next = d.or(d.signal(trigger), magic).unwrap();
        d.set_register_next(trigger, trig_next).unwrap();
        let flip = d.zero_ext(d.signal(trigger), 8).unwrap();
        let payload = d.xor(d.signal(input), flip).unwrap();
        d.set_register_next(result, payload).unwrap();
        d.add_output("out", d.signal(result)).unwrap();
        d.validated().unwrap()
    }

    /// A clean pipeline plus a free-running counter disconnected from the
    /// inputs (the AES-T1900 situation).
    fn pipeline_with_free_counter() -> ValidatedDesign {
        let mut d = Design::new("free_counter");
        let input = d.add_input("in", 8).unwrap();
        let s1 = d.add_register("s1", 8, 0).unwrap();
        d.set_register_next(s1, d.signal(input)).unwrap();
        d.add_output("out", d.signal(s1)).unwrap();
        let timer = d.add_register("timer", 8, 0).unwrap();
        let one = d.constant(1, 8).unwrap();
        let inc = d.add(d.signal(timer), one).unwrap();
        d.set_register_next(timer, inc).unwrap();
        d.validated().unwrap()
    }

    #[test]
    fn clean_pipeline_is_secure() {
        let design = clean_pipeline();
        let report = TrojanDetector::new(&design).unwrap().run().unwrap();
        assert!(report.outcome.is_secure(), "{report}");
        assert_eq!(report.fanout_levels.len(), 3);
        assert_eq!(report.properties_checked(), 3);
        assert_eq!(report.spurious_resolved, 0);
    }

    #[test]
    fn infected_pipeline_is_detected_by_fanout_property() {
        let design = infected_pipeline();
        let report = TrojanDetector::new(&design).unwrap().run().unwrap();
        match &report.outcome {
            DetectionOutcome::PropertyFailed {
                detected_by,
                counterexample,
            } => {
                // s2 is two cycles from the inputs: the divergence appears in
                // fanout property 1 (s1 -> s2).
                assert_eq!(*detected_by, DetectedBy::FanoutProperty(1));
                assert!(counterexample.diff_names().contains(&"s2"));
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn input_watching_trigger_is_detected_by_the_init_property() {
        // The trigger FSM reads the input, so it (and the payload register)
        // lie in fanouts_CC1 and the init property already fails — the
        // situation of the plaintext-sequence-triggered AES benchmarks in
        // Table I of the paper.
        let design = input_triggered_design();
        let report = TrojanDetector::new(&design).unwrap().run().unwrap();
        match &report.outcome {
            DetectionOutcome::PropertyFailed {
                detected_by,
                counterexample,
            } => {
                assert_eq!(*detected_by, DetectedBy::InitProperty);
                assert!(!counterexample.diffs.is_empty());
            }
            other => panic!("expected init-property detection, got {other:?}"),
        }
    }

    #[test]
    fn free_running_counter_is_caught_by_coverage_check() {
        let design = pipeline_with_free_counter();
        let report = TrojanDetector::new(&design).unwrap().run().unwrap();
        match &report.outcome {
            DetectionOutcome::UncoveredSignals { signals } => {
                assert_eq!(signals, &vec!["timer".to_string()]);
                assert_eq!(
                    report.outcome.detected_by(),
                    Some(DetectedBy::CoverageCheck)
                );
            }
            other => panic!("expected uncovered signals, got {other:?}"),
        }
    }

    #[test]
    fn benign_state_waiver_resolves_spurious_cex() {
        // A design whose output depends on a benign mode register: without a
        // waiver the flow reports a (false) detection, with the waiver it
        // verifies secure and counts one resolved spurious counterexample.
        let mut d = Design::new("mode_design");
        let input = d.add_input("in", 8).unwrap();
        let mode = d.add_register("mode", 1, 0).unwrap();
        let result = d.add_register("result", 8, 0).unwrap();
        let mode_next = d.not(d.signal(mode));
        d.set_register_next(mode, mode_next).unwrap();
        let m_ext = d.zero_ext(d.signal(mode), 8).unwrap();
        let sum = d.add(d.signal(input), m_ext).unwrap();
        d.set_register_next(result, sum).unwrap();
        d.add_output("out", d.signal(result)).unwrap();
        let design = d.validated().unwrap();
        let mode_id = design.design().require("mode").unwrap();

        let without = TrojanDetector::new(&design).unwrap().run().unwrap();
        assert!(!without.outcome.is_secure());

        let config = DetectorConfig {
            benign_state: vec![mode_id],
            ..DetectorConfig::default()
        };
        let with = TrojanDetector::with_config(&design, config)
            .unwrap()
            .run()
            .unwrap();
        // `mode` itself is never reached from the inputs, so after resolving
        // the spurious counterexample the coverage check still points at it —
        // which is correct behaviour (the engineer must inspect it), but the
        // property-based detection is gone and one spurious CEX was resolved.
        assert!(with.spurious_resolved >= 1);
        match with.outcome {
            DetectionOutcome::UncoveredSignals { ref signals } => {
                assert_eq!(signals, &vec!["mode".to_string()]);
            }
            ref other => panic!("expected coverage finding for `mode`, got {other:?}"),
        }
    }

    #[test]
    fn detector_rejects_designs_without_inputs() {
        let mut d = Design::new("no_inputs");
        let r = d.add_register("r", 1, 0).unwrap();
        let n = d.not(d.signal(r));
        d.set_register_next(r, n).unwrap();
        d.add_output("o", d.signal(r)).unwrap();
        let design = d.validated().unwrap();
        assert_eq!(
            TrojanDetector::new(&design).unwrap_err(),
            DetectError::NoInputs
        );
    }

    #[test]
    fn detector_rejects_designs_without_state_or_outputs() {
        let mut d = Design::new("only_inputs");
        d.add_input("a", 1).unwrap();
        let design = d.validated().unwrap();
        assert_eq!(
            TrojanDetector::new(&design).unwrap_err(),
            DetectError::NoStateOrOutputs
        );
    }

    #[test]
    fn detector_rejects_zero_iteration_budgets() {
        let design = clean_pipeline();
        for (resolution, flow) in [(0usize, 4096usize), (16, 0)] {
            let config = DetectorConfig {
                max_resolution_iterations: resolution,
                max_flow_iterations: flow,
                ..DetectorConfig::default()
            };
            let err = TrojanDetector::with_config(&design, config).unwrap_err();
            assert!(
                matches!(err, DetectError::InvalidConfig { .. }),
                "expected InvalidConfig, got {err:?}"
            );
        }
    }

    #[test]
    fn report_display_lists_all_properties() {
        let design = clean_pipeline();
        let report = TrojanDetector::new(&design).unwrap().run().unwrap();
        let text = report.to_string();
        assert!(text.contains("init_property"));
        assert!(text.contains("fanout_property_1"));
        assert!(text.contains("SECURE"));
        assert!(report.slowest_property().is_some());
        assert!(report.summary().contains("SECURE"));
    }

    #[test]
    fn disabling_variable_sharing_gives_the_same_verdicts() {
        for design in [clean_pipeline(), infected_pipeline()] {
            let config = DetectorConfig {
                checker: CheckerOptions {
                    share_assumed_equal: false,
                    ..CheckerOptions::default()
                },
                ..DetectorConfig::default()
            };
            let shared = TrojanDetector::new(&design).unwrap().run().unwrap();
            let unshared = TrojanDetector::with_config(&design, config)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(
                shared.outcome.is_secure(),
                unshared.outcome.is_secure(),
                "sharing ablation changed the verdict for {}",
                design.design().name()
            );
            assert_eq!(shared.outcome.detected_by(), unshared.outcome.detected_by());
        }
    }
}
