//! Counterexample analysis (Sec. V-B of the paper).
//!
//! A failing property does not automatically mean a Trojan: the symbolic
//! starting state may exercise dependencies on *benign* internal state the
//! verification engineer knows about (an FSM phase, a busy flag, a round
//! counter).  The paper describes two resolution scenarios:
//!
//! 1. the fanin signal `x` causing the failure has already been proven equal
//!    by another property — then equality of `x` may be assumed and the
//!    property re-verified;
//! 2. `x` genuinely depends on previous computations but is not part of a
//!    Trojan — the engineer inspects the counterexample, disqualifies the
//!    behaviour, and likewise adds an equality assumption for `x`.
//!
//! This module extracts the candidate `x` signals from a counterexample and
//! classifies them against the engineer-supplied waiver list, so the flow in
//! [`crate::TrojanDetector`] can re-verify automatically where allowed and
//! report a suspected Trojan otherwise.

use std::collections::BTreeSet;

use htd_ipc::Counterexample;
use htd_rtl::structural::combinational_support;
use htd_rtl::{SignalId, SignalKind, ValidatedDesign};

/// Signals suspected of causing a property failure, split by how they can be
/// resolved.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diagnosis {
    /// Candidate cause signals: registers whose starting-state values differ
    /// between the two instances *and* that lie in the (one- or two-cycle)
    /// fanin of a diverging signal, but were not assumed equal.
    pub candidates: Vec<SignalId>,
    /// The subset of `candidates` covered by the waiver list (benign state
    /// the engineer has disqualified as a Trojan).
    pub waived: Vec<SignalId>,
    /// The subset of `candidates` *not* covered by the waiver list.
    pub unwaived: Vec<SignalId>,
}

impl Diagnosis {
    /// `true` if every candidate cause is waived, i.e. the counterexample is
    /// spurious and the property can be re-verified with additional equality
    /// assumptions.
    #[must_use]
    pub fn is_spurious(&self) -> bool {
        !self.candidates.is_empty() && self.unwaived.is_empty()
    }
}

/// Every waiver-listed register in the (one- or two-cycle) fanin of the
/// given signals, minus the already-assumed ones.
///
/// This is the waiver set a spurious counterexample applies at once: when a
/// level's property fails through benign state, every engineer-disqualified
/// register feeding the level is assumed equal in one resolution round,
/// instead of surfacing one register (or one diverging signal's fanin) per
/// round — which matters with fine-grained per-signal counterexamples.
#[must_use]
pub fn benign_fanin_of(
    design: &ValidatedDesign,
    signals: &[SignalId],
    assumed_equal: &[SignalId],
    waivers: &[SignalId],
) -> Vec<SignalId> {
    let d = design.design();
    let assumed: BTreeSet<SignalId> = assumed_equal.iter().copied().collect();
    let waiver_set: BTreeSet<SignalId> = waivers.iter().copied().collect();
    let mut fanin: BTreeSet<SignalId> = BTreeSet::new();
    for &signal in signals {
        let info = d.signal_info(signal);
        let Some(driver) = info.driver() else {
            continue;
        };
        for sig in combinational_support(design, driver) {
            fanin.insert(sig);
            if info.kind() == SignalKind::Output {
                // One more sequential level for outputs proven at t+1.
                if let Some(inner) = d.signal_info(sig).driver() {
                    fanin.extend(combinational_support(design, inner));
                }
            }
        }
    }
    fanin
        .into_iter()
        .filter(|s| {
            waiver_set.contains(s) && !assumed.contains(s) && d.signal_info(*s).kind().is_register()
        })
        .collect()
}

/// Analyses a counterexample: which differing starting-state registers can
/// explain the observed divergence?
///
/// `assumed_equal` is the antecedent of the failing property (those signals
/// cannot be the cause — they were constrained equal); `waivers` is the
/// engineer-supplied benign-state list.
#[must_use]
pub fn diagnose(
    design: &ValidatedDesign,
    cex: &Counterexample,
    assumed_equal: &[SignalId],
    waivers: &[SignalId],
) -> Diagnosis {
    let d = design.design();
    let assumed: BTreeSet<SignalId> = assumed_equal.iter().copied().collect();
    let waiver_set: BTreeSet<SignalId> = waivers.iter().copied().collect();

    // Registers whose starting state differs between the instances.
    let differing: BTreeSet<SignalId> = cex.differing_state().iter().map(|p| p.signal).collect();

    // Fanin cone (up to two sequential levels, to also cover outputs proven
    // at t+1 whose value depends on registers updated at t+1) of the
    // diverging signals.
    let mut fanin: BTreeSet<SignalId> = BTreeSet::new();
    for diff in &cex.diffs {
        let info = d.signal_info(diff.signal);
        let Some(driver) = info.driver() else {
            continue;
        };
        let direct = combinational_support(design, driver);
        for &sig in &direct {
            fanin.insert(sig);
            if info.kind() == SignalKind::Output {
                // One more sequential level for outputs.
                if let Some(inner) = d.signal_info(sig).driver() {
                    fanin.extend(combinational_support(design, inner));
                }
            }
        }
    }

    let candidates: Vec<SignalId> = differing
        .iter()
        .copied()
        .filter(|s| fanin.contains(s) && !assumed.contains(s))
        .collect();
    let (waived, unwaived): (Vec<SignalId>, Vec<SignalId>) = candidates
        .iter()
        .copied()
        .partition(|s| waiver_set.contains(s));

    Diagnosis {
        candidates,
        waived,
        unwaived,
    }
}

/// Renders a diagnosis as a short human-readable explanation.
#[must_use]
pub fn explain(design: &ValidatedDesign, diagnosis: &Diagnosis) -> String {
    let d = design.design();
    let names = |sigs: &[SignalId]| -> String {
        sigs.iter()
            .map(|&s| d.signal_name(s))
            .collect::<Vec<_>>()
            .join(", ")
    };
    if diagnosis.candidates.is_empty() {
        "no differing starting-state register explains the divergence; the payload logic \
         itself differs between the instances"
            .to_string()
    } else if diagnosis.is_spurious() {
        format!(
            "divergence caused by benign state ({}); counterexample is spurious and the \
             property can be re-verified with equality assumptions",
            names(&diagnosis.waived)
        )
    } else {
        format!(
            "divergence caused by un-waived state ({}); suspected trojan trigger state",
            names(&diagnosis.unwaived)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_ipc::{IntervalProperty, PropertyChecker};
    use htd_rtl::Design;

    /// A design with a benign mode register and a malicious trigger register,
    /// both influencing the result register.
    fn design_with_two_state_bits() -> (ValidatedDesign, SignalId, SignalId, SignalId) {
        let mut d = Design::new("diag");
        let input = d.add_input("in", 8).unwrap();
        let mode = d.add_register("mode", 1, 0).unwrap();
        let trigger = d.add_register("trigger", 1, 0).unwrap();
        let result = d.add_register("result", 8, 0).unwrap();
        // mode toggles every cycle (benign behaviour known to the engineer).
        let mode_next = d.not(d.signal(mode));
        d.set_register_next(mode, mode_next).unwrap();
        // trigger arms on a magic value.
        let magic = d.eq_const(d.signal(input), 0x5A).unwrap();
        let trig_next = d.or(d.signal(trigger), magic).unwrap();
        d.set_register_next(trigger, trig_next).unwrap();
        // result = in ^ (trigger ? 1 : 0) ^ (mode ? 2 : 0)
        let t_ext = d.zero_ext(d.signal(trigger), 8).unwrap();
        let m_ext = d.zero_ext(d.signal(mode), 8).unwrap();
        let two = d.constant(2, 8).unwrap();
        let m_sel = d.mul(m_ext, two).unwrap();
        let x1 = d.xor(d.signal(input), t_ext).unwrap();
        let x2 = d.xor(x1, m_sel).unwrap();
        d.set_register_next(result, x2).unwrap();
        d.add_output("out", d.signal(result)).unwrap();
        let v = d.validated().unwrap();
        let mode_id = v.design().require("mode").unwrap();
        let trigger_id = v.design().require("trigger").unwrap();
        let result_id = v.design().require("result").unwrap();
        (v, mode_id, trigger_id, result_id)
    }

    #[test]
    fn diagnosis_identifies_candidate_state() {
        let (design, mode, trigger, result) = design_with_two_state_bits();
        let checker = PropertyChecker::new(&design);
        let prop = IntervalProperty::new("init_property", vec![], vec![result]);
        let report = checker.check(&prop);
        let cex = report
            .outcome
            .counterexample()
            .expect("property must fail")
            .clone();
        let diag = diagnose(&design, &cex, &prop.assume_equal, &[]);
        // The diverging `result` can be explained by `mode` and/or `trigger`
        // (whichever the solver chose to make different).
        assert!(!diag.candidates.is_empty());
        for c in &diag.candidates {
            assert!(*c == mode || *c == trigger, "unexpected candidate {c:?}");
        }
        assert!(!diag.is_spurious());
        assert!(explain(&design, &diag).contains("un-waived"));
    }

    #[test]
    fn waiving_all_candidates_marks_cex_spurious() {
        let (design, mode, trigger, result) = design_with_two_state_bits();
        let checker = PropertyChecker::new(&design);
        let prop = IntervalProperty::new("init_property", vec![], vec![result]);
        let report = checker.check(&prop);
        let cex = report
            .outcome
            .counterexample()
            .expect("property must fail")
            .clone();
        let diag = diagnose(&design, &cex, &prop.assume_equal, &[mode, trigger]);
        assert!(diag.is_spurious());
        assert!(diag.unwaived.is_empty());
        assert!(explain(&design, &diag).contains("spurious"));
    }

    #[test]
    fn assumed_signals_are_not_candidates() {
        let (design, mode, trigger, result) = design_with_two_state_bits();
        let checker = PropertyChecker::new(&design);
        // Assume the benign mode register equal; the failure must now be
        // explained by the trigger alone.
        let prop = IntervalProperty::new("fanout_property_1", vec![mode], vec![result]);
        let report = checker.check(&prop);
        let cex = report
            .outcome
            .counterexample()
            .expect("property must fail")
            .clone();
        let diag = diagnose(&design, &cex, &prop.assume_equal, &[]);
        assert_eq!(diag.candidates, vec![trigger]);
    }

    #[test]
    fn diagnosis_with_no_candidates_explains_payload_difference() {
        let (design, _, _, _) = design_with_two_state_bits();
        let diag = Diagnosis::default();
        assert!(!diag.is_spurious());
        assert!(explain(&design, &diag).contains("payload logic"));
    }
}
