//! The session-based detection engine: the primary entry point of the flow.
//!
//! A [`DetectionSession`] owns the design, the configuration and one live
//! incremental miter encoding ([`MiterSession`]) and runs Algorithm 1 against
//! it: the whole init/fanout/coverage sequence performs **one** bit-blast and
//! reuses one SAT backend across every property and every spurious-
//! counterexample re-verification round.  Sessions are built with
//! [`SessionBuilder`], which also selects the SAT backend
//! ([`BackendChoice`]): the bundled CDCL solver, any external
//! DIMACS-speaking solver binary, or any solver shared library exporting
//! the IPASIR incremental C ABI.
//!
//! # The flow-graph model
//!
//! Algorithm 1 is *presented* as a sequential loop, but the flow is executed
//! here as a **dependency graph** ([`FlowGraph`](crate::FlowGraph)): one
//! node per fanout level (carrying the level's interval property and an
//! edge to the level it structurally depends on), dynamically appended
//! resolution-round nodes, and a final coverage node.  Planning the graph
//! is purely structural, so every engine walks the same nodes:
//!
//! * the **sequential engines** (the deprecated fresh-solve
//!   [`TrojanDetector`](crate::TrojanDetector) and
//!   [`EngineChoice::Sequential`]) visit nodes in id order through
//!   [`run_flow`];
//! * the default **pipelined executor** ([`EngineChoice::Scheduled`], see
//!   [`PropertyScheduler`]) splits each level node into per-signal
//!   sub-properties, freezes each level behind a forked solver snapshot, and
//!   lets one worker pool solve sub-properties of *different* levels
//!   concurrently while the master encodes ahead.  Results merge in node
//!   order, so reports are byte-identical for every worker count and with
//!   pipelining on or off ([`DetectionReport::normalized`]).
//!
//! [`DetectionReport::normalized`]: crate::DetectionReport::normalized
//!
//! Progress is observable while the flow runs through the streaming
//! [`FlowEvent`] API: register an observer with
//! [`DetectionSession::on_event`] (or pass one to
//! [`DetectionSession::run_with_observer`]) and receive one event per fanout
//! level, proved property, counterexample, resolution round and coverage
//! verdict.  Every event names its flow-graph node (and a level's events
//! carry its dependency provenance), so observers can reconstruct the graph
//! the run walked.  The CLI renders these live; the benchmark harness uses
//! them for per-property timing without instrumenting the flow.
//!
//! # Event contract
//!
//! For one [`run`](DetectionSession::run) the observer sees, in order:
//!
//! 1. [`FlowEvent::LevelStarted`] for level `k` (1-based; level 1 is
//!    `fanouts_CC1`, proved by the init property), followed by the events of
//!    the property that proves the level:
//!    * zero or more [`FlowEvent::CounterexampleFound`] with
//!      `spurious: true`, each followed by a [`FlowEvent::ResolutionRound`]
//!      — unless the resolution budget is exhausted, in which case the run
//!      aborts with [`DetectError::ResolutionLimit`] right after the
//!      counterexample event,
//!    * then exactly one of [`FlowEvent::PropertyProved`] or a final
//!      [`FlowEvent::CounterexampleFound`] with `spurious: false` (which ends
//!      the run).
//! 2. If every property holds, one [`FlowEvent::Coverage`] event with the
//!    uncovered-signal verdict.
//!
//! The stream is emitted at the deterministic merge frontier, so the
//! contract holds *unchanged* under the pipelined executor: levels may
//! solve out of order internally, but observers always see them in flow
//! order.  Observers are `FnMut` callbacks; they must not assume any events
//! beyond this contract (future versions may add variants — match with a
//! wildcard arm).

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use htd_ipc::{
    CheckOutcome, Counterexample, IntervalProperty, MiterSession, PropertyReport, SessionStats,
};
use htd_rtl::{SignalId, ValidatedDesign};
use htd_sat::{
    BudgetTracker, DimacsProcessBackend, IpasirBackend, PortfolioBackend, RacePolicy, SatBackend,
    Solver, SolverStats,
};

use crate::diagnosis::{diagnose, Diagnosis};
use crate::error::DetectError;
use crate::flow::DetectorConfig;
use crate::flowgraph::FlowGraph;
use crate::report::{DetectedBy, DetectionOutcome, DetectionReport, PropertyTrace};
use crate::scheduler::{
    run_pipelined, PipelineStats, PropertyScheduler, SchedulerEngine, SharedSolvePool,
};

/// Which SAT backend a session solves with.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// The bundled CDCL solver (default; incremental, learnt clauses persist
    /// across properties).
    #[default]
    Builtin,
    /// An external DIMACS-speaking solver binary, invoked once per query:
    /// the program plus fixed arguments inserted before the CNF file path
    /// (e.g. `htd` + `["sat"]`, or a solver's quiet flag).  Each query makes
    /// the solver re-read (and re-search) the whole CNF.
    DimacsProcess(PathBuf, Vec<String>),
    /// An external solver loaded as a shared library through the standard
    /// IPASIR incremental C ABI: clauses are transmitted once, the solver
    /// handle stays live across every query of the flow.  The bundled
    /// reference library is `crates/ipasir-shim` (`libipasir_htd.so`).
    Ipasir(PathBuf),
    /// A first-answer-wins portfolio racing every solve task across the
    /// member backends concurrently, losers cancelled through the interrupt
    /// / `set_terminate` seam (`portfolio:builtin,ipasir:LIB.so`).  Member 0
    /// is the *primary*: under the default
    /// [`RacePolicy::DeterministicCex`] it is the only source of SAT
    /// models, so reports stay byte-identical to running the primary alone;
    /// `fastest-cex` takes the winner's model instead.  Members cannot
    /// themselves be portfolios.
    Portfolio(Vec<BackendChoice>, RacePolicy),
}

/// Environment variable supplying a default portfolio member list (see
/// [`BackendChoice::try_default_from_env`]): a comma-separated backend list
/// with an optional race-policy token, with or without the `portfolio:`
/// prefix — e.g. `HTD_PORTFOLIO=builtin,ipasir:target/release/libipasir_htd.so`.
pub const PORTFOLIO_ENV_VAR: &str = "HTD_PORTFOLIO";

/// Parses the member list of a `portfolio:` backend spec: comma-separated
/// member backends, with an optional race-policy token
/// (`deterministic-cex` / `fastest-cex`) anywhere in the list.
fn parse_portfolio(spec: &str) -> Result<BackendChoice, String> {
    let mut members = Vec::new();
    let mut policy: Option<RacePolicy> = None;
    for piece in spec.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            return Err(
                "`portfolio:` has an empty member entry (expected a comma-separated \
                        backend list, e.g. `portfolio:builtin,ipasir:LIB.so`)"
                    .into(),
            );
        }
        if let Ok(parsed) = piece.parse::<RacePolicy>() {
            if policy.replace(parsed).is_some() {
                return Err("`portfolio:` lists more than one race policy".into());
            }
            continue;
        }
        if piece.starts_with("portfolio:") {
            return Err("`portfolio:` members cannot be portfolios themselves".into());
        }
        let member: BackendChoice = piece
            .parse()
            .map_err(|e| format!("in `portfolio:` member `{piece}`: {e}"))?;
        members.push(member);
    }
    if members.is_empty() {
        return Err("`portfolio:` needs at least one member backend, e.g. \
                    `portfolio:builtin,ipasir:target/release/libipasir_htd.so`"
            .into());
    }
    Ok(BackendChoice::Portfolio(
        members,
        policy.unwrap_or_default(),
    ))
}

impl BackendChoice {
    /// An external solver invoked as `program <file.cnf>`.
    #[must_use]
    pub fn dimacs(program: impl Into<PathBuf>) -> Self {
        BackendChoice::DimacsProcess(program.into(), Vec::new())
    }

    /// An external solver library loaded through the IPASIR C ABI.
    #[must_use]
    pub fn ipasir(library: impl Into<PathBuf>) -> Self {
        BackendChoice::Ipasir(library.into())
    }

    /// A first-answer-wins portfolio over `members` (member 0 is the
    /// primary — the SAT-model source under
    /// [`RacePolicy::DeterministicCex`]).
    #[must_use]
    pub fn portfolio(members: Vec<BackendChoice>, policy: RacePolicy) -> Self {
        BackendChoice::Portfolio(members, policy)
    }

    /// The default backend for sessions that do not choose one explicitly:
    /// [`Builtin`](Self::Builtin), unless the `HTD_PORTFOLIO` environment
    /// variable supplies a portfolio member list (comma-separated member
    /// backends plus an optional race-policy token, with or without the
    /// `portfolio:` prefix).
    ///
    /// # Errors
    ///
    /// A set-but-malformed `HTD_PORTFOLIO` is an error, never a silent
    /// fallback — a typo would otherwise quietly solve without the racers
    /// it was meant to add (same strictness as `HTD_JOBS`).
    pub fn try_default_from_env() -> Result<BackendChoice, String> {
        let Ok(value) = std::env::var(PORTFOLIO_ENV_VAR) else {
            return Ok(BackendChoice::Builtin);
        };
        let spec = value.trim();
        let spec = spec.strip_prefix("portfolio:").unwrap_or(spec);
        parse_portfolio(spec).map_err(|message| {
            format!("{PORTFOLIO_ENV_VAR}={value:?} is not a valid portfolio spec: {message}")
        })
    }

    /// [`try_default_from_env`](Self::try_default_from_env), panicking on a
    /// malformed `HTD_PORTFOLIO` — misconfigured environments fail loudly,
    /// like the strict `HTD_JOBS` / `HTD_GC_*` overrides.
    ///
    /// # Panics
    ///
    /// If `HTD_PORTFOLIO` is set to anything but a valid portfolio spec.
    #[must_use]
    pub fn default_from_env() -> BackendChoice {
        Self::try_default_from_env().unwrap_or_else(|message| panic!("{message}"))
    }

    /// Checks the choice can be brought up at all — for `ipasir:` this
    /// dlopens the library and resolves its symbols (then releases it), for
    /// `dimacs:` it checks the solver program exists (directly or on
    /// `PATH`) — so callers that run many sessions (e.g. the bench harness)
    /// can reject a typo with a clean error instead of failing mid-run.
    ///
    /// # Errors
    ///
    /// [`DetectError::Backend`] when instantiation (or, for process
    /// backends, the first solver spawn) would fail.
    pub fn validate(&self) -> Result<(), DetectError> {
        if let BackendChoice::Portfolio(members, _) = self {
            for member in members {
                member.validate()?;
            }
        }
        if let BackendChoice::DimacsProcess(program, _) = self {
            // A bare program name goes through the PATH search `Command`
            // will perform; anything with a separator is a filesystem path.
            let found = if program.components().count() > 1 {
                program.is_file()
            } else {
                std::env::var_os("PATH").is_some_and(|paths| {
                    std::env::split_paths(&paths).any(|dir| dir.join(program).is_file())
                })
            };
            if !found {
                return Err(DetectError::Backend {
                    message: format!(
                        "solver binary `{}` not found (checked {})",
                        program.display(),
                        if program.components().count() > 1 {
                            "the given path"
                        } else {
                            "PATH"
                        }
                    ),
                });
            }
        }
        self.instantiate().map(drop)
    }

    /// Brings up one backend instance of this choice: the bundled solver,
    /// an external process/library wrapper, or a [`PortfolioBackend`] over
    /// freshly instantiated members.  Callers that manage their own miter
    /// encodings (e.g. the serve tier's frozen-master snapshot cache) use
    /// this to solve on the configured backend instead of hardcoding the
    /// builtin solver.
    ///
    /// # Errors
    ///
    /// [`DetectError::Backend`] when bring-up fails (missing library,
    /// empty portfolio, …).
    pub fn instantiate(&self) -> Result<Box<dyn SatBackend>, DetectError> {
        match self {
            BackendChoice::Builtin => Ok(Box::new(Solver::new())),
            BackendChoice::DimacsProcess(path, args) => Ok(Box::new(
                DimacsProcessBackend::new(path).with_args(args.clone()),
            )),
            // The library is dlopen'ed (and its IPASIR symbols resolved)
            // right here, so a bad path fails at session build time with a
            // clear error instead of mid-flow.
            BackendChoice::Ipasir(path) => match IpasirBackend::load(path) {
                Ok(backend) => Ok(Box::new(backend)),
                Err(e) => Err(DetectError::Backend { message: e.message }),
            },
            BackendChoice::Portfolio(members, policy) => {
                let mut instances = Vec::with_capacity(members.len());
                for member in members {
                    instances.push(member.instantiate()?);
                }
                match PortfolioBackend::new(instances, *policy) {
                    Ok(backend) => Ok(Box::new(backend)),
                    Err(e) => Err(DetectError::Backend { message: e.message }),
                }
            }
        }
    }
}

impl FromStr for BackendChoice {
    type Err = String;

    /// Parses the CLI syntax: `builtin`, `dimacs:CMD` or `ipasir:LIB`.
    /// `CMD` is a whitespace-separated program plus fixed arguments (the
    /// CNF file path is appended per query), e.g. `dimacs:/usr/bin/kissat`
    /// or `dimacs:htd sat`; `LIB` is the path of a shared library
    /// exporting the IPASIR ABI, e.g. `ipasir:target/release/libipasir_htd.so`.
    fn from_str(s: &str) -> Result<Self, String> {
        if s == "builtin" {
            return Ok(BackendChoice::Builtin);
        }
        if let Some(command) = s.strip_prefix("dimacs:") {
            let mut words = command.split_whitespace();
            let Some(program) = words.next() else {
                return Err(
                    "`dimacs:` needs a solver command, e.g. `dimacs:/usr/bin/kissat`".into(),
                );
            };
            return Ok(BackendChoice::DimacsProcess(
                PathBuf::from(program),
                words.map(ToString::to_string).collect(),
            ));
        }
        if let Some(library) = s.strip_prefix("ipasir:") {
            let library = library.trim();
            if library.is_empty() {
                return Err("`ipasir:` needs a shared-library path, e.g. \
                            `ipasir:target/release/libipasir_htd.so`"
                    .into());
            }
            return Ok(BackendChoice::Ipasir(PathBuf::from(library)));
        }
        if let Some(spec) = s.strip_prefix("portfolio:") {
            return parse_portfolio(spec);
        }
        Err(format!(
            "unknown backend `{s}` (expected `builtin`, `dimacs:CMD`, `ipasir:LIB` or \
             `portfolio:B1,B2,…[,deterministic-cex|fastest-cex]`)"
        ))
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendChoice::Builtin => write!(f, "builtin"),
            BackendChoice::DimacsProcess(path, args) => {
                write!(f, "dimacs:{}", path.display())?;
                for arg in args {
                    write!(f, " {arg}")?;
                }
                Ok(())
            }
            BackendChoice::Ipasir(path) => write!(f, "ipasir:{}", path.display()),
            BackendChoice::Portfolio(members, policy) => {
                write!(f, "portfolio:")?;
                for (i, member) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{member}")?;
                }
                // The default policy is implied; only the opt-in renders,
                // so the output round-trips through `FromStr` unchanged.
                if *policy == RacePolicy::FastestCex {
                    write!(f, ",{policy}")?;
                }
                Ok(())
            }
        }
    }
}

/// Which property-checking engine a session drives the flow with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineChoice {
    /// The single-miter incremental engine: each level is one disjunctive
    /// miter solved on the session's master solver, one graph node at a
    /// time.  Kept as the sequential reference path for perf-trajectory
    /// benchmarks.
    Sequential,
    /// The pipelined flow-graph executor (default): each level node is split
    /// into per-signal sub-properties solved on forked solver shards, with
    /// sub-properties of *different* levels solving concurrently and a
    /// deterministic node-order merge.  Reports are identical for any worker
    /// count and with pipelining on or off (see [`PropertyScheduler`]).
    Scheduled(PropertyScheduler),
}

impl Default for EngineChoice {
    fn default() -> Self {
        EngineChoice::Scheduled(PropertyScheduler::default())
    }
}

/// A boxed observer registered with [`DetectionSession::on_event`].
type EventObserver = Box<dyn FnMut(&FlowEvent)>;

/// A progress event streamed while the detection flow runs.
///
/// See the [module docs](self) for the ordering contract.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowEvent {
    /// The flow starts working on fanout level `level` (1-based).
    LevelStarted {
        /// The 1-based level index (`fanouts_CCk`).
        level: usize,
        /// Names of the signals in the level.
        signals: Vec<String>,
        /// The level's [`FlowGraph`](crate::FlowGraph) node id.
        node: usize,
        /// Node ids this level depends on (the previous level, if any).
        deps: Vec<usize>,
        /// Dependency provenance: names of the previous level's prove
        /// signals that feed this level's antecedent cone.
        dep_signals: Vec<String>,
    },
    /// A property was proved (after `spurious_resolved` resolution rounds).
    PropertyProved {
        /// The property name.
        property: String,
        /// Wall-clock time of the final (successful) check.
        duration: Duration,
        /// Spurious counterexamples discharged on the way.
        spurious_resolved: usize,
        /// Solver work of the final (successful) check: conflicts,
        /// propagations, restarts, clause-GC and LBD counters.
        solver: SolverStats,
        /// The flow-graph node the final (successful) check belongs to: the
        /// level node, or the last resolution-round node.
        node: usize,
    },
    /// The checker found a counterexample to a property.
    CounterexampleFound {
        /// The property name.
        property: String,
        /// Names of the diverging signals.
        diffs: Vec<String>,
        /// `true` if the diagnosis classified it as spurious (fully explained
        /// by waived benign state) — a resolution round follows; `false`
        /// means the flow stops and reports a suspected Trojan.
        spurious: bool,
        /// Solver work of the check that produced the counterexample.
        solver: SolverStats,
        /// The flow-graph node whose check produced the counterexample.
        node: usize,
    },
    /// A spurious counterexample is being discharged by assuming the waived
    /// registers equal and re-verifying: the round is a re-enqueued
    /// flow-graph node, not an inner loop.
    ResolutionRound {
        /// The property name.
        property: String,
        /// The 1-based resolution round.
        round: usize,
        /// Names of the newly assumed (waived) registers.
        waived: Vec<String>,
        /// The freshly appended resolution node's id.
        node: usize,
    },
    /// The final signal-coverage check ran (only reached when every property
    /// holds).
    Coverage {
        /// Number of state/output signals covered by some fanout level.
        covered: usize,
        /// Names of the uncovered signals (empty means the design is
        /// verified secure).
        uncovered: Vec<String>,
        /// The coverage node's id.
        node: usize,
    },
}

/// The property-checking engine a flow run drives: either the legacy
/// fresh-solve checker or an incremental miter session.
pub(crate) trait PropertyEngine {
    fn check(
        &mut self,
        design: &ValidatedDesign,
        property: &IntervalProperty,
    ) -> Result<PropertyReport, DetectError>;

    /// End-of-flow hook, called once after every level held: engines with
    /// deferred clause retirement flush and compact here, returning the
    /// solver-work delta to fold into the flow totals.
    fn finish(&mut self) -> SolverStats {
        SolverStats::default()
    }
}

/// Engine over a [`MiterSession`] (the incremental path).
struct SessionEngine<'a> {
    miter: &'a mut MiterSession,
}

impl PropertyEngine for SessionEngine<'_> {
    fn check(
        &mut self,
        design: &ValidatedDesign,
        property: &IntervalProperty,
    ) -> Result<PropertyReport, DetectError> {
        self.miter
            .check(design, property)
            .map_err(|e| DetectError::Backend {
                message: e.to_string(),
            })
    }
}

/// Validates a detector configuration.
pub(crate) fn validate_config(config: &DetectorConfig) -> Result<(), DetectError> {
    if config.max_resolution_iterations == 0 {
        return Err(DetectError::InvalidConfig {
            reason: "max_resolution_iterations must be at least 1 (a zero budget makes every \
                     spurious counterexample fatal)"
                .to_string(),
        });
    }
    if config.max_flow_iterations == 0 {
        return Err(DetectError::InvalidConfig {
            reason: "max_flow_iterations must be at least 1 (a zero budget aborts the flow \
                     before the first fanout property)"
                .to_string(),
        });
    }
    Ok(())
}

/// Validates that the flow's decomposition applies to the design.
pub(crate) fn validate_design(design: &ValidatedDesign) -> Result<(), DetectError> {
    let d = design.design();
    if d.inputs().is_empty() {
        return Err(DetectError::NoInputs);
    }
    if d.state_and_output_signals().is_empty() {
        return Err(DetectError::NoStateOrOutputs);
    }
    Ok(())
}

/// Builder for [`DetectionSession`].
///
/// # Example
///
/// ```
/// use htd_core::{DetectionOutcome, SessionBuilder};
/// use htd_rtl::Design;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut d = Design::new("latch");
/// let input = d.add_input("in", 8)?;
/// let r = d.add_register("r", 8, 0)?;
/// d.set_register_next(r, d.signal(input))?;
/// d.add_output("out", d.signal(r))?;
///
/// let mut session = SessionBuilder::new(d.validated()?).build()?;
/// let report = session.run()?;
/// assert!(matches!(report.outcome, DetectionOutcome::Secure));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SessionBuilder {
    design: ValidatedDesign,
    config: DetectorConfig,
    backend: BackendChoice,
    engine: EngineChoice,
}

impl SessionBuilder {
    /// Starts a builder for the given design with the default configuration,
    /// the builtin backend and the sharded scheduler at its default worker
    /// count (the `HTD_JOBS` environment variable, or 1).
    #[must_use]
    pub fn new(design: ValidatedDesign) -> Self {
        SessionBuilder {
            design,
            config: DetectorConfig::default(),
            // Builtin unless HTD_PORTFOLIO supplies a racing portfolio
            // (panics on a malformed value — strict, like HTD_JOBS).
            backend: BackendChoice::default_from_env(),
            engine: EngineChoice::default(),
        }
    }

    /// Sets the detector configuration.
    #[must_use]
    pub fn config(mut self, config: DetectorConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the SAT backend.
    #[must_use]
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the property-checking engine.
    #[must_use]
    pub fn engine(mut self, engine: EngineChoice) -> Self {
        self.engine = engine;
        self
    }

    /// Shorthand: the sharded scheduler with up to `jobs` worker shards per
    /// fanout level.  The resulting reports are identical for every `jobs`
    /// value (see [`PropertyScheduler`]).
    #[must_use]
    pub fn jobs(self, jobs: NonZeroUsize) -> Self {
        self.engine(EngineChoice::Scheduled(PropertyScheduler::new(jobs)))
    }

    /// Builds the session: validates the design and the configuration and
    /// performs the session's single bit-blast.
    ///
    /// # Errors
    ///
    /// [`DetectError::NoInputs`] / [`DetectError::NoStateOrOutputs`] if the
    /// flow's decomposition does not apply to the design,
    /// [`DetectError::InvalidConfig`] for zero iteration budgets, and
    /// [`DetectError::Backend`] if the chosen backend cannot be brought up
    /// (e.g. an `ipasir:` library that does not load or misses required
    /// symbols).
    pub fn build(self) -> Result<DetectionSession, DetectError> {
        validate_design(&self.design)?;
        validate_config(&self.config)?;
        let miter = MiterSession::with_options(
            &self.design,
            self.config.checker,
            self.backend.instantiate()?,
        );
        Ok(self.assemble(miter))
    }

    /// Builds the session around an **existing** miter encoding instead of
    /// bit-blasting a fresh one — the zero-encode path for callers holding a
    /// cached frozen master: fork it ([`MiterSession::try_fork`], an O(bytes)
    /// arena copy) and wrap the fork in a session.  The fork must be pristine
    /// (never run) for the resulting reports to be byte-identical to a
    /// fresh session's; `backend` is recorded for bookkeeping only — the
    /// miter keeps whatever backend it was built with.
    ///
    /// # Errors
    ///
    /// The same validation errors as [`build`](Self::build) (the backend is
    /// not instantiated, so backend bring-up errors cannot occur here).
    ///
    /// # Panics
    ///
    /// Panics if `miter` was built for a different design than the builder's
    /// (by design name — the miter's encoding is meaningless for any other
    /// netlist).
    pub fn build_with_miter(self, miter: MiterSession) -> Result<DetectionSession, DetectError> {
        validate_design(&self.design)?;
        validate_config(&self.config)?;
        assert_eq!(
            miter.design_name(),
            self.design.design().name(),
            "miter session is bound to one design"
        );
        Ok(self.assemble(miter))
    }

    fn assemble(self, miter: MiterSession) -> DetectionSession {
        DetectionSession {
            design: self.design,
            config: self.config,
            backend: self.backend,
            engine: self.engine,
            miter,
            observers: Vec::new(),
            pipeline_stats: PipelineStats::default(),
            pool: None,
            cancel: None,
        }
    }
}

/// An owning, reusable detection engine bound to one design.
///
/// The session is the primary entry point of the toolkit (the borrow-tied
/// [`TrojanDetector`](crate::TrojanDetector) remains as a deprecated shim).
/// It keeps one live miter encoding across the whole flow: each property's
/// antecedent is expressed through solver assumptions and starting-state
/// variable sharing instead of re-encoding, so an N-property flow performs
/// one bit-blast instead of N.  See [`SessionBuilder`] for construction and
/// the [module docs](self) for the [`FlowEvent`] contract.
pub struct DetectionSession {
    design: ValidatedDesign,
    config: DetectorConfig,
    backend: BackendChoice,
    engine: EngineChoice,
    miter: MiterSession,
    observers: Vec<EventObserver>,
    pipeline_stats: PipelineStats,
    pool: Option<SharedSolvePool>,
    cancel: Option<Arc<AtomicBool>>,
}

impl std::fmt::Debug for DetectionSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionSession")
            .field("design", &self.design.design().name())
            .field("backend", &self.backend)
            .field("engine", &self.engine)
            .field("config", &self.config)
            .field("observers", &self.observers.len())
            .finish_non_exhaustive()
    }
}

impl DetectionSession {
    /// The design under analysis.
    #[must_use]
    pub fn design(&self) -> &ValidatedDesign {
        &self.design
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The chosen backend.
    #[must_use]
    pub fn backend(&self) -> &BackendChoice {
        &self.backend
    }

    /// The chosen property-checking engine.
    #[must_use]
    pub fn engine(&self) -> &EngineChoice {
        &self.engine
    }

    /// Counters of the underlying miter session (bit-blasts performed,
    /// properties checked, nodes encoded, queries issued, and the
    /// master-side snapshot-fork cost: `snapshot_forks` /
    /// `snapshot_bytes_cloned` measure the per-generation clones of the
    /// arena-backed clause store).
    #[must_use]
    pub fn session_stats(&self) -> SessionStats {
        self.miter.stats()
    }

    /// The master backend's cumulative counters (variables, clauses, queries
    /// and solver work including clause-GC and arena-compaction words
    /// reclaimed).  Unlike the per-run [`DetectionReport`], these may depend
    /// on how far the executor speculated.
    #[must_use]
    pub fn backend_stats(&self) -> htd_sat::BackendStats {
        self.miter.backend_stats()
    }

    /// Schedule counters of the most recent [`run`](Self::run) under the
    /// pipelined executor: generations prepared, tasks dispatched, the
    /// cross-level evidence — tasks that solved while a task of a different
    /// level was in flight — and the per-generation snapshot cost
    /// (`snapshot_forks` / `snapshot_bytes_cloned`: what freezing each
    /// generation's clause database actually copied).  All zero before the
    /// first run and for the sequential/non-forkable paths.  Unlike the
    /// report, these describe the schedule actually taken and may vary
    /// between runs.
    #[must_use]
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.pipeline_stats
    }

    /// Registers a streaming observer receiving every [`FlowEvent`] of
    /// subsequent [`run`](Self::run) calls.
    pub fn on_event(&mut self, observer: impl FnMut(&FlowEvent) + 'static) {
        self.observers.push(Box::new(observer));
    }

    /// Runs subsequent [`run`](Self::run) calls on the given shared worker
    /// pool instead of flow-owned threads: the session registers its ready
    /// queue with the pool for the duration of each run, and the pool's
    /// workers serve all registered sessions round-robin (see
    /// [`SharedSolvePool`]).  Reports are unaffected — the executor is
    /// schedule-invariant.  Only the pipelined engine uses the pool; the
    /// sequential engine and non-forkable backends solve on the calling
    /// thread as before.
    pub fn attach_pool(&mut self, pool: SharedSolvePool) {
        self.pool = Some(pool);
    }

    /// Installs an external cancellation flag for the **next**
    /// [`run`](Self::run): setting it to `true` from any thread interrupts
    /// in-flight solver tasks mid-search and makes the run return
    /// [`DetectError::Cancelled`].  The flag is one-shot — the run's
    /// wind-down sets it, so install a fresh flag per run.  The sequential
    /// engine honours it at property granularity (between graph nodes)
    /// rather than mid-solve.
    pub fn set_cancel_flag(&mut self, cancel: Arc<AtomicBool>) {
        self.cancel = Some(cancel);
    }

    /// The external cancellation flag installed with
    /// [`set_cancel_flag`](Self::set_cancel_flag), if any.
    #[must_use]
    pub fn cancel_flag(&self) -> Option<&Arc<AtomicBool>> {
        self.cancel.as_ref()
    }

    /// Runs the full detection flow: init property, fanout properties until
    /// the structural fixpoint, then the signal-coverage check.
    ///
    /// # Errors
    ///
    /// [`DetectError::IterationLimit`] / [`DetectError::ResolutionLimit`]
    /// when the configured safety bounds are exceeded, and
    /// [`DetectError::Backend`] if an external solver backend fails.
    pub fn run(&mut self) -> Result<DetectionReport, DetectError> {
        self.run_with_observer(&mut |_| {})
    }

    /// Like [`run`](Self::run), but additionally streams events to the given
    /// borrowed observer (handy when the observer captures short-lived
    /// state, which [`on_event`](Self::on_event)'s `'static` bound forbids).
    pub fn run_with_observer(
        &mut self,
        observer: &mut dyn FnMut(&FlowEvent),
    ) -> Result<DetectionReport, DetectError> {
        let DetectionSession {
            design,
            config,
            engine: engine_choice,
            miter,
            observers,
            pipeline_stats,
            pool,
            cancel,
            ..
        } = self;
        let mut emit = |event: &FlowEvent| {
            for registered in observers.iter_mut() {
                registered(event);
            }
            observer(event);
        };
        // Arm the run's solve budget, if any: the tracker rides this
        // session's miter (a run fork, never a cached pristine master — the
        // serve tier installs budgets per run) and is inherited by every
        // per-task shard forked during the run.  The tracker trips the
        // cancel flag on exhaustion, so a flag is materialized even when the
        // caller installed none.
        let tracker = if config.budget.is_unlimited() {
            None
        } else {
            let flag = cancel.get_or_insert_with(|| Arc::new(AtomicBool::new(false)));
            let tracker = Arc::new(BudgetTracker::start(config.budget, Arc::clone(flag)));
            miter.set_budget(Some(Arc::clone(&tracker)));
            Some(tracker)
        };
        let result = match engine_choice {
            EngineChoice::Sequential => {
                let mut engine = SessionEngine { miter };
                run_flow(design, config, &mut engine, cancel.as_ref(), &mut emit)
            }
            EngineChoice::Scheduled(scheduler) if miter.backend_can_fork() => run_pipelined(
                design,
                config,
                miter,
                scheduler,
                pool.as_ref(),
                cancel.as_ref(),
                &mut emit,
            )
            .map(|(report, stats)| {
                *pipeline_stats = stats;
                report
            }),
            EngineChoice::Scheduled(scheduler) => {
                // Non-forkable backends cannot pipeline (no frozen
                // snapshots); fall back to sharded level-at-a-time checking.
                let mut engine = SchedulerEngine {
                    miter,
                    jobs: scheduler.jobs(),
                };
                run_flow(design, config, &mut engine, cancel.as_ref(), &mut emit)
            }
        };
        let Some(tracker) = tracker else {
            return result;
        };
        miter.set_budget(None);
        match tracker.exhausted() {
            // Exhaustion surfaces engine-dependently (the kill switch makes
            // the pipelined executor report `Cancelled`, an interrupted
            // master query reports `Backend`); fold every post-exhaustion
            // failure into the one structured cause.  A run that reached its
            // verdict before the trip keeps it.
            Some(reason) if result.is_err() => Err(DetectError::BudgetExhausted {
                reason: reason.to_owned(),
                conflicts: tracker.conflicts(),
            }),
            _ => result,
        }
    }
}

/// Algorithm 1 of the paper as a walk over the planned [`FlowGraph`], generic
/// over the property-checking engine.
///
/// Shared by [`EngineChoice::Sequential`] and the legacy
/// [`TrojanDetector`](crate::TrojanDetector) (fresh-solve engine), so the two
/// paths cannot drift apart; the default pipelined executor
/// (`scheduler::run_pipelined`) walks the *same* graph with a worker pool.
/// There is no structural per-level loop here: the levels, their properties
/// and their dependency edges were all planned up front, and this driver
/// merely visits the nodes in id order, appending resolution nodes as
/// spurious counterexamples are diagnosed.
///
/// `cancel` is honoured at node granularity: the walk checks the flag before
/// every level (sequential engines run whole properties on the calling
/// thread, so there is no mid-solve interrupt point here — the pipelined
/// executor provides that).
pub(crate) fn run_flow(
    design: &ValidatedDesign,
    config: &DetectorConfig,
    engine: &mut dyn PropertyEngine,
    cancel: Option<&Arc<AtomicBool>>,
    emit: &mut dyn FnMut(&FlowEvent),
) -> Result<DetectionReport, DetectError> {
    let mut graph = FlowGraph::plan(design, config)?;
    // htd-lint: allow(determinism): feeds DetectionReport.total_duration only, which render_normalized() zeroes
    let start = Instant::now();
    let d = design.design();
    let names = |sigs: &[SignalId]| -> Vec<String> {
        sigs.iter().map(|&s| d.signal_name(s).to_string()).collect()
    };

    let mut fanout_levels: Vec<Vec<String>> = Vec::new();
    let mut properties: Vec<PropertyTrace> = Vec::new();
    let mut spurious_total = 0usize;
    let mut solver_totals = SolverStats::default();

    let report = |outcome: DetectionOutcome,
                  fanout_levels: Vec<Vec<String>>,
                  properties: Vec<PropertyTrace>,
                  spurious_resolved: usize,
                  solver_totals: SolverStats| DetectionReport {
        design: d.name().to_string(),
        outcome,
        fanout_levels,
        properties,
        spurious_resolved,
        solver_totals,
        total_duration: start.elapsed(),
    };

    let mut level_idx = 0usize;
    while graph.ensure_level(design, level_idx)? {
        if cancel.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
            return Err(DetectError::Cancelled);
        }
        let node = graph.level_node(level_idx).clone();
        let property = node.property.clone().expect("level nodes carry properties");
        fanout_levels.push(names(&node.signals));
        emit(&FlowEvent::LevelStarted {
            level: level_idx + 1,
            signals: names(&node.signals),
            node: node.id,
            deps: node.deps.clone(),
            dep_signals: names(&node.dep_signals),
        });
        let (trace, failed) = check_with_resolution(
            design,
            config,
            engine,
            property,
            &mut graph,
            node.id,
            emit,
            &mut solver_totals,
        )?;
        spurious_total += trace.spurious_resolved;
        properties.push(trace);
        if let Some(cex) = failed {
            let _ = engine.finish();
            let detected_by = if level_idx == 0 {
                DetectedBy::InitProperty
            } else {
                DetectedBy::FanoutProperty(level_idx)
            };
            return Ok(report(
                DetectionOutcome::PropertyFailed {
                    detected_by,
                    counterexample: Box::new(cex),
                },
                fanout_levels,
                properties,
                spurious_total,
                solver_totals,
            ));
        }
        level_idx += 1;
    }

    // The coverage node (case 2 of Sec. IV-D).
    let _ = engine.finish();
    let (coverage_node, covered, uncovered) = graph.finish_coverage(design)?;
    let uncovered = names(&uncovered);
    emit(&FlowEvent::Coverage {
        covered,
        uncovered: uncovered.clone(),
        node: coverage_node,
    });
    let outcome = if uncovered.is_empty() {
        DetectionOutcome::Secure
    } else {
        DetectionOutcome::UncoveredSignals { signals: uncovered }
    };
    Ok(report(
        outcome,
        fanout_levels,
        properties,
        spurious_total,
        solver_totals,
    ))
}

/// Checks one level node's property, resolving spurious counterexamples by
/// appending resolution-round nodes to the graph (Sec. V-B): each round
/// re-enqueues the property with equality assumptions for the waived benign
/// state.
#[allow(clippy::too_many_arguments)]
fn check_with_resolution(
    design: &ValidatedDesign,
    config: &DetectorConfig,
    engine: &mut dyn PropertyEngine,
    property: IntervalProperty,
    graph: &mut FlowGraph,
    level_node: usize,
    emit: &mut dyn FnMut(&FlowEvent),
    solver_totals: &mut SolverStats,
) -> Result<(PropertyTrace, Option<Counterexample>), DetectError> {
    let d = design.design();
    let proves: Vec<String> = property
        .prove_equal
        .iter()
        .map(|&s| d.signal_name(s).to_string())
        .collect();
    let mut current = property;
    let mut current_node = level_node;
    let mut resolved = 0usize;
    loop {
        let report: PropertyReport = engine.check(design, &current)?;
        // Totals include every resolution round, not just the final check.
        solver_totals.accumulate(&report.stats.solver);
        match &report.outcome {
            CheckOutcome::Holds => {
                emit(&FlowEvent::PropertyProved {
                    property: current.name.clone(),
                    duration: report.stats.duration,
                    spurious_resolved: resolved,
                    solver: report.stats.solver,
                    node: current_node,
                });
                return Ok((
                    PropertyTrace {
                        name: current.name.clone(),
                        proves,
                        report,
                        spurious_resolved: resolved,
                    },
                    None,
                ));
            }
            CheckOutcome::Fails(cex) => {
                let diag: Diagnosis =
                    diagnose(design, cex, &current.assume_equal, &config.benign_state);
                let spurious = diag.is_spurious();
                emit(&FlowEvent::CounterexampleFound {
                    property: current.name.clone(),
                    diffs: cex.diff_names().iter().map(ToString::to_string).collect(),
                    spurious,
                    solver: report.stats.solver,
                    node: current_node,
                });
                if spurious {
                    if resolved >= config.max_resolution_iterations {
                        return Err(DetectError::ResolutionLimit {
                            property: current.name.clone(),
                            limit: config.max_resolution_iterations,
                        });
                    }
                    resolved += 1;
                    // Assume the benign fanin of the whole level equal, not
                    // only the registers this model happened to flip: the
                    // engineer has disqualified all of it, and waiving it
                    // register-by-register would just replay the same
                    // divergence with a different benign cause next round.
                    let waived = crate::diagnosis::benign_fanin_of(
                        design,
                        &current.prove_equal,
                        &current.assume_equal,
                        &config.benign_state,
                    );
                    current = current.with_extra_assumptions(&waived);
                    current_node = graph.add_resolution(current_node, resolved, current.clone());
                    emit(&FlowEvent::ResolutionRound {
                        property: current.name.clone(),
                        round: resolved,
                        waived: waived
                            .iter()
                            .map(|&s| d.signal_name(s).to_string())
                            .collect(),
                        node: current_node,
                    });
                    continue;
                }
                let cex = (**cex).clone();
                return Ok((
                    PropertyTrace {
                        name: current.name.clone(),
                        proves,
                        report,
                        spurious_resolved: resolved,
                    },
                    Some(cex),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_rtl::Design;

    fn infected_design() -> ValidatedDesign {
        let mut d = Design::new("infected");
        let input = d.add_input("in", 8).unwrap();
        let trigger = d.add_register("trigger", 1, 0).unwrap();
        let result = d.add_register("result", 8, 0).unwrap();
        let magic = d.eq_const(d.signal(input), 0xA5).unwrap();
        let trig_next = d.or(d.signal(trigger), magic).unwrap();
        d.set_register_next(trigger, trig_next).unwrap();
        let flip = d.zero_ext(d.signal(trigger), 8).unwrap();
        let payload = d.xor(d.signal(input), flip).unwrap();
        d.set_register_next(result, payload).unwrap();
        d.add_output("out", d.signal(result)).unwrap();
        d.validated().unwrap()
    }

    fn clean_pipeline() -> ValidatedDesign {
        let mut d = Design::new("clean");
        let input = d.add_input("in", 8).unwrap();
        let s1 = d.add_register("s1", 8, 0).unwrap();
        let s2 = d.add_register("s2", 8, 0).unwrap();
        d.set_register_next(s1, d.signal(input)).unwrap();
        d.set_register_next(s2, d.signal(s1)).unwrap();
        d.add_output("out", d.signal(s2)).unwrap();
        d.validated().unwrap()
    }

    #[test]
    fn session_detects_the_trojan_with_one_bit_blast() {
        let mut session = SessionBuilder::new(infected_design()).build().unwrap();
        let report = session.run().unwrap();
        match &report.outcome {
            DetectionOutcome::PropertyFailed { detected_by, .. } => {
                assert_eq!(*detected_by, DetectedBy::InitProperty);
            }
            other => panic!("expected detection, got {other:?}"),
        }
        assert_eq!(session.session_stats().bit_blasts, 1);
    }

    #[test]
    fn session_verifies_a_clean_design_secure() {
        let mut session = SessionBuilder::new(clean_pipeline()).build().unwrap();
        let report = session.run().unwrap();
        assert!(report.outcome.is_secure(), "{report}");
        assert_eq!(report.properties_checked(), 3);
        let stats = session.session_stats();
        assert_eq!(stats.bit_blasts, 1);
        assert_eq!(stats.properties_checked, 3);
    }

    #[test]
    fn events_follow_the_documented_contract() {
        let mut session = SessionBuilder::new(clean_pipeline()).build().unwrap();
        let mut events: Vec<FlowEvent> = Vec::new();
        let report = session
            .run_with_observer(&mut |e| events.push(e.clone()))
            .unwrap();
        assert!(report.outcome.is_secure());

        let levels: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                FlowEvent::LevelStarted { level, .. } => Some(*level),
                _ => None,
            })
            .collect();
        assert_eq!(levels, vec![1, 2, 3]);
        let proved = events
            .iter()
            .filter(|e| matches!(e, FlowEvent::PropertyProved { .. }))
            .count();
        assert_eq!(proved, 3);
        assert!(
            matches!(events.last(), Some(FlowEvent::Coverage { uncovered, .. }) if uncovered.is_empty())
        );
    }

    #[test]
    fn registered_observers_see_every_run() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let counter = Rc::new(RefCell::new(0usize));
        let seen = Rc::clone(&counter);
        let mut session = SessionBuilder::new(clean_pipeline()).build().unwrap();
        session.on_event(move |_| *seen.borrow_mut() += 1);
        session.run().unwrap();
        let after_first = *counter.borrow();
        assert!(after_first > 0);
        session.run().unwrap();
        assert!(*counter.borrow() > after_first);
    }

    #[test]
    fn builder_selects_engines_and_reports_are_engine_invariant_on_verdicts() {
        let jobs = NonZeroUsize::new(3).unwrap();
        let mut sharded = SessionBuilder::new(infected_design())
            .jobs(jobs)
            .build()
            .unwrap();
        assert_eq!(
            *sharded.engine(),
            EngineChoice::Scheduled(PropertyScheduler::new(jobs))
        );
        let mut sequential = SessionBuilder::new(infected_design())
            .engine(EngineChoice::Sequential)
            .build()
            .unwrap();
        let a = sharded.run().unwrap();
        let b = sequential.run().unwrap();
        assert_eq!(a.outcome.detected_by(), b.outcome.detected_by());
    }

    #[test]
    fn proved_events_carry_solver_work_counters() {
        let mut session = SessionBuilder::new(clean_pipeline()).build().unwrap();
        let mut saw_proved = false;
        session
            .run_with_observer(&mut |event| {
                if let FlowEvent::PropertyProved { solver, .. } = event {
                    saw_proved = true;
                    // Counters are per-check deltas; they must not explode to
                    // session-cumulative values on a trivial design.
                    assert!(solver.conflicts < 1000);
                }
            })
            .unwrap();
        assert!(saw_proved);
    }

    #[test]
    fn a_preset_cancel_flag_aborts_both_engines() {
        let mut session = SessionBuilder::new(clean_pipeline()).build().unwrap();
        session.set_cancel_flag(Arc::new(AtomicBool::new(true)));
        assert_eq!(session.run().unwrap_err(), DetectError::Cancelled);
        let mut session = SessionBuilder::new(clean_pipeline())
            .engine(EngineChoice::Sequential)
            .build()
            .unwrap();
        session.set_cancel_flag(Arc::new(AtomicBool::new(true)));
        assert_eq!(session.run().unwrap_err(), DetectError::Cancelled);
    }

    #[test]
    fn cancelling_mid_run_surfaces_as_cancelled() {
        let flag = Arc::new(AtomicBool::new(false));
        let mut session = SessionBuilder::new(clean_pipeline()).build().unwrap();
        session.set_cancel_flag(Arc::clone(&flag));
        assert!(session
            .cancel_flag()
            .is_some_and(|installed| Arc::ptr_eq(installed, &flag)));
        // The first event fires before the first solve, so flipping the flag
        // there exercises the coordinator's between-task checks.
        let result = session.run_with_observer(&mut |_| flag.store(true, Ordering::SeqCst));
        assert_eq!(result.unwrap_err(), DetectError::Cancelled);
    }

    #[test]
    fn pooled_sessions_match_their_solo_reports() {
        let mut want_clean = SessionBuilder::new(clean_pipeline()).build().unwrap();
        let want_clean = want_clean.run().unwrap().normalized();
        let mut want_infected = SessionBuilder::new(infected_design()).build().unwrap();
        let want_infected = want_infected.run().unwrap().normalized();

        // Two tenants over one pool, concurrently; a cancelled third job must
        // not perturb either.
        let pool = SharedSolvePool::new(NonZeroUsize::new(2).unwrap());
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut session = SessionBuilder::new(clean_pipeline()).build().unwrap();
                session.attach_pool(pool.clone());
                assert_eq!(session.run().unwrap().normalized(), want_clean);
            });
            scope.spawn(|| {
                let mut session = SessionBuilder::new(infected_design()).build().unwrap();
                session.attach_pool(pool.clone());
                assert_eq!(session.run().unwrap().normalized(), want_infected);
            });
            scope.spawn(|| {
                let mut session = SessionBuilder::new(clean_pipeline()).build().unwrap();
                session.attach_pool(pool.clone());
                session.set_cancel_flag(Arc::new(AtomicBool::new(true)));
                assert_eq!(session.run().unwrap_err(), DetectError::Cancelled);
            });
        });
        pool.shutdown();
        pool.shutdown(); // idempotent
    }

    #[test]
    fn normalized_reports_compare_equal_across_runs() {
        let mut first = SessionBuilder::new(clean_pipeline()).build().unwrap();
        let mut second = SessionBuilder::new(clean_pipeline()).build().unwrap();
        assert_eq!(
            first.run().unwrap().normalized(),
            second.run().unwrap().normalized()
        );
    }

    #[test]
    fn builder_rejects_zero_iteration_budgets() {
        for (resolution, flow) in [(0usize, 4096usize), (16, 0)] {
            let config = DetectorConfig {
                max_resolution_iterations: resolution,
                max_flow_iterations: flow,
                ..DetectorConfig::default()
            };
            let err = SessionBuilder::new(clean_pipeline())
                .config(config)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, DetectError::InvalidConfig { .. }),
                "expected InvalidConfig, got {err:?}"
            );
        }
    }

    #[test]
    fn builder_rejects_inapplicable_designs() {
        let mut d = Design::new("no_inputs");
        let r = d.add_register("r", 1, 0).unwrap();
        let n = d.not(d.signal(r));
        d.set_register_next(r, n).unwrap();
        d.add_output("o", d.signal(r)).unwrap();
        let err = SessionBuilder::new(d.validated().unwrap())
            .build()
            .unwrap_err();
        assert_eq!(err, DetectError::NoInputs);
    }

    #[test]
    fn missing_dimacs_solver_surfaces_as_a_backend_error() {
        let mut session = SessionBuilder::new(infected_design())
            .backend(BackendChoice::dimacs("/nonexistent/solver"))
            .build()
            .unwrap();
        let err = session.run().unwrap_err();
        assert!(matches!(err, DetectError::Backend { .. }), "got {err:?}");
    }

    /// `validate` rejects unusable backends up front — a missing dimacs
    /// binary or ipasir library — while the builtin always passes.
    #[test]
    fn validate_rejects_missing_external_backends() {
        assert_eq!(BackendChoice::Builtin.validate(), Ok(()));
        let err = BackendChoice::dimacs("/nonexistent/solver")
            .validate()
            .unwrap_err();
        assert!(matches!(err, DetectError::Backend { .. }), "{err:?}");
        let err = BackendChoice::DimacsProcess("htd-no-such-binary".into(), Vec::new())
            .validate()
            .unwrap_err();
        assert!(matches!(err, DetectError::Backend { .. }), "{err:?}");
        assert!(BackendChoice::ipasir("/nonexistent/lib.so")
            .validate()
            .is_err());
        // A program that certainly exists on the test host passes.
        if std::path::Path::new("/bin/sh").is_file() {
            assert_eq!(BackendChoice::dimacs("/bin/sh").validate(), Ok(()));
        }
    }

    /// A bad `ipasir:` library fails at `build()` (the dlopen happens
    /// eagerly), not mid-flow like a missing process-backend binary.
    #[test]
    fn missing_ipasir_library_fails_at_session_build() {
        let err = SessionBuilder::new(infected_design())
            .backend(BackendChoice::ipasir("/nonexistent/libhtd-missing.so"))
            .build()
            .unwrap_err();
        match err {
            DetectError::Backend { message } => {
                assert!(message.contains("dlopen"), "{message}");
            }
            other => panic!("expected a backend error, got {other:?}"),
        }
    }

    #[test]
    fn backend_choice_parses_the_cli_syntax() {
        assert_eq!(
            "builtin".parse::<BackendChoice>().unwrap(),
            BackendChoice::Builtin
        );
        assert_eq!(
            "dimacs:/usr/bin/kissat".parse::<BackendChoice>().unwrap(),
            BackendChoice::dimacs("/usr/bin/kissat")
        );
        assert_eq!(
            "dimacs:htd sat".parse::<BackendChoice>().unwrap(),
            BackendChoice::DimacsProcess("htd".into(), vec!["sat".to_string()])
        );
        assert_eq!(
            "ipasir:target/release/libipasir_htd.so"
                .parse::<BackendChoice>()
                .unwrap(),
            BackendChoice::ipasir("target/release/libipasir_htd.so")
        );
        assert_eq!(BackendChoice::ipasir("lib.so").to_string(), "ipasir:lib.so");
        assert!("dimacs:".parse::<BackendChoice>().is_err());
        assert!("ipasir:".parse::<BackendChoice>().is_err());
        assert!("z3".parse::<BackendChoice>().is_err());
        assert_eq!(BackendChoice::default().to_string(), "builtin");
        assert_eq!(
            BackendChoice::DimacsProcess("htd".into(), vec!["sat".into()]).to_string(),
            "dimacs:htd sat"
        );
    }

    #[test]
    fn backend_choice_parses_the_portfolio_syntax() {
        assert_eq!(
            "portfolio:builtin,ipasir:lib.so"
                .parse::<BackendChoice>()
                .unwrap(),
            BackendChoice::portfolio(
                vec![BackendChoice::Builtin, BackendChoice::ipasir("lib.so")],
                RacePolicy::DeterministicCex,
            )
        );
        // The policy token is recognised anywhere in the member list.
        assert_eq!(
            "portfolio:fastest-cex,builtin,builtin"
                .parse::<BackendChoice>()
                .unwrap(),
            BackendChoice::portfolio(
                vec![BackendChoice::Builtin, BackendChoice::Builtin],
                RacePolicy::FastestCex,
            )
        );
        // Round-trips through Display: the policy suffix only appears when
        // it differs from the default.
        for spec in [
            "portfolio:builtin,ipasir:lib.so",
            "portfolio:builtin,builtin,fastest-cex",
            "portfolio:builtin,dimacs:htd sat",
        ] {
            let choice = spec.parse::<BackendChoice>().unwrap();
            assert_eq!(choice.to_string(), spec);
            assert_eq!(choice.to_string().parse::<BackendChoice>().unwrap(), choice);
        }

        let empty = "portfolio:".parse::<BackendChoice>().unwrap_err();
        assert!(empty.contains("empty member entry"), "{empty}");
        let only_policy = "portfolio:deterministic-cex"
            .parse::<BackendChoice>()
            .unwrap_err();
        assert!(only_policy.contains("at least one member"), "{only_policy}");
        let nested = "portfolio:builtin,portfolio:builtin"
            .parse::<BackendChoice>()
            .unwrap_err();
        assert!(nested.contains("cannot be portfolios"), "{nested}");
        let dup = "portfolio:builtin,fastest-cex,deterministic-cex"
            .parse::<BackendChoice>()
            .unwrap_err();
        assert!(dup.contains("more than one race policy"), "{dup}");
        let bad_member = "portfolio:builtin,z3".parse::<BackendChoice>().unwrap_err();
        assert!(bad_member.contains("member `z3`"), "{bad_member}");
    }

    #[test]
    fn portfolio_validation_recurses_into_members() {
        let good = BackendChoice::portfolio(
            vec![BackendChoice::Builtin, BackendChoice::Builtin],
            RacePolicy::DeterministicCex,
        );
        assert_eq!(good.validate(), Ok(()));
        let bad = BackendChoice::portfolio(
            vec![
                BackendChoice::Builtin,
                BackendChoice::ipasir("/nonexistent/libhtd-missing.so"),
            ],
            RacePolicy::DeterministicCex,
        );
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("libhtd-missing.so"));
    }

    #[test]
    fn a_portfolio_of_builtins_runs_the_flow() {
        let report = SessionBuilder::new(infected_design())
            .backend(BackendChoice::portfolio(
                vec![BackendChoice::Builtin, BackendChoice::Builtin],
                RacePolicy::DeterministicCex,
            ))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(matches!(
            report.outcome,
            DetectionOutcome::PropertyFailed { .. }
        ));
        assert!(report.solver_totals.race_solves > 0);
    }
}
