//! Error type of the detection flow.

use std::error::Error;
use std::fmt;

/// Errors reported by [`crate::TrojanDetector`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DetectError {
    /// The design has no primary inputs, so the input-fanout decomposition of
    /// the flow is not applicable.
    NoInputs,
    /// The design has no state or output signals, so there is nothing a
    /// Trojan payload could manifest in (and nothing to verify).
    NoStateOrOutputs,
    /// The iterative flow exceeded the configured iteration budget; this
    /// indicates a configuration error, since the number of iterations is
    /// bounded by the structural depth of the design.
    IterationLimit {
        /// The configured limit.
        limit: usize,
    },
    /// Spurious-counterexample resolution exceeded its iteration budget for a
    /// property.
    ResolutionLimit {
        /// The property that could not be resolved.
        property: String,
        /// The configured limit.
        limit: usize,
    },
    /// The detector configuration is self-contradictory (e.g. a zero
    /// iteration budget, which would make every run die with
    /// [`IterationLimit`](Self::IterationLimit) or
    /// [`ResolutionLimit`](Self::ResolutionLimit)).
    InvalidConfig {
        /// What is wrong with the configuration.
        reason: String,
    },
    /// The SAT backend failed (only process backends can fail — e.g. the
    /// external solver binary is missing or speaks a different output
    /// format).
    Backend {
        /// The underlying backend error.
        message: String,
    },
    /// The run was cancelled through the session's external cancellation
    /// flag ([`crate::DetectionSession::cancel_flag`]) before reaching a
    /// verdict: in-flight solver tasks were interrupted mid-search and their
    /// partial results discarded.  The service tier raises this when a client
    /// disconnects or deletes its job.
    Cancelled,
    /// The run's [`SolveBudget`](crate::SolveBudget) was exhausted before a
    /// verdict: the solver abandoned its in-flight queries and the flow wound
    /// down.  Partial progress (events already emitted) is valid; the verdict
    /// is simply unknown.
    BudgetExhausted {
        /// Which limit tripped: `"deadline"` or `"conflicts"`.
        reason: String,
        /// Conflicts charged to the budget before exhaustion (across every
        /// parallel shard of the job).
        conflicts: u64,
    },
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::NoInputs => write!(f, "design has no primary inputs"),
            DetectError::NoStateOrOutputs => {
                write!(f, "design has no state or output signals to verify")
            }
            DetectError::IterationLimit { limit } => {
                write!(f, "fanout iteration limit of {limit} exceeded")
            }
            DetectError::ResolutionLimit { property, limit } => write!(
                f,
                "spurious-counterexample resolution limit of {limit} exceeded for {property}"
            ),
            DetectError::InvalidConfig { reason } => {
                write!(f, "invalid detector configuration: {reason}")
            }
            DetectError::Backend { message } => write!(f, "SAT backend failed: {message}"),
            DetectError::Cancelled => write!(f, "detection run cancelled"),
            DetectError::BudgetExhausted { reason, conflicts } => write!(
                f,
                "solve budget exhausted ({reason}) after {conflicts} conflicts"
            ),
        }
    }
}

impl Error for DetectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(DetectError::NoInputs.to_string().contains("inputs"));
        assert!(DetectError::IterationLimit { limit: 3 }
            .to_string()
            .contains('3'));
        assert!(DetectError::ResolutionLimit {
            property: "fanout_property_2".into(),
            limit: 5
        }
        .to_string()
        .contains("fanout_property_2"));
        let exhausted = DetectError::BudgetExhausted {
            reason: "deadline".into(),
            conflicts: 42,
        };
        assert!(exhausted.to_string().contains("deadline"));
        assert!(exhausted.to_string().contains("42"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DetectError>();
    }
}
