//! The dependency-driven flow graph: Algorithm 1 as task nodes and edges.
//!
//! The paper presents the detection flow as a strictly sequential loop —
//! prove level *k*, resolve its spurious counterexamples, then move to level
//! *k + 1*.  Structurally, however, everything about that loop except the
//! verdicts is known without any solving: the fanout levels, their
//! properties, the antecedent each level assumes and the signals of the
//! previous level that actually feed each level's cone are all functions of
//! the netlist alone.  [`FlowGraph`] computes that structure and models the
//! flow as explicit nodes:
//!
//! * one [`FlowNodeKind::Level`] node per fanout level (the init property is
//!   level 1), carrying the level's [`IntervalProperty`] and a dependency
//!   edge to the previous level node, annotated with the *provenance* subset
//!   — the previous level's prove signals that occur in this level's
//!   antecedent cone;
//! * [`FlowNodeKind::Resolution`] nodes, appended dynamically when a level's
//!   counterexample is diagnosed as spurious: a resolution round is a
//!   re-enqueued node depending on the round before it, not an inner loop;
//! * one final [`FlowNodeKind::Coverage`] node depending on every level.
//!
//! Level nodes are planned **incrementally** ([`FlowGraph::ensure_level`]):
//! the structural walks behind a level (fanout computation, provenance
//! supports) only run when an executor actually reaches — or speculatively
//! prepares — that level, so a flow that dies on the init property pays for
//! one level of planning, exactly like the sequential loop it replaces.
//!
//! Executors walk the graph instead of re-deriving the loop: the sequential
//! reference engines visit nodes in id order, while the pipelined executor
//! (`htd-core`'s scheduler) prepares and solves independent sub-properties of
//! *different* level nodes concurrently, merging results in node order so
//! reports stay deterministic.  Node ids are stable across executors and are
//! surfaced in every [`FlowEvent`](crate::FlowEvent).

use std::collections::BTreeSet;

use htd_ipc::IntervalProperty;
use htd_rtl::structural::{drivers_support, get_fanout, uncovered_signals};
use htd_rtl::{SignalId, ValidatedDesign};

use crate::error::DetectError;
use crate::flow::DetectorConfig;

/// What a [`FlowNode`] contributes to the flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowNodeKind {
    /// A fanout level's unique-cause property (level 1 is the init property).
    Level {
        /// The 1-based level index (`fanouts_CCk`).
        level: usize,
    },
    /// A spurious-counterexample resolution round of a level: the level's
    /// property re-enqueued with equality assumptions for the waived benign
    /// state.
    Resolution {
        /// The 1-based level the round re-verifies.
        level: usize,
        /// The 1-based resolution round.
        round: usize,
    },
    /// The final signal-coverage check (case 2 of Sec. IV-D).
    Coverage,
}

/// One node of the flow graph.
#[derive(Clone, Debug)]
pub struct FlowNode {
    /// Stable node id.  Level nodes are numbered `0..` in flow order;
    /// resolution and coverage nodes take the next free id when appended.
    pub id: usize,
    /// The node's role in the flow.
    pub kind: FlowNodeKind,
    /// The property the node checks (`None` for the coverage node).
    pub property: Option<IntervalProperty>,
    /// Ids of the nodes this node depends on.  A level depends on the level
    /// before it, a resolution round on the node it re-verifies, coverage on
    /// every level.
    pub deps: Vec<usize>,
    /// Dependency provenance: the subset of the *previous* level's prove
    /// signals that actually feed this node's antecedent cone.  A level-`k+1`
    /// sub-property is independent of every level-`k` sub-property outside
    /// this set — the structural fact that makes cross-level pipelining
    /// sound.
    pub dep_signals: Vec<SignalId>,
    /// The signals the node proves equal (the level's prove set; empty for
    /// coverage).
    pub signals: Vec<SignalId>,
}

/// Planner state for the not-yet-planned suffix of levels.
#[derive(Clone, Debug)]
struct Frontier {
    /// Every signal covered by the levels planned so far.
    fanouts_all: BTreeSet<SignalId>,
    /// The newest planned level's prove set.
    fanouts_cck: Vec<SignalId>,
    /// The fanout-property index the next extension would create.
    k: usize,
}

/// The decomposition of one detection run: level nodes planned incrementally
/// in flow order, dynamically appended resolution nodes, and a coverage node
/// once the structural fixpoint is reached.
#[derive(Clone, Debug)]
pub struct FlowGraph {
    nodes: Vec<FlowNode>,
    /// Node ids of the level nodes in flow order.  Ids are assigned in
    /// *creation* order, and resolution nodes may be created between two
    /// lazily planned levels, so level `k`'s id is not necessarily `k`.
    level_ids: Vec<usize>,
    /// `Some` while further levels may exist; `None` once the structural
    /// fixpoint was reached.
    frontier: Option<Frontier>,
    max_flow_iterations: usize,
    assume_previously_proven: bool,
}

impl FlowGraph {
    /// Starts planning the flow for a design: computes `fanouts_CC1` and the
    /// init property (one structural walk).  Further levels are planned on
    /// demand by [`ensure_level`](Self::ensure_level).
    pub fn plan(
        design: &ValidatedDesign,
        config: &DetectorConfig,
    ) -> Result<FlowGraph, DetectError> {
        let d = design.design();
        let inputs = d.inputs();
        let fanouts_cc1 = get_fanout(design, &inputs);
        let nodes = vec![FlowNode {
            id: 0,
            kind: FlowNodeKind::Level { level: 1 },
            property: Some(IntervalProperty::new(
                "init_property",
                Vec::new(),
                fanouts_cc1.clone(),
            )),
            deps: Vec::new(),
            dep_signals: Vec::new(),
            signals: fanouts_cc1.clone(),
        }];
        Ok(FlowGraph {
            nodes,
            level_ids: vec![0],
            frontier: Some(Frontier {
                fanouts_all: BTreeSet::new(),
                fanouts_cck: fanouts_cc1,
                k: 1,
            }),
            max_flow_iterations: config.max_flow_iterations,
            assume_previously_proven: config.assume_previously_proven,
        })
    }

    /// Plans levels until level index `idx` (0-based) exists or the
    /// structural fixpoint is reached, and returns whether it exists.
    /// Each extension replays one iteration of Algorithm 1's loop: extend
    /// the covered set, compute the next fanout level, stop when it adds no
    /// new signal (Alg. 1, line 16).
    ///
    /// # Errors
    ///
    /// [`DetectError::IterationLimit`] when planning level `idx` would
    /// exceed `max_flow_iterations` — surfaced exactly when an executor
    /// reaches that level, matching the sequential loop it replaces.
    pub fn ensure_level(
        &mut self,
        design: &ValidatedDesign,
        idx: usize,
    ) -> Result<bool, DetectError> {
        while idx >= self.level_ids.len() {
            let Some(frontier) = &mut self.frontier else {
                return Ok(false);
            };
            if frontier.k > self.max_flow_iterations {
                return Err(DetectError::IterationLimit {
                    limit: self.max_flow_iterations,
                });
            }
            frontier
                .fanouts_all
                .extend(frontier.fanouts_cck.iter().copied());
            let fanouts_next = get_fanout(design, &frontier.fanouts_cck);
            let adds_new = fanouts_next
                .iter()
                .any(|s| !frontier.fanouts_all.contains(s));
            if !adds_new {
                self.frontier = None;
                return Ok(false);
            }
            let mut assume = frontier.fanouts_cck.clone();
            if self.assume_previously_proven {
                for &s in &frontier.fanouts_all {
                    if !assume.contains(&s) {
                        assume.push(s);
                    }
                }
            }
            let k = frontier.k;
            let prev_id = *self.level_ids.last().expect("level 1 exists");
            let prev_set: BTreeSet<SignalId> = frontier.fanouts_cck.iter().copied().collect();
            let dep_signals = feeding_signals(design, &fanouts_next, &prev_set);
            frontier.fanouts_cck = fanouts_next.clone();
            frontier.k += 1;
            let id = self.nodes.len();
            self.level_ids.push(id);
            self.nodes.push(FlowNode {
                id,
                kind: FlowNodeKind::Level { level: k + 1 },
                property: Some(IntervalProperty::new(
                    format!("fanout_property_{k}"),
                    assume,
                    fanouts_next.clone(),
                )),
                deps: vec![prev_id],
                dep_signals,
                signals: fanouts_next,
            });
        }
        Ok(true)
    }

    /// Finishes planning (reaches the structural fixpoint if executors have
    /// not already) and appends the coverage node.  Returns
    /// `(coverage node id, covered signal count, uncovered signals)`.
    ///
    /// # Errors
    ///
    /// [`DetectError::IterationLimit`] if the fixpoint lies beyond
    /// `max_flow_iterations`.
    pub fn finish_coverage(
        &mut self,
        design: &ValidatedDesign,
    ) -> Result<(usize, usize, Vec<SignalId>), DetectError> {
        // Drive planning to the fixpoint (no-op when executors already did).
        let _ = self.ensure_level(design, usize::MAX - 1)?;
        let mut covered: BTreeSet<SignalId> = BTreeSet::new();
        for &level_id in &self.level_ids {
            covered.extend(self.nodes[level_id].signals.iter().copied());
        }
        let covered: Vec<SignalId> = covered.into_iter().collect();
        let uncovered = uncovered_signals(design, &covered);
        let id = self.nodes.len();
        self.nodes.push(FlowNode {
            id,
            kind: FlowNodeKind::Coverage,
            property: None,
            deps: self.level_ids.clone(),
            dep_signals: Vec::new(),
            signals: Vec::new(),
        });
        Ok((id, covered.len(), uncovered))
    }

    /// Number of level nodes planned so far (more may appear via
    /// [`ensure_level`](Self::ensure_level)).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.level_ids.len()
    }

    /// The node of the 0-based level index (planned by a prior
    /// [`ensure_level`](Self::ensure_level) call).  Level index and node id
    /// differ once resolution nodes interleave with lazy planning — always
    /// address levels through this accessor.
    ///
    /// # Panics
    ///
    /// Panics if the level has not been planned.
    #[must_use]
    pub fn level_node(&self, idx: usize) -> &FlowNode {
        &self.nodes[self.level_ids[idx]]
    }

    /// `true` once the structural fixpoint is reached: no level beyond
    /// `level_count() - 1` exists.
    #[must_use]
    pub fn levels_complete(&self) -> bool {
        self.frontier.is_none()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: usize) -> &FlowNode {
        &self.nodes[id]
    }

    /// All nodes planned so far.
    #[must_use]
    pub fn nodes(&self) -> &[FlowNode] {
        &self.nodes
    }

    /// Appends a resolution-round node depending on `prev_node` — the level
    /// node for round 1, the previous round's node afterwards: the level's
    /// property re-enqueued with the round's extra equality assumptions.
    /// Returns the new node's id (deterministic: rounds are discovered in
    /// merge order).
    pub fn add_resolution(
        &mut self,
        prev_node: usize,
        round: usize,
        property: IntervalProperty,
    ) -> usize {
        let level = match self.nodes[prev_node].kind {
            FlowNodeKind::Level { level } | FlowNodeKind::Resolution { level, .. } => level,
            FlowNodeKind::Coverage => unreachable!("coverage has no resolution rounds"),
        };
        let id = self.nodes.len();
        let signals = self.nodes[prev_node].signals.clone();
        self.nodes.push(FlowNode {
            id,
            kind: FlowNodeKind::Resolution { level, round },
            property: Some(property),
            deps: vec![prev_node],
            dep_signals: Vec::new(),
            signals,
        });
        id
    }
}

/// The subset of `prev` (the previous level's prove set) lying in the
/// combinational support of any signal in `next` — the dependency provenance
/// of a level edge.
fn feeding_signals(
    design: &ValidatedDesign,
    next: &[SignalId],
    prev: &BTreeSet<SignalId>,
) -> Vec<SignalId> {
    drivers_support(design, next)
        .into_iter()
        .filter(|s| prev.contains(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_rtl::Design;

    fn pipeline() -> ValidatedDesign {
        let mut d = Design::new("pipeline");
        let input = d.add_input("in", 8).unwrap();
        let s1 = d.add_register("s1", 8, 0).unwrap();
        let s2 = d.add_register("s2", 8, 0).unwrap();
        d.set_register_next(s1, d.signal(input)).unwrap();
        d.set_register_next(s2, d.signal(s1)).unwrap();
        d.add_output("out", d.signal(s2)).unwrap();
        d.validated().unwrap()
    }

    #[test]
    fn plans_levels_lazily_then_appends_coverage() {
        let design = pipeline();
        let mut graph = FlowGraph::plan(&design, &DetectorConfig::default()).unwrap();
        // Planning starts with only the init level.
        assert_eq!(graph.level_count(), 1);
        assert!(!graph.levels_complete());
        assert_eq!(graph.node(0).kind, FlowNodeKind::Level { level: 1 });
        assert_eq!(
            graph.node(0).property.as_ref().unwrap().name,
            "init_property"
        );
        // Demanding level 1 plans it; the design has 3 levels in total.
        assert!(graph.ensure_level(&design, 1).unwrap());
        assert_eq!(
            graph.node(1).property.as_ref().unwrap().name,
            "fanout_property_1"
        );
        assert!(graph.ensure_level(&design, 2).unwrap());
        assert!(!graph.ensure_level(&design, 3).unwrap());
        assert!(graph.levels_complete());
        assert_eq!(graph.level_count(), 3);
        let (coverage, covered, uncovered) = graph.finish_coverage(&design).unwrap();
        assert_eq!(graph.node(coverage).kind, FlowNodeKind::Coverage);
        assert_eq!(covered, 3);
        assert!(uncovered.is_empty());
    }

    #[test]
    fn level_edges_carry_signal_provenance() {
        let design = pipeline();
        let d = design.design();
        let mut graph = FlowGraph::plan(&design, &DetectorConfig::default()).unwrap();
        assert!(graph.ensure_level(&design, 1).unwrap());
        // Level 2 proves s2, whose driver reads s1 — the provenance edge
        // names exactly s1 out of level 1's prove set.
        let s1 = d.require("s1").unwrap();
        assert_eq!(graph.node(1).deps, vec![0]);
        assert_eq!(graph.node(1).dep_signals, vec![s1]);
        // Coverage depends on every level.
        let (coverage, _, _) = graph.finish_coverage(&design).unwrap();
        assert_eq!(graph.node(coverage).deps, vec![0, 1, 2]);
    }

    #[test]
    fn resolution_rounds_are_appended_nodes() {
        let design = pipeline();
        let mut graph = FlowGraph::plan(&design, &DetectorConfig::default()).unwrap();
        assert!(graph.ensure_level(&design, 1).unwrap());
        let property = graph.node(1).property.clone().unwrap();
        let id = graph.add_resolution(1, 1, property);
        assert_eq!(id, 2);
        assert_eq!(
            graph.node(id).kind,
            FlowNodeKind::Resolution { level: 2, round: 1 }
        );
        assert_eq!(graph.node(id).deps, vec![1]);
    }

    #[test]
    fn planning_respects_the_iteration_limit() {
        let design = pipeline();
        let config = DetectorConfig {
            max_flow_iterations: 1,
            ..DetectorConfig::default()
        };
        let mut graph = FlowGraph::plan(&design, &config).unwrap();
        // Level 1 (fanout_property_1) fits the budget; level 2 exceeds it.
        assert!(graph.ensure_level(&design, 1).unwrap());
        let err = graph.ensure_level(&design, 2).unwrap_err();
        assert_eq!(err, DetectError::IterationLimit { limit: 1 });
    }
}
