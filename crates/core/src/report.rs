//! Detection-flow results and reporting.

use std::fmt;
use std::time::Duration;

use htd_ipc::{Counterexample, PropertyReport};
use htd_sat::SolverStats;

/// Which mechanism of the flow detected (or would detect) the Trojan —
/// matching the "Detected by" column of Table I in the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectedBy {
    /// The init property failed (divergence one cycle after the inputs).
    InitProperty,
    /// Fanout property `k` failed (divergence `k + 1` cycles after the
    /// inputs).
    FanoutProperty(usize),
    /// All properties held but the final coverage check found state/output
    /// signals unreachable from the inputs (case 2 of Sec. IV-D).
    CoverageCheck,
}

impl fmt::Display for DetectedBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectedBy::InitProperty => write!(f, "init_property"),
            DetectedBy::FanoutProperty(k) => write!(f, "fanout_property_{k}"),
            DetectedBy::CoverageCheck => write!(f, "coverage_check"),
        }
    }
}

/// Overall verdict of one detection run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectionOutcome {
    /// Every property holds and every state/output signal is covered: the
    /// design is free of sequential Trojans (with respect to the RTL model).
    Secure,
    /// A property failed even after spurious-counterexample resolution; the
    /// counterexample points at the potential Trojan payload.
    PropertyFailed {
        /// Which property failed.
        detected_by: DetectedBy,
        /// The counterexample produced by the property checker.
        counterexample: Box<Counterexample>,
    },
    /// All properties hold, but some state/output signals never appear in any
    /// fanout level; they are unreachable from the inputs and must be
    /// inspected manually (they may implement an input-independent Trojan).
    UncoveredSignals {
        /// Names of the uncovered signals.
        signals: Vec<String>,
    },
}

impl DetectionOutcome {
    /// `true` if the design was verified secure.
    #[must_use]
    pub fn is_secure(&self) -> bool {
        matches!(self, DetectionOutcome::Secure)
    }

    /// The detection mechanism, if the design was *not* verified secure.
    #[must_use]
    pub fn detected_by(&self) -> Option<DetectedBy> {
        match self {
            DetectionOutcome::Secure => None,
            DetectionOutcome::PropertyFailed { detected_by, .. } => Some(detected_by.clone()),
            DetectionOutcome::UncoveredSignals { .. } => Some(DetectedBy::CoverageCheck),
        }
    }
}

/// Record of one checked property, including spurious-counterexample
/// resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropertyTrace {
    /// The property name (`init_property`, `fanout_property_k`).
    pub name: String,
    /// Names of the signals proven equal by this property.
    pub proves: Vec<String>,
    /// The final report (after any resolution iterations).
    pub report: PropertyReport,
    /// How many spurious counterexamples were discharged by adding equality
    /// assumptions (Sec. V-B) before the final verdict.
    pub spurious_resolved: usize,
}

/// The full result of a detection run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectionReport {
    /// Name of the analysed design.
    pub design: String,
    /// Overall verdict.
    pub outcome: DetectionOutcome,
    /// Signal names per fanout level (`fanouts_CC1`, `fanouts_CC2`, …).
    pub fanout_levels: Vec<Vec<String>>,
    /// Per-property traces in the order they were checked.
    pub properties: Vec<PropertyTrace>,
    /// Total number of spurious counterexamples resolved across the run.
    pub spurious_resolved: usize,
    /// Aggregate solver work across every check of the run, including
    /// resolution rounds: conflicts, propagations, restarts, clause-GC runs,
    /// clauses collected, learnt-LBD totals, and the fork cost model of the
    /// arena-backed solver stores — `fork_count` / `bytes_cloned` count one
    /// fork per consumed solve task (schedule-invariant: the cloned content
    /// is byte-identical whether a task forked off a frozen snapshot or
    /// straight off the unmutated master), `watcher_bytes_cloned` is the
    /// slice of those bytes spent on the flat watcher arena (zero for
    /// backends without an observable watcher store), and
    /// `arena_words_reclaimed` totals the compaction sweeps.
    pub solver_totals: SolverStats,
    /// Wall-clock duration of the whole flow.
    pub total_duration: Duration,
}

impl DetectionReport {
    /// Number of properties checked (init plus fanout properties).
    #[must_use]
    pub fn properties_checked(&self) -> usize {
        self.properties.len()
    }

    /// The longest single property check, if any property was checked.
    #[must_use]
    pub fn slowest_property(&self) -> Option<(&str, Duration)> {
        self.properties
            .iter()
            .map(|p| (p.name.as_str(), p.report.stats.duration))
            .max_by_key(|(_, d)| *d)
    }

    /// A copy of this report with every wall-clock-dependent field zeroed:
    /// the flow total, each property's check time, and the race outcome
    /// counters a portfolio backend records (`race_wins`, `race_cancels`,
    /// wasted conflicts, cancel latency — which member crossed the finish
    /// line first is a scheduling accident, even though the *verdict* is
    /// not).  `race_solves` stays: the number of raced queries is as
    /// deterministic as the query count itself.
    ///
    /// Two detection runs over the same design are *deterministic* up to
    /// wall-clock time: the sharded scheduler guarantees identical verdicts,
    /// counterexamples and work counters for any worker count, so
    /// `a.normalized() == b.normalized()` compares entire reports
    /// byte-for-byte.  The determinism suite relies on this.
    #[must_use]
    pub fn normalized(&self) -> DetectionReport {
        fn settle_races(stats: &mut SolverStats) {
            stats.race_wins = 0;
            stats.race_cancels = 0;
            stats.race_wasted_conflicts = 0;
            stats.race_cancel_latency_us = 0;
        }
        let mut report = self.clone();
        report.total_duration = Duration::ZERO;
        settle_races(&mut report.solver_totals);
        for trace in &mut report.properties {
            trace.report.stats.duration = Duration::ZERO;
            settle_races(&mut trace.report.stats.solver);
        }
        report
    }

    /// Short, single-line summary (used by the Table-I harness).
    #[must_use]
    pub fn summary(&self) -> String {
        match &self.outcome {
            DetectionOutcome::Secure => format!("{}: SECURE", self.design),
            DetectionOutcome::PropertyFailed {
                detected_by,
                counterexample,
            } => format!(
                "{}: trojan suspected ({}; diverging: {})",
                self.design,
                detected_by,
                counterexample.diff_names().join(", ")
            ),
            DetectionOutcome::UncoveredSignals { signals } => format!(
                "{}: trojan suspected (coverage_check; uncovered: {})",
                self.design,
                signals.join(", ")
            ),
        }
    }
}

impl fmt::Display for DetectionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "detection report for `{}`", self.design)?;
        writeln!(
            f,
            "  {} fanout levels, {} properties checked, {} spurious CEX resolved, {:.3}s total",
            self.fanout_levels.len(),
            self.properties.len(),
            self.spurious_resolved,
            self.total_duration.as_secs_f64()
        )?;
        writeln!(
            f,
            "  solver: {} conflicts, {} propagations, {} restarts, {} GC runs collecting {} \
             clauses",
            self.solver_totals.conflicts,
            self.solver_totals.propagations,
            self.solver_totals.restarts,
            self.solver_totals.gc_runs,
            self.solver_totals.clauses_collected
        )?;
        writeln!(
            f,
            "  snapshots: {} forks copying {} bytes ({} arena words reclaimed by GC)",
            self.solver_totals.fork_count,
            self.solver_totals.bytes_cloned,
            self.solver_totals.arena_words_reclaimed
        )?;
        // Only rendered when a portfolio actually raced: single-backend runs
        // keep their rendered reports byte-identical to earlier releases.
        if self.solver_totals.race_solves > 0 || self.solver_totals.race_cancels > 0 {
            writeln!(
                f,
                "  portfolio: {} races, {} racer wins, {} cancels wasting {} conflicts",
                self.solver_totals.race_solves,
                self.solver_totals.race_wins,
                self.solver_totals.race_cancels,
                self.solver_totals.race_wasted_conflicts
            )?;
        }
        for trace in &self.properties {
            writeln!(
                f,
                "  {:<22} {:>5} signals  {:>9} AIG nodes  {:>7.3}s  {}",
                trace.name,
                trace.proves.len(),
                trace.report.stats.aig_nodes,
                trace.report.stats.duration.as_secs_f64(),
                if trace.report.holds() {
                    "holds"
                } else {
                    "FAILS"
                }
            )?;
        }
        match &self.outcome {
            DetectionOutcome::Secure => writeln!(f, "  verdict: SECURE")?,
            DetectionOutcome::PropertyFailed {
                detected_by,
                counterexample,
            } => {
                writeln!(f, "  verdict: TROJAN SUSPECTED (detected by {detected_by})")?;
                write!(f, "{counterexample}")?;
            }
            DetectionOutcome::UncoveredSignals { signals } => {
                writeln!(f, "  verdict: TROJAN SUSPECTED (coverage check)")?;
                writeln!(f, "  uncovered signals: {}", signals.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detected_by_display_matches_table_terms() {
        assert_eq!(DetectedBy::InitProperty.to_string(), "init_property");
        assert_eq!(
            DetectedBy::FanoutProperty(21).to_string(),
            "fanout_property_21"
        );
        assert_eq!(DetectedBy::CoverageCheck.to_string(), "coverage_check");
    }

    #[test]
    fn outcome_helpers() {
        assert!(DetectionOutcome::Secure.is_secure());
        assert_eq!(DetectionOutcome::Secure.detected_by(), None);
        let uncovered = DetectionOutcome::UncoveredSignals {
            signals: vec!["timer".into()],
        };
        assert!(!uncovered.is_secure());
        assert_eq!(uncovered.detected_by(), Some(DetectedBy::CoverageCheck));
    }
}
