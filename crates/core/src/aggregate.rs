//! The aggregate *trojan property* (Fig. 3 of the paper) and the empirical
//! validation of Theorem 1.
//!
//! The iterative flow checks one single-cycle property per fanout level.
//! Theorem 1 states that this decomposition is sound and complete with respect
//! to the aggregate property that checks all levels in one multi-cycle proof:
//! *at least one decomposed property fails iff the aggregate property fails*.
//! This module exposes the aggregate check so tests and benchmarks can compare
//! the two formulations on the same designs (experiment E7 of DESIGN.md).

use htd_ipc::{CheckerOptions, PropertyChecker, PropertyReport};
use htd_rtl::structural::fanout_levels;
use htd_rtl::{SignalId, ValidatedDesign};

/// The fanout levels (`fanouts_CC1`, `fanouts_CC2`, …) used by both the
/// aggregate property and the decomposed flow, computed exactly as in
/// Algorithm 1.
#[must_use]
pub fn trojan_property_levels(design: &ValidatedDesign) -> Vec<Vec<SignalId>> {
    fanout_levels(design)
}

/// Checks the aggregate trojan property of Fig. 3: assuming equal inputs at
/// every time frame, the two instances' `fanouts_CCk` sets must be equal at
/// `t + k` for every level `k`.
///
/// Returns the usual property report; a counterexample's `frame` field tells
/// which level diverged.
///
/// # Example
///
/// ```
/// use htd_core::aggregate::check_trojan_property;
/// use htd_rtl::Design;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// let mut d = Design::new("passthrough");
/// let i = d.add_input("i", 4)?;
/// let r = d.add_register("r", 4, 0)?;
/// d.set_register_next(r, d.signal(i))?;
/// d.add_output("o", d.signal(r))?;
/// let design = d.validated()?;
/// assert!(check_trojan_property(&design).holds());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn check_trojan_property(design: &ValidatedDesign) -> PropertyReport {
    check_trojan_property_with_options(design, CheckerOptions::default())
}

/// [`check_trojan_property`] with explicit checker options.
#[must_use]
pub fn check_trojan_property_with_options(
    design: &ValidatedDesign,
    options: CheckerOptions,
) -> PropertyReport {
    let levels = trojan_property_levels(design);
    let checker = PropertyChecker::with_options(design, options);
    checker.check_aggregate(&levels, "trojan_property")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DetectionOutcome, SessionBuilder};
    use htd_rtl::Design;

    fn clean_design() -> ValidatedDesign {
        let mut d = Design::new("clean");
        let input = d.add_input("in", 4).unwrap();
        let a = d.add_register("a", 4, 0).unwrap();
        let b = d.add_register("b", 4, 0).unwrap();
        d.set_register_next(a, d.signal(input)).unwrap();
        let inc = {
            let one = d.constant(1, 4).unwrap();
            d.add(d.signal(a), one).unwrap()
        };
        d.set_register_next(b, inc).unwrap();
        d.add_output("out", d.signal(b)).unwrap();
        d.validated().unwrap()
    }

    fn infected_design() -> ValidatedDesign {
        let mut d = Design::new("infected");
        let input = d.add_input("in", 4).unwrap();
        let a = d.add_register("a", 4, 0).unwrap();
        let b = d.add_register("b", 4, 0).unwrap();
        let timer = d.add_register("timer", 3, 0).unwrap();
        let one3 = d.constant(1, 3).unwrap();
        let t_next = d.add(d.signal(timer), one3).unwrap();
        d.set_register_next(timer, t_next).unwrap();
        d.set_register_next(a, d.signal(input)).unwrap();
        let armed = d.eq_const(d.signal(timer), 7).unwrap();
        let flip = d.zero_ext(armed, 4).unwrap();
        let payload = d.xor(d.signal(a), flip).unwrap();
        d.set_register_next(b, payload).unwrap();
        d.add_output("out", d.signal(b)).unwrap();
        d.validated().unwrap()
    }

    #[test]
    fn aggregate_property_holds_on_clean_design() {
        let design = clean_design();
        let report = check_trojan_property(&design);
        assert!(report.holds(), "{report:?}");
    }

    #[test]
    fn aggregate_property_fails_on_infected_design() {
        let design = infected_design();
        let report = check_trojan_property(&design);
        assert!(!report.holds());
        let cex = report.outcome.counterexample().unwrap();
        // The payload manifests in register `b`, two cycles from the inputs.
        assert!(cex.diff_names().contains(&"b") || cex.diff_names().contains(&"out"));
        assert!(cex.frame >= 2);
    }

    #[test]
    fn theorem_1_decomposition_agrees_with_aggregate_on_both_designs() {
        for design in [clean_design(), infected_design()] {
            let aggregate_fails = !check_trojan_property(&design).holds();
            let report = SessionBuilder::new(design.clone())
                .build()
                .unwrap()
                .run()
                .unwrap();
            let decomposed_fails =
                matches!(report.outcome, DetectionOutcome::PropertyFailed { .. });
            assert_eq!(
                aggregate_fails,
                decomposed_fails,
                "Theorem 1 violated on {}",
                design.design().name()
            );
        }
    }

    #[test]
    fn levels_match_structural_fixpoint() {
        let design = clean_design();
        let levels = trojan_property_levels(&design);
        assert_eq!(levels.len(), 3); // a, then b, then out
    }
}
