//! Counterexample replay: turn a failed property's counterexample into
//! concrete simulation traces (one per miter instance) that a waveform
//! viewer can display.
//!
//! The property checker returns symbolic-start counterexamples: a starting
//! state per instance plus the shared input values per time frame.  Replaying
//! them on the cycle-accurate simulator serves two purposes:
//!
//! * it double-checks the prover against an independent execution semantics
//!   (the divergence it claims must actually appear), and
//! * it produces VCD waveforms the verification engineer can inspect while
//!   deciding whether the behaviour is a Trojan or a spurious
//!   counterexample (Sec. V-B of the paper).

use htd_ipc::Counterexample;
use htd_rtl::export::TraceRecorder;
use htd_rtl::sim::Simulator;
use htd_rtl::{DesignError, ValidatedDesign};

/// The replayed traces of the two miter instances.
#[derive(Clone, Debug)]
pub struct ReplayedCounterexample {
    /// VCD waveform of instance 1 (the one whose Trojan the solver chose to
    /// trigger).
    pub instance1_vcd: String,
    /// VCD waveform of instance 2.
    pub instance2_vcd: String,
    /// Signal names that differ between the instances at the end of the
    /// replay — for a genuine counterexample this is non-empty and contains
    /// the signals reported by the property checker.
    pub diverging_signals: Vec<String>,
}

/// Replays a counterexample on the simulator, one run per miter instance.
///
/// Each run starts from the counterexample's per-instance starting state,
/// applies the shared input values frame by frame, and records every input,
/// register and output into a VCD trace.
///
/// # Errors
///
/// Propagates simulator errors (an input name or value outside the design),
/// which would indicate a malformed counterexample.
///
/// # Example
///
/// ```
/// use htd_core::replay::replay_counterexample;
/// use htd_core::{DetectionOutcome, TrojanDetector};
/// use htd_rtl::Design;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 1-bit Trojan: a latched trigger flips the data path.
/// let mut d = Design::new("tiny");
/// let input = d.add_input("in", 1)?;
/// let trigger = d.add_register("trigger", 1, 0)?;
/// let data = d.add_register("data", 1, 0)?;
/// let armed = d.or(d.signal(trigger), d.signal(input))?;
/// d.set_register_next(trigger, armed)?;
/// let payload = d.xor(d.signal(input), d.signal(trigger))?;
/// d.set_register_next(data, payload)?;
/// d.add_output("out", d.signal(data))?;
/// let design = d.validated()?;
///
/// let report = TrojanDetector::new(&design)?.run()?;
/// let DetectionOutcome::PropertyFailed { counterexample, .. } = &report.outcome else {
///     panic!("the Trojan is detected");
/// };
/// let replay = replay_counterexample(&design, counterexample)?;
/// assert!(!replay.diverging_signals.is_empty());
/// assert!(replay.instance1_vcd.contains("$enddefinitions"));
/// # Ok(())
/// # }
/// ```
pub fn replay_counterexample(
    design: &ValidatedDesign,
    cex: &Counterexample,
) -> Result<ReplayedCounterexample, DesignError> {
    let d = design.design();
    let mut recorders = Vec::new();
    let mut final_values: Vec<Vec<u128>> = Vec::new();

    for instance in 0..2 {
        let mut sim = Simulator::new(design);
        for state in &cex.starting_state {
            let value = if instance == 0 {
                state.instance1
            } else {
                state.instance2
            };
            sim.set_register(state.signal, value)?;
        }
        let mut recorder = TraceRecorder::all_signals(design);
        for frame in &cex.inputs {
            for (name, value) in frame {
                sim.set_input_by_name(name, *value)?;
            }
            recorder.record(&sim);
            sim.step()?;
        }
        recorder.record(&sim);
        final_values.push(
            recorder
                .signals()
                .iter()
                .map(|&s| sim.peek(s))
                .collect::<Vec<u128>>(),
        );
        recorders.push(recorder);
    }

    let diverging_signals = recorders[0]
        .signals()
        .iter()
        .enumerate()
        .filter(|(i, _)| final_values[0][*i] != final_values[1][*i])
        .map(|(_, &s)| d.signal_name(s).to_string())
        .collect();

    let instance2_vcd = recorders.pop().expect("two instances").to_vcd("instance2");
    let instance1_vcd = recorders.pop().expect("two instances").to_vcd("instance1");
    Ok(ReplayedCounterexample {
        instance1_vcd,
        instance2_vcd,
        diverging_signals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DetectionOutcome, SessionBuilder};
    use htd_rtl::Design;

    fn infected_design() -> ValidatedDesign {
        let mut d = Design::new("infected");
        let input = d.add_input("in", 8).unwrap();
        let stage = d.add_register("stage", 8, 0).unwrap();
        let trigger = d.add_register("trigger", 1, 0).unwrap();
        let magic = d.eq_const(d.signal(input), 0x5A).unwrap();
        let armed = d.or(d.signal(trigger), magic).unwrap();
        d.set_register_next(trigger, armed).unwrap();
        let flip = d.zero_ext(d.signal(trigger), 8).unwrap();
        let payload = d.xor(d.signal(input), flip).unwrap();
        d.set_register_next(stage, payload).unwrap();
        d.add_output("out", d.signal(stage)).unwrap();
        d.validated().unwrap()
    }

    #[test]
    fn replay_confirms_the_divergence_the_prover_reported() {
        let design = infected_design();
        let report = SessionBuilder::new(design.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let DetectionOutcome::PropertyFailed { counterexample, .. } = &report.outcome else {
            panic!("expected a detection, got {:?}", report.outcome);
        };
        let replay = replay_counterexample(&design, counterexample).unwrap();
        // Every signal the prover reported as differing must also differ in
        // the independent simulation.
        for reported in counterexample.diff_names() {
            assert!(
                replay.diverging_signals.iter().any(|s| s == reported),
                "{reported} did not diverge in the replay: {:?}",
                replay.diverging_signals
            );
        }
        assert!(replay.instance1_vcd.contains("$var wire 8"));
        assert!(replay.instance2_vcd.contains("$var wire 8"));
        assert_ne!(replay.instance1_vcd, replay.instance2_vcd);
    }
}
