//! # htd-core
//!
//! The golden-free formal hardware-Trojan detection flow for non-interfering
//! accelerators — the primary contribution of the DATE'24 paper this
//! repository reproduces.
//!
//! The method never compares the design against a golden (known-clean) model.
//! Instead it compares **two instances of the same, possibly infected design**
//! under identical inputs but arbitrary (symbolic) starting states: if a
//! sequential Trojan exists, the solver can place one instance in a
//! *triggered* state and the other in a *dormant* state, and the payload —
//! whatever it is — must make some state or output signal diverge.  The flow
//! (Algorithm 1 of the paper) decomposes this check into single-cycle interval
//! properties ordered by structural distance from the inputs:
//!
//! 1. the **init property**: equal inputs at `t` ⇒ equal `fanouts_CC1` at
//!    `t+1`,
//! 2. one **fanout property** per level: equal `fanouts_CCk` at `t` ⇒ equal
//!    `fanouts_CCk+1` at `t+1`,
//! 3. a final **coverage check**: every state/output signal must appear in
//!    some level — signals that do not are unreachable from the inputs and
//!    may host an input-independent Trojan (e.g. a reset-started timer).
//!
//! The flow is exhaustive for every sequential Trojan whose payload manifests
//! in any state or output signal (Sec. IV-D), which includes the RTL artefacts
//! of physical side channels.
//!
//! # Architecture
//!
//! The primary entry point is the **session API**:
//!
//! * [`SessionBuilder`] — configures a run: an owned design, a
//!   [`DetectorConfig`] and a [`BackendChoice`] (bundled CDCL solver, an
//!   external DIMACS-speaking binary, or an IPASIR solver shared library).
//! * [`DetectionSession`] — owns one live, incremental miter encoding
//!   ([`htd_ipc::MiterSession`]) and runs Algorithm 1 against it: the whole
//!   init/fanout/coverage sequence performs **one** bit-blast, expresses each
//!   property's antecedent through solver assumptions and starting-state
//!   variable sharing, and keeps the backend's learnt clauses alive across
//!   properties and re-verification rounds.
//! * [`FlowEvent`] — the streaming observer API: per-level, per-property and
//!   per-counterexample progress while the flow runs (ordering contract
//!   documented on the type); consumed by the CLI for live output and by the
//!   benchmark harness for per-property timing.
//!
//! The deprecated [`TrojanDetector`] remains as the borrow-tied, re-encode-
//! per-property reference path; it runs the exact same flow skeleton, so the
//! equivalence suite can compare the two.
//!
//! # Quickstart
//!
//! ```
//! use htd_core::{DetectionOutcome, FlowEvent, SessionBuilder};
//! use htd_rtl::Design;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An 8-bit pass-through accelerator with a tiny sequential Trojan:
//! // a trigger FSM arms itself when it sees the plaintext 0xAB and then
//! // flips the lowest bit of the result register (the payload).
//! let mut d = Design::new("toy_infected");
//! let data_in = d.add_input("data_in", 8)?;
//! let trigger = d.add_register("trigger", 1, 0)?;
//! let result = d.add_register("result", 8, 0)?;
//! let seen_magic = d.eq_const(d.signal(data_in), 0xAB)?;
//! let trig_next = d.or(d.signal(trigger), seen_magic)?;
//! d.set_register_next(trigger, trig_next)?;
//! let flip = d.zero_ext(d.signal(trigger), 8)?;
//! let payload = d.xor(d.signal(data_in), flip)?;
//! d.set_register_next(result, payload)?;
//! d.add_output("data_out", d.signal(result))?;
//!
//! let mut session = SessionBuilder::new(d.validated()?).build()?;
//! // Optional: watch the flow as it runs.
//! session.on_event(|event| {
//!     if let FlowEvent::CounterexampleFound { property, .. } = event {
//!         eprintln!("divergence found by {property}");
//!     }
//! });
//! let report = session.run()?;
//! match report.outcome {
//!     DetectionOutcome::PropertyFailed { ref detected_by, .. } => {
//!         // The divergence shows up one cycle after the inputs: init property.
//!         assert_eq!(detected_by.to_string(), "init_property");
//!     }
//!     ref other => panic!("expected a detection, got {other:?}"),
//! }
//! // One bit-blast served the whole flow.
//! assert_eq!(session.session_stats().bit_blasts, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod diagnosis;
mod error;
mod flow;
mod flowgraph;
pub mod replay;
mod report;
mod scheduler;
mod session;

pub use error::DetectError;
pub use flow::DetectorConfig;
// Re-exported so budget consumers (the serve tier, CLI flags) need no
// direct `htd-sat` dependency to configure a run.
#[allow(deprecated)]
pub use flow::TrojanDetector;
pub use flowgraph::{FlowGraph, FlowNode, FlowNodeKind};
pub use htd_sat::{BudgetTracker, RacePolicy, SolveBudget};
pub use report::{DetectedBy, DetectionOutcome, DetectionReport, PropertyTrace};
pub use scheduler::{
    PipelineStats, PropertyScheduler, SharedSolvePool, JOBS_ENV_VAR, LEVEL_PIPELINE_ENV_VAR,
};
pub use session::{
    BackendChoice, DetectionSession, EngineChoice, FlowEvent, SessionBuilder, PORTFOLIO_ENV_VAR,
};
