//! The flow-graph executor: a generic ready-queue over [`FlowGraph`] nodes.
//!
//! PR 2's scheduler parallelised *within* one fanout level: the level's
//! per-signal sub-properties solved on forked solver shards, but whole levels
//! and resolution rounds still serialised.  The executor in this module
//! lifts the same shard model to the whole graph: the coordinator thread
//! prepares generations (lowering + Tseitin encoding + a frozen snapshot per
//! level, see [`MiterSession::prepare_level`]) ahead of the merge frontier,
//! one shared worker pool pulls *(generation, sub-property)* tasks from a
//! ready queue, and results merge strictly in node order.  Independent
//! sub-properties from **different levels** therefore solve concurrently —
//! the master encodes level `k + 1` while level `k`'s forks are still
//! solving.
//!
//! # Determinism guarantee
//!
//! Reports are byte-identical for every worker count *and* with level
//! pipelining on or off, because nothing a worker does can influence what
//! another task sees:
//!
//! * every task solves on a fork of its generation's frozen snapshot, and
//!   the master mutation stream (retire previous generation's activation
//!   literals → encode → clause-GC → snapshot) is a pure function of the
//!   prepare *order*, which is always ascending node order;
//! * results merge in node order, first counterexample wins, and only the
//!   consumed prefix of tasks contributes statistics — speculative work
//!   behind a failure is cancelled mid-solve and discarded;
//! * a resolution round is a re-enqueued graph node; before it is encoded
//!   the coordinator completes every remaining level prepare, so the master
//!   state under any resolution encode is the same whether the flow
//!   pipelined or not.
//!
//! Speculation is demand-driven: the coordinator only prepares the next
//! level when fewer unfinished tasks than workers remain, so fail-fast flows
//! (most infected benchmarks die on the init property) pay nothing for the
//! pipeline.  Whether a generation gets *prepared* may depend on timing;
//! whether its results are *reported* never does.
//!
//! # When to tune `jobs`
//!
//! Parallelism pays off when consecutive levels carry non-structural
//! sub-properties (RSA-class accelerators, infected AES levels).  Flows
//! dominated by the structural fast path dispatch few or no solve tasks, so
//! extra workers are harmless but idle.  The CLI defaults to the machine's
//! available parallelism; the library defaults to one worker (set the
//! `HTD_JOBS` environment variable or call [`SessionBuilder::jobs`] to
//! change it).  Level pipelining is on by default; set `HTD_LEVEL_PIPELINE=0`
//! or use [`PropertyScheduler::with_level_pipelining`] to fall back to
//! merge-gated solving.
//!
//! [`SessionBuilder::jobs`]: crate::SessionBuilder::jobs
//! [`MiterSession::prepare_level`]: htd_ipc::MiterSession::prepare_level

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use htd_ipc::{
    CheckOutcome, IntervalProperty, MiterSession, PreparedLevel, PropertyReport, TaskOutcome,
};
use htd_rtl::{SignalId, ValidatedDesign};
use htd_sat::SolverStats;

use crate::diagnosis::{benign_fanin_of, diagnose, Diagnosis};
use crate::error::DetectError;
use crate::flow::DetectorConfig;
use crate::flowgraph::FlowGraph;
use crate::report::{DetectedBy, DetectionOutcome, DetectionReport, PropertyTrace};
use crate::session::{FlowEvent, PropertyEngine};

/// Environment variable overriding the default worker count of new sessions.
pub const JOBS_ENV_VAR: &str = "HTD_JOBS";

/// Environment variable disabling level pipelining when set to `0`.
pub const LEVEL_PIPELINE_ENV_VAR: &str = "HTD_LEVEL_PIPELINE";

/// Policy object selecting how the flow-graph executor schedules work: the
/// worker count and whether sub-properties of different levels may solve
/// concurrently.
///
/// See the [module docs](self) for the execution model and the determinism
/// guarantee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PropertyScheduler {
    jobs: NonZeroUsize,
    pipeline_levels: bool,
    oversubscribe: bool,
}

impl PropertyScheduler {
    /// A scheduler running up to `jobs` worker shards, with level pipelining
    /// at its default (on, unless `HTD_LEVEL_PIPELINE=0`).
    #[must_use]
    pub fn new(jobs: NonZeroUsize) -> Self {
        PropertyScheduler {
            jobs,
            pipeline_levels: Self::default_level_pipelining(),
            oversubscribe: false,
        }
    }

    /// Allows more worker threads than the machine has hardware threads.
    /// CPU-bound solver shards gain nothing from oversubscription, so by
    /// default the effective worker count is `min(jobs, available
    /// parallelism)` — this switch exists for tests that must exercise
    /// multi-worker schedules on single-core hosts.
    #[must_use]
    pub fn with_oversubscription(mut self, enabled: bool) -> Self {
        self.oversubscribe = enabled;
        self
    }

    /// The worker count the executor will actually run: `jobs`, capped at
    /// the machine's available parallelism unless
    /// [`with_oversubscription`](Self::with_oversubscription) lifted the cap.
    #[must_use]
    pub fn effective_workers(&self) -> NonZeroUsize {
        if self.oversubscribe {
            self.jobs
        } else {
            self.jobs.min(Self::available_parallelism())
        }
    }

    /// Enables or disables level pipelining: when disabled, the executor
    /// gates every prepare behind the previous level's merge (the PR-2
    /// schedule).  Reports are identical either way.
    #[must_use]
    pub fn with_level_pipelining(mut self, enabled: bool) -> Self {
        self.pipeline_levels = enabled;
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> NonZeroUsize {
        self.jobs
    }

    /// `true` if sub-properties of different levels may solve concurrently.
    #[must_use]
    pub fn pipelines_levels(&self) -> bool {
        self.pipeline_levels
    }

    /// The machine's available parallelism (1 if it cannot be determined).
    #[must_use]
    pub fn available_parallelism() -> NonZeroUsize {
        std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
    }

    /// The default worker count for new sessions: the `HTD_JOBS` environment
    /// variable when set, otherwise 1.
    ///
    /// # Errors
    ///
    /// A set-but-malformed `HTD_JOBS` (not a positive integer) is an error,
    /// never a silent fallback: a typo like `HTD_JOBS=two` or `HTD_JOBS=0`
    /// would otherwise quietly serialise a run that was meant to shard.
    pub fn try_default_jobs() -> Result<NonZeroUsize, String> {
        let Ok(value) = std::env::var(JOBS_ENV_VAR) else {
            return Ok(NonZeroUsize::MIN);
        };
        value.trim().parse::<NonZeroUsize>().map_err(|_| {
            format!(
                "{JOBS_ENV_VAR}={value:?} is not a positive integer worker count \
                 (e.g. {JOBS_ENV_VAR}=4); unset it for the default of 1"
            )
        })
    }

    /// [`try_default_jobs`](Self::try_default_jobs), panicking on a
    /// malformed `HTD_JOBS` — misconfigured environments fail loudly, like
    /// the strict `HTD_GC_*` overrides.
    ///
    /// # Panics
    ///
    /// If `HTD_JOBS` is set to anything but a positive integer.
    #[must_use]
    pub fn default_jobs() -> NonZeroUsize {
        Self::try_default_jobs().unwrap_or_else(|message| panic!("{message}"))
    }

    /// The default level-pipelining mode: on, unless the
    /// `HTD_LEVEL_PIPELINE` environment variable disables it.
    ///
    /// # Errors
    ///
    /// Accepts `1` / `true` / `on` / `yes` (enable) and `0` / `false` /
    /// `off` / `no` (disable), case-insensitively; anything else is an
    /// error.  (`HTD_LEVEL_PIPELINE=off` used to *enable* pipelining
    /// because only the literal `0` was recognised.)
    pub fn try_default_level_pipelining() -> Result<bool, String> {
        let Ok(value) = std::env::var(LEVEL_PIPELINE_ENV_VAR) else {
            return Ok(true);
        };
        match value.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" | "yes" => Ok(true),
            "0" | "false" | "off" | "no" => Ok(false),
            _ => Err(format!(
                "{LEVEL_PIPELINE_ENV_VAR}={value:?} is not a recognised switch \
                 (use 1/true/on/yes or 0/false/off/no); unset it for the default (on)"
            )),
        }
    }

    /// [`try_default_level_pipelining`](Self::try_default_level_pipelining),
    /// panicking on a malformed `HTD_LEVEL_PIPELINE`.
    ///
    /// # Panics
    ///
    /// If `HTD_LEVEL_PIPELINE` is set to an unrecognised value.
    #[must_use]
    pub fn default_level_pipelining() -> bool {
        Self::try_default_level_pipelining().unwrap_or_else(|message| panic!("{message}"))
    }
}

impl Default for PropertyScheduler {
    fn default() -> Self {
        PropertyScheduler::new(Self::default_jobs())
    }
}

/// Counters describing one pipelined flow run, exposed through
/// [`DetectionSession::pipeline_stats`](crate::DetectionSession::pipeline_stats).
///
/// Unlike the [`DetectionReport`], which is deterministic by construction,
/// these counters describe the *schedule* the executor happened to take and
/// may vary between runs (speculation is demand-driven).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Generations (levels and resolution rounds) prepared on the master,
    /// including speculative ones whose results were discarded.
    pub generations_prepared: u64,
    /// Sub-property tasks enqueued on the worker pool.
    pub tasks_dispatched: u64,
    /// Generations the master encoded while another generation's solver
    /// tasks were still unfinished — the epoch-scoped encode/solve overlap
    /// that the flow graph adds (meaningful even on a single hardware
    /// thread).
    pub pipelined_prepares: u64,
    /// Tasks that started solving while a task of a *different* generation
    /// was still unfinished — true cross-level solve concurrency (needs
    /// hardware threads, or long-running tasks, to show up).
    pub cross_level_solves: u64,
    /// Generations frozen behind a master-side snapshot clone (inline
    /// schedules skip the clone, so this is 0 at one effective worker).
    pub snapshot_forks: u64,
    /// Bytes those snapshot clones copied — with the arena-backed clause
    /// store each clone is a handful of flat-buffer memcpys proportional to
    /// the master's live database size at the prepare boundary.
    pub snapshot_bytes_cloned: u64,
}

/// Engine over a [`MiterSession`] driven level-at-a-time — the fallback for
/// backends that cannot fork snapshots (the pipelined executor requires
/// forks; this path is merely sharded within each level, sequential on the
/// master).
pub(crate) struct SchedulerEngine<'a> {
    pub(crate) miter: &'a mut MiterSession,
    pub(crate) jobs: NonZeroUsize,
}

impl PropertyEngine for SchedulerEngine<'_> {
    fn check(
        &mut self,
        design: &ValidatedDesign,
        property: &IntervalProperty,
    ) -> Result<PropertyReport, DetectError> {
        self.miter
            .check_level(design, property, self.jobs)
            .map_err(|e| DetectError::Backend {
                message: e.to_string(),
            })
    }

    fn finish(&mut self) -> SolverStats {
        self.miter.finish_level_flow()
    }
}

/// One prepared generation in flight: the frozen sub-property tasks plus the
/// slots their results land in.
struct GenJob {
    /// Flow-graph node id of the generation.
    node: usize,
    prepared: PreparedLevel,
    results: Vec<Mutex<Option<TaskOutcome>>>,
    /// Lowest failed sub-property id of this generation (cancels higher-id
    /// tasks, see [`PreparedLevel::solve_task`]).
    doomed: Arc<AtomicUsize>,
    /// Unfinished tasks of this generation.
    remaining: AtomicUsize,
}

impl GenJob {
    fn new(node: usize, prepared: PreparedLevel) -> Self {
        let n = prepared.num_tasks();
        GenJob {
            node,
            prepared,
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            doomed: Arc::new(AtomicUsize::new(usize::MAX)),
            remaining: AtomicUsize::new(n),
        }
    }

    /// `true` once the deterministic merge can run: every task is finished,
    /// or every task up to (and including) the lowest failed id is — results
    /// behind the first counterexample can never be consumed, so the merge
    /// need not wait for them.
    fn merge_ready(&self) -> bool {
        if self.remaining.load(Ordering::SeqCst) == 0 {
            return true;
        }
        let doomed = self.doomed.load(Ordering::SeqCst);
        if doomed == usize::MAX {
            return false;
        }
        self.results[..=doomed.min(self.results.len() - 1)]
            .iter()
            .all(|slot| slot.lock().expect("no poisoned locks").is_some())
    }

    fn take_outcomes(&self) -> Vec<Option<TaskOutcome>> {
        self.results
            .iter()
            .map(|slot| slot.lock().expect("no poisoned locks").take())
            .collect()
    }
}

/// The shared ready queue workers pull from.
struct WorkQueue {
    queue: VecDeque<(Arc<GenJob>, usize)>,
    shutdown: bool,
}

/// Per-flow coordination state, shared between the flow's coordinator thread
/// and whichever workers solve its tasks — the flow's own scoped threads, or
/// the global workers of a [`SharedSolvePool`] multiplexing many concurrent
/// flows.  Arc'd so pool workers can outlive any single flow.
struct FlowShared {
    work: Mutex<WorkQueue>,
    work_cv: Condvar,
    /// Completed-task counter; workers bump it under the lock before
    /// notifying, so a coordinator that re-checks `merge_ready` after
    /// acquiring the lock can never miss a wake-up.
    progress: Mutex<u64>,
    progress_cv: Condvar,
    /// Kill switch checked by every in-flight solve's interrupt hook: set
    /// externally to cancel the whole flow mid-search
    /// ([`DetectionSession::cancel_flag`]), and set by the flow itself during
    /// wind-down to stop speculative stragglers.
    ///
    /// [`DetectionSession::cancel_flag`]: crate::DetectionSession::cancel_flag
    cancelled: Arc<AtomicBool>,
    /// Tasks dispatched but not yet finished (drives demand-driven
    /// speculation).
    outstanding: AtomicUsize,
    /// Every generation of this flow dispatched so far; workers consult it to
    /// detect tasks of *other* generations still unfinished when they pick up
    /// work.
    active_gens: Mutex<Vec<Arc<GenJob>>>,
    cross_level: AtomicU64,
}

impl FlowShared {
    fn new(cancelled: Arc<AtomicBool>) -> Self {
        FlowShared {
            work: Mutex::new(WorkQueue {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            progress: Mutex::new(0),
            progress_cv: Condvar::new(),
            cancelled,
            outstanding: AtomicUsize::new(0),
            active_gens: Mutex::new(Vec::new()),
            cross_level: AtomicU64::new(0),
        }
    }

    /// Pops one ready task without blocking (pool workers poll flows
    /// round-robin instead of parking on per-flow condvars).
    fn try_pop(&self) -> Option<(Arc<GenJob>, usize)> {
        self.work
            .lock()
            .expect("no poisoned locks")
            .queue
            .pop_front()
    }

    /// Executes one task and publishes its result: the single code path
    /// shared by scoped worker threads and pool workers, so the bookkeeping
    /// (cross-level evidence, outstanding count, progress wake-up) cannot
    /// drift between the two execution modes.
    fn run_task(&self, job: &Arc<GenJob>, index: usize) {
        {
            let gens = self.active_gens.lock().expect("no poisoned locks");
            if gens
                .iter()
                .any(|g| g.node != job.node && g.remaining.load(Ordering::SeqCst) > 0)
            {
                // htd-lint: allow(determinism): monotone telemetry counter; the scheduler never branches on it
                self.cross_level.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Panic isolation: a panicking solve (a backend bug, an injected
        // fault) must not strand the coordinator waiting on a result slot
        // that will never be filled.  Convert the panic into a structured
        // backend error for this task and doom the level so later tasks
        // skip.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job.prepared.solve_task(index, &job.doomed, &self.cancelled)
        }))
        .unwrap_or_else(|payload| {
            job.doomed.fetch_min(index, Ordering::SeqCst);
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic payload".to_owned());
            TaskOutcome::internal_error(format!("solve task panicked: {message}"))
        });
        *job.results[index].lock().expect("no poisoned locks") = Some(outcome);
        job.remaining.fetch_sub(1, Ordering::SeqCst);
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
        let mut completed = self.progress.lock().expect("no poisoned locks");
        *completed += 1;
        drop(completed);
        self.progress_cv.notify_all();
    }
}

/// Registered flows a [`SharedSolvePool`]'s workers pull from.
struct PoolState {
    flows: Vec<Arc<FlowShared>>,
    /// Round-robin pick cursor: each dequeue starts scanning at the flow
    /// *after* the last one served, so concurrent flows share the workers
    /// fairly at task granularity instead of first-come-drains-the-pool.
    cursor: usize,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    cv: Condvar,
    workers: NonZeroUsize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A process-wide solver worker pool multiplexing many concurrent detection
/// flows over one set of threads.
///
/// Each flow run under the pipelined executor normally spawns its own scoped
/// worker threads; a service running many flows at once would oversubscribe
/// the machine with `flows x jobs` solver threads.  Attaching a
/// `SharedSolvePool` to each session
/// ([`DetectionSession::attach_pool`](crate::DetectionSession::attach_pool))
/// replaces the per-flow threads with this pool's fixed worker set: flows
/// register their ready queues, and workers pick one *(generation, task)* at
/// a time **round-robin across flows** — fair-share scheduling at task
/// granularity, so a many-task tenant cannot starve a small one (a started
/// solve is never preempted, though; fairness kicks in at every task
/// boundary).
///
/// Reports are unaffected: the executor's determinism guarantee is
/// schedule-invariance, and the pool only changes *which thread* solves a
/// task, never what the task sees.  Cancellation also carries over — each
/// flow's kill switch is checked by its tasks' interrupt hooks regardless of
/// which pool worker runs them.
///
/// The handle is cheaply cloneable; workers park when no flow has ready
/// tasks, and [`shutdown`](Self::shutdown) joins them (dropping the last
/// handle without calling it leaves the workers parked until process exit,
/// which is fine for daemons but untidy in tests).
#[derive(Clone)]
pub struct SharedSolvePool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for SharedSolvePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSolvePool")
            .field("workers", &self.inner.workers.get())
            .finish_non_exhaustive()
    }
}

impl SharedSolvePool {
    /// Spawns a pool with the given number of worker threads.
    #[must_use]
    pub fn new(workers: NonZeroUsize) -> Self {
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                flows: Vec::new(),
                cursor: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            workers,
            handles: Mutex::new(Vec::new()),
        });
        let handles = (0..workers.get())
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || Self::worker_loop(&inner))
            })
            .collect();
        *inner.handles.lock().expect("no poisoned locks") = handles;
        SharedSolvePool { inner }
    }

    /// The number of worker threads.
    #[must_use]
    pub fn workers(&self) -> NonZeroUsize {
        self.inner.workers
    }

    /// Stops and joins the worker threads.  In-flight tasks finish; queued
    /// tasks of still-registered flows are abandoned (their flows' interrupt
    /// flags should already be set).  Idempotent.
    pub fn shutdown(&self) {
        self.inner.state.lock().expect("no poisoned locks").shutdown = true;
        self.inner.cv.notify_all();
        let handles = std::mem::take(&mut *self.inner.handles.lock().expect("no poisoned locks"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn register(&self, flow: Arc<FlowShared>) {
        self.inner
            .state
            .lock()
            .expect("no poisoned locks")
            .flows
            .push(flow);
    }

    fn deregister(&self, flow: &Arc<FlowShared>) {
        let mut state = self.inner.state.lock().expect("no poisoned locks");
        state.flows.retain(|f| !Arc::ptr_eq(f, flow));
        state.cursor = 0;
    }

    /// Wakes workers after a flow enqueued tasks.  Takes the state lock so a
    /// worker that just scanned empty queues and is about to wait cannot miss
    /// the notification.
    fn notify(&self) {
        drop(self.inner.state.lock().expect("no poisoned locks"));
        self.inner.cv.notify_all();
    }

    fn worker_loop(inner: &PoolInner) {
        loop {
            let picked = {
                let mut state = inner.state.lock().expect("no poisoned locks");
                loop {
                    if state.shutdown {
                        return;
                    }
                    let n = state.flows.len();
                    let mut found = None;
                    for k in 0..n {
                        let i = (state.cursor + k) % n;
                        if let Some(item) = state.flows[i].try_pop() {
                            state.cursor = (i + 1) % n;
                            found = Some((Arc::clone(&state.flows[i]), item));
                            break;
                        }
                    }
                    if let Some(found) = found {
                        break found;
                    }
                    state = inner.cv.wait(state).expect("no poisoned locks");
                }
            };
            let (flow, (job, index)) = picked;
            flow.run_task(&job, index);
        }
    }
}

/// Runs the full flow on the pipelined graph executor.  Requires a backend
/// that can fork ([`MiterSession::backend_can_fork`]).
///
/// `pool` switches task execution from flow-owned scoped threads to the
/// given shared pool; `cancel` installs an external kill switch (observed by
/// every in-flight solve's interrupt hook and surfaced as
/// [`DetectError::Cancelled`]).
pub(crate) fn run_pipelined(
    design: &ValidatedDesign,
    config: &DetectorConfig,
    miter: &mut MiterSession,
    scheduler: &PropertyScheduler,
    pool: Option<&SharedSolvePool>,
    cancel: Option<&Arc<AtomicBool>>,
    emit: &mut dyn FnMut(&FlowEvent),
) -> Result<(DetectionReport, PipelineStats), DetectError> {
    let workers = scheduler.effective_workers();
    let pipeline = scheduler.pipelines_levels();
    // With a single effective worker no two tasks can ever solve
    // concurrently, so the coordinator solves everything itself: no worker
    // threads, no condvar hand-offs, and generations at the merge frontier
    // skip their snapshot clone (tasks fork straight off the unmutated
    // master instead — identical content, identical reports).  A shared pool
    // disables the inline fast path: its whole point is that *other* threads
    // solve the tasks, whatever this flow's nominal worker count.
    let inline = pool.is_none() && workers.get() == 1;
    let mut graph = FlowGraph::plan(design, config)?;
    // htd-lint: allow(determinism): feeds DetectionReport.total_duration only, which render_normalized() zeroes
    let start = Instant::now();
    let d = design.design();
    let names = |sigs: &[SignalId]| -> Vec<String> {
        sigs.iter().map(|&s| d.signal_name(s).to_string()).collect()
    };

    // One kill switch per run: the caller's external flag when given (so a
    // service can interrupt in-flight solves from another thread), a private
    // one otherwise.  Wind-down sets it either way, which makes a cancel flag
    // one-shot — it is consumed by the run it was installed for.
    let shared = Arc::new(FlowShared::new(
        cancel.map_or_else(|| Arc::new(AtomicBool::new(false)), Arc::clone),
    ));
    if let Some(pool) = pool {
        pool.register(Arc::clone(&shared));
    }

    let result = std::thread::scope(|scope| {
        if !inline && pool.is_none() {
            // Flow-owned workers park on the flow's condvar until tasks (or
            // shutdown) arrive.  Pool mode skips these: the pool's global
            // workers poll the registered flows instead.
            for _ in 0..workers.get() {
                let shared = &shared;
                scope.spawn(move || loop {
                    let item = {
                        let mut w = shared.work.lock().expect("no poisoned locks");
                        loop {
                            if let Some(item) = w.queue.pop_front() {
                                break Some(item);
                            }
                            if w.shutdown {
                                break None;
                            }
                            w = shared.work_cv.wait(w).expect("no poisoned locks");
                        }
                    };
                    let Some((job, index)) = item else { return };
                    shared.run_task(&job, index);
                });
            }
        }

        let dispatch = |job: &Arc<GenJob>, stats: &mut PipelineStats| {
            let n = job.prepared.num_tasks();
            stats.generations_prepared += 1;
            stats.tasks_dispatched += n as u64;
            if job.prepared.has_snapshot() {
                stats.snapshot_forks += 1;
                stats.snapshot_bytes_cloned += job.prepared.snapshot_bytes();
            }
            if n == 0 || inline {
                // Inline schedules solve at the merge frontier; nothing is
                // handed to the (empty) pool.
                return;
            }
            shared.outstanding.fetch_add(n, Ordering::SeqCst);
            shared
                .active_gens
                .lock()
                .expect("no poisoned locks")
                .push(Arc::clone(job));
            let mut w = shared.work.lock().expect("no poisoned locks");
            for i in 0..n {
                w.queue.push_back((Arc::clone(job), i));
            }
            drop(w);
            match pool {
                Some(pool) => pool.notify(),
                None => shared.work_cv.notify_all(),
            }
        };

        // External cancellation is only an *error* when the caller installed
        // a flag — the flow's own wind-down reuses the same switch to stop
        // speculative stragglers after a verdict.
        let externally_cancelled = || cancel.is_some() && shared.cancelled.load(Ordering::SeqCst);

        let mut coordinate = || -> Result<(DetectionReport, PipelineStats), DetectError> {
            let mut stats = PipelineStats::default();
            let mut fanout_levels: Vec<Vec<String>> = Vec::new();
            let mut properties: Vec<PropertyTrace> = Vec::new();
            let mut spurious_total = 0usize;
            let mut solver_totals = SolverStats::default();
            let mut level_jobs: Vec<Arc<GenJob>> = Vec::new();

            let report = |outcome: DetectionOutcome,
                          fanout_levels: Vec<Vec<String>>,
                          properties: Vec<PropertyTrace>,
                          spurious_resolved: usize,
                          solver_totals: SolverStats| DetectionReport {
                design: d.name().to_string(),
                outcome,
                fanout_levels,
                properties,
                spurious_resolved,
                solver_totals,
                total_duration: start.elapsed(),
            };

            // Set when speculative planning hit the iteration limit: the
            // merge loop surfaces the same error deterministically when it
            // reaches that level.
            let mut planning_blocked = false;
            let mut level_idx = 0usize;
            while graph.ensure_level(design, level_idx)? {
                if externally_cancelled() {
                    return Err(DetectError::Cancelled);
                }
                // Prepare (at least) this level; speculative prepares beyond
                // it happen while waiting below.
                while level_jobs.len() <= level_idx {
                    let next = level_jobs.len();
                    let node = graph.level_node(next);
                    let (node_id, property) = (
                        node.id,
                        node.property.clone().expect("level nodes carry properties"),
                    );
                    let job = Arc::new(GenJob::new(
                        node_id,
                        miter.prepare_level(design, &property, !inline),
                    ));
                    dispatch(&job, &mut stats);
                    level_jobs.push(job);
                }

                let node = graph.level_node(level_idx).clone();
                fanout_levels.push(names(&node.signals));
                emit(&FlowEvent::LevelStarted {
                    level: level_idx + 1,
                    signals: names(&node.signals),
                    node: node.id,
                    deps: node.deps.clone(),
                    dep_signals: names(&node.dep_signals),
                });

                let mut current_property =
                    node.property.clone().expect("level nodes carry properties");
                let proves = names(&current_property.prove_equal);
                let mut current_job = Arc::clone(&level_jobs[level_idx]);
                let mut resolved = 0usize;

                let (trace, failed) = loop {
                    if inline {
                        // Solve the frontier generation right here: tasks
                        // fork off the master when the generation skipped
                        // its snapshot, off the snapshot when an earlier
                        // force-prepare froze one.  The shared flag doubles
                        // as the interrupt hook, so an external cancel kills
                        // even a single-worker schedule mid-search.
                        for i in 0..current_job.prepared.num_tasks() {
                            if externally_cancelled() {
                                return Err(DetectError::Cancelled);
                            }
                            let mut slot =
                                current_job.results[i].lock().expect("no poisoned locks");
                            if slot.is_some() {
                                continue;
                            }
                            let outcome = if current_job.prepared.has_snapshot() {
                                current_job.prepared.solve_task(
                                    i,
                                    &current_job.doomed,
                                    &shared.cancelled,
                                )
                            } else {
                                miter.solve_task_inline(
                                    &current_job.prepared,
                                    i,
                                    &current_job.doomed,
                                    &shared.cancelled,
                                )
                            };
                            *slot = Some(outcome);
                            current_job.remaining.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    // Wait for the generation, preparing further levels
                    // whenever the pool would otherwise run dry.
                    loop {
                        if externally_cancelled() {
                            return Err(DetectError::Cancelled);
                        }
                        if current_job.merge_ready() {
                            break;
                        }
                        if pipeline
                            && !planning_blocked
                            && !graph.levels_complete()
                            && shared.outstanding.load(Ordering::SeqCst) < workers.get()
                            // A failing task on the merge frontier means the
                            // flow is about to stop (or re-enqueue this very
                            // level): encoding the next level now would only
                            // delay that verdict.
                            && current_job.doomed.load(Ordering::SeqCst) == usize::MAX
                        {
                            let next = level_jobs.len();
                            match graph.ensure_level(design, next) {
                                Ok(true) => {
                                    // The merge frontier still has unfinished
                                    // tasks (the loop condition), so this
                                    // prepare encodes a new level while an
                                    // earlier one is solving.
                                    stats.pipelined_prepares += 1;
                                    let node = graph.level_node(next);
                                    let (node_id, property) = (
                                        node.id,
                                        node.property
                                            .clone()
                                            .expect("level nodes carry properties"),
                                    );
                                    let job = Arc::new(GenJob::new(
                                        node_id,
                                        miter.prepare_level(design, &property, true),
                                    ));
                                    dispatch(&job, &mut stats);
                                    level_jobs.push(job);
                                    continue;
                                }
                                Ok(false) => continue,
                                Err(_) => {
                                    planning_blocked = true;
                                    continue;
                                }
                            }
                        }
                        let completed = shared.progress.lock().expect("no poisoned locks");
                        if current_job.merge_ready() {
                            break;
                        }
                        drop(
                            shared
                                .progress_cv
                                .wait(completed)
                                .expect("no poisoned locks"),
                        );
                    }

                    if externally_cancelled() {
                        // Don't merge: the kill switch turns in-flight tasks
                        // into skips, which the deterministic merge would
                        // misread as lost results.
                        return Err(DetectError::Cancelled);
                    }
                    let outcomes = current_job.take_outcomes();
                    let check = miter
                        .merge_level(design, &current_job.prepared, outcomes)
                        .map_err(|e| DetectError::Backend {
                            message: e.to_string(),
                        })?;
                    // The generation is decided: free its snapshot clone
                    // (in-flight stragglers keep their own forks alive) and
                    // stop scanning it in the workers' overlap check.
                    current_job.prepared.release_snapshot();
                    shared
                        .active_gens
                        .lock()
                        .expect("no poisoned locks")
                        .retain(|g| g.node != current_job.node);
                    solver_totals.accumulate(&check.stats.solver);
                    match &check.outcome {
                        CheckOutcome::Holds => {
                            emit(&FlowEvent::PropertyProved {
                                property: check.property.clone(),
                                duration: check.stats.duration,
                                spurious_resolved: resolved,
                                solver: check.stats.solver,
                                node: current_job.node,
                            });
                            break (
                                PropertyTrace {
                                    name: check.property.clone(),
                                    proves: proves.clone(),
                                    report: check,
                                    spurious_resolved: resolved,
                                },
                                None,
                            );
                        }
                        CheckOutcome::Fails(cex) => {
                            let diag: Diagnosis = diagnose(
                                design,
                                cex,
                                &current_property.assume_equal,
                                &config.benign_state,
                            );
                            let spurious = diag.is_spurious();
                            emit(&FlowEvent::CounterexampleFound {
                                property: check.property.clone(),
                                diffs: cex.diff_names().iter().map(ToString::to_string).collect(),
                                spurious,
                                solver: check.stats.solver,
                                node: current_job.node,
                            });
                            if !spurious {
                                let cex = (**cex).clone();
                                break (
                                    PropertyTrace {
                                        name: check.property.clone(),
                                        proves: proves.clone(),
                                        report: check,
                                        spurious_resolved: resolved,
                                    },
                                    Some(cex),
                                );
                            }
                            if resolved >= config.max_resolution_iterations {
                                return Err(DetectError::ResolutionLimit {
                                    property: current_property.name.clone(),
                                    limit: config.max_resolution_iterations,
                                });
                            }
                            resolved += 1;
                            // Assume the benign fanin of the whole level
                            // equal, not only the registers this model
                            // happened to flip (see `check_with_resolution`).
                            let waived = benign_fanin_of(
                                design,
                                &current_property.prove_equal,
                                &current_property.assume_equal,
                                &config.benign_state,
                            );
                            current_property = current_property.with_extra_assumptions(&waived);
                            // Determinism: a resolution round must always be
                            // encoded against the fully prepared master (or
                            // the deterministic point where planning errors),
                            // so its encoding cannot depend on how far
                            // speculation happened to get.
                            while !planning_blocked {
                                let next = level_jobs.len();
                                match graph.ensure_level(design, next) {
                                    Ok(true) => {
                                        let node = graph.level_node(next);
                                        let (node_id, property) = (
                                            node.id,
                                            node.property
                                                .clone()
                                                .expect("level nodes carry properties"),
                                        );
                                        let job = Arc::new(GenJob::new(
                                            node_id,
                                            miter.prepare_level(design, &property, true),
                                        ));
                                        dispatch(&job, &mut stats);
                                        level_jobs.push(job);
                                    }
                                    Ok(false) => break,
                                    Err(_) => planning_blocked = true,
                                }
                            }
                            let res_node =
                                graph.add_resolution(node.id, resolved, current_property.clone());
                            emit(&FlowEvent::ResolutionRound {
                                property: current_property.name.clone(),
                                round: resolved,
                                waived: names(&waived),
                                node: res_node,
                            });
                            if pipeline && shared.outstanding.load(Ordering::SeqCst) > 0 {
                                // The force-prepared levels' forks are still
                                // solving while the master encodes this
                                // round: cross-node encode/solve overlap.
                                stats.pipelined_prepares += 1;
                            }
                            let job = Arc::new(GenJob::new(
                                res_node,
                                miter.prepare_level(design, &current_property, !inline),
                            ));
                            dispatch(&job, &mut stats);
                            current_job = job;
                        }
                    }
                };

                spurious_total += trace.spurious_resolved;
                properties.push(trace);
                if let Some(cex) = failed {
                    // Same end-of-flow hygiene as the secure exit: the
                    // pending activation literals retire and the master
                    // compacts, so a reused session starts clean.  The delta
                    // is deliberately NOT folded into the report: which acts
                    // are still pending depends on how far speculation got.
                    let _ = miter.finish_level_flow();
                    let detected_by = if level_idx == 0 {
                        DetectedBy::InitProperty
                    } else {
                        DetectedBy::FanoutProperty(level_idx)
                    };
                    return Ok((
                        report(
                            DetectionOutcome::PropertyFailed {
                                detected_by,
                                counterexample: Box::new(cex),
                            },
                            fanout_levels,
                            properties,
                            spurious_total,
                            solver_totals,
                        ),
                        stats,
                    ));
                }
                level_idx += 1;
            }

            // End-of-flow hygiene: retire the last generation's activation
            // literals and compact.  The delta stays out of the report —
            // which acts are still pending depends on how far speculation
            // got, and reports must be schedule-invariant.
            let _ = miter.finish_level_flow();
            let (coverage_node, covered, uncovered) = graph.finish_coverage(design)?;
            let uncovered = names(&uncovered);
            emit(&FlowEvent::Coverage {
                covered,
                uncovered: uncovered.clone(),
                node: coverage_node,
            });
            let outcome = if uncovered.is_empty() {
                DetectionOutcome::Secure
            } else {
                DetectionOutcome::UncoveredSignals { signals: uncovered }
            };
            Ok((
                report(
                    outcome,
                    fanout_levels,
                    properties,
                    spurious_total,
                    solver_totals,
                ),
                stats,
            ))
        };

        let result = coordinate().map(|(report, mut stats)| {
            // htd-lint: allow(determinism): telemetry read after every worker joined; no ordering needed
            stats.cross_level_solves = shared.cross_level.load(Ordering::Relaxed);
            (report, stats)
        });
        // Wind the flow down: cancel speculative work still in flight and
        // wake every flow-owned worker so the scope can join (pool workers
        // simply stop finding this flow's tasks).
        shared.cancelled.store(true, Ordering::SeqCst);
        {
            let mut w = shared.work.lock().expect("no poisoned locks");
            w.queue.clear();
            w.shutdown = true;
        }
        shared.work_cv.notify_all();
        result
    });
    if let Some(pool) = pool {
        // In-flight pool tasks of this flow (if any) run to completion on
        // their own Arcs; deregistering only stops workers from picking up
        // more.
        pool.deregister(&shared);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_defaults_to_at_least_one_worker() {
        assert!(PropertyScheduler::default().jobs().get() >= 1);
        assert!(PropertyScheduler::available_parallelism().get() >= 1);
    }

    #[test]
    fn scheduler_carries_its_worker_count_and_pipelining() {
        let jobs = NonZeroUsize::new(7).unwrap();
        let scheduler = PropertyScheduler::new(jobs);
        assert_eq!(scheduler.jobs(), jobs);
        assert!(!scheduler.with_level_pipelining(false).pipelines_levels());
        assert!(scheduler.with_level_pipelining(true).pipelines_levels());
    }
}
