//! The parallel property scheduler: sharded, deterministic level checking.
//!
//! Algorithm 1 proves each fanout level with one interval property whose
//! consequent covers every signal of the level.  [`PropertyScheduler`]
//! partitions that consequent into per-signal *pending properties* and solves
//! them on worker shards: each shard forks its own solver off the session's
//! frozen master encoding ([`htd_sat::SatBackend::fork`]), so workers never
//! contend on one solver and one hard sub-property cannot serialise a whole
//! level.
//!
//! # Determinism guarantee
//!
//! Every shard solves from the *same* master snapshot, so a sub-property's
//! verdict, counterexample and solver-work counters are independent of which
//! worker ran it and of the worker count.  Results merge in sub-property id
//! order (first counterexample wins), and only the consumed prefix of tasks
//! contributes statistics.  A flow run with `jobs = 1` and with `jobs = N`
//! therefore produces identical [`DetectionReport`](crate::DetectionReport)s
//! — byte-for-byte, once wall-clock durations are normalised away
//! ([`DetectionReport::normalized`](crate::DetectionReport::normalized)).
//!
//! # When to tune `jobs`
//!
//! Parallelism pays off when a level has several non-structural sub-properties
//! (RSA-class accelerators, infected AES levels).  Flows dominated by the
//! structural fast path (clean pipelines) dispatch few or no solve tasks, so
//! extra workers are harmless but idle.  The CLI defaults to the machine's
//! available parallelism; the library defaults to one worker (set the
//! `HTD_JOBS` environment variable or call [`SessionBuilder::jobs`] to
//! change it).
//!
//! [`SessionBuilder::jobs`]: crate::SessionBuilder::jobs

use std::num::NonZeroUsize;

use htd_ipc::{IntervalProperty, MiterSession, PropertyReport};
use htd_rtl::ValidatedDesign;

use crate::error::DetectError;
use crate::session::PropertyEngine;

/// Environment variable overriding the default worker count of new sessions.
pub const JOBS_ENV_VAR: &str = "HTD_JOBS";

/// Policy object selecting how many worker shards check each fanout level.
///
/// See the [module docs](self) for the sharding model and the determinism
/// guarantee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PropertyScheduler {
    jobs: NonZeroUsize,
}

impl PropertyScheduler {
    /// A scheduler running up to `jobs` worker shards per level.
    #[must_use]
    pub fn new(jobs: NonZeroUsize) -> Self {
        PropertyScheduler { jobs }
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> NonZeroUsize {
        self.jobs
    }

    /// The machine's available parallelism (1 if it cannot be determined).
    #[must_use]
    pub fn available_parallelism() -> NonZeroUsize {
        std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
    }

    /// The default worker count for new sessions: the `HTD_JOBS` environment
    /// variable when set to a positive integer, otherwise 1.
    #[must_use]
    pub fn default_jobs() -> NonZeroUsize {
        std::env::var(JOBS_ENV_VAR)
            .ok()
            .and_then(|v| v.parse::<NonZeroUsize>().ok())
            .unwrap_or(NonZeroUsize::MIN)
    }
}

impl Default for PropertyScheduler {
    fn default() -> Self {
        PropertyScheduler::new(Self::default_jobs())
    }
}

/// Engine over a [`MiterSession`] driven by the sharded scheduler.
pub(crate) struct SchedulerEngine<'a> {
    pub(crate) miter: &'a mut MiterSession,
    pub(crate) jobs: NonZeroUsize,
}

impl PropertyEngine for SchedulerEngine<'_> {
    fn check(
        &mut self,
        design: &ValidatedDesign,
        property: &IntervalProperty,
    ) -> Result<PropertyReport, DetectError> {
        self.miter
            .check_level(design, property, self.jobs)
            .map_err(|e| DetectError::Backend {
                message: e.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_defaults_to_at_least_one_worker() {
        assert!(PropertyScheduler::default().jobs().get() >= 1);
        assert!(PropertyScheduler::available_parallelism().get() >= 1);
    }

    #[test]
    fn scheduler_carries_its_worker_count() {
        let jobs = NonZeroUsize::new(7).unwrap();
        assert_eq!(PropertyScheduler::new(jobs).jobs(), jobs);
    }
}
