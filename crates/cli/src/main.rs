//! The `htd` binary: golden-free hardware-Trojan detection from the command
//! line.  See `htd help` or the crate documentation of `htd-cli`.

use std::process::ExitCode;

use htd_cli::{run, Command};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match Command::parse(args) {
        Ok(command) => command,
        Err(error) => {
            eprintln!("error: {error}");
            return ExitCode::from(2);
        }
    };
    match run(&command) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
