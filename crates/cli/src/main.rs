//! The `htd` binary: golden-free hardware-Trojan detection from the command
//! line.  See `htd help` or the crate documentation of `htd-cli`.

// The binary shim itself is safe code; the audited SIGTERM FFI lives behind
// `htd_cli::signal`.
#![forbid(unsafe_code)]

use std::process::ExitCode;

use htd_cli::{run, CliError, Command};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match Command::parse(args) {
        Ok(command) => command,
        Err(error) => {
            eprintln!("error: {error}");
            return ExitCode::from(2);
        }
    };
    match run(&command) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        // A failed lint is a report, not an error banner: the findings go to
        // stdout (where CI and humans expect them) and only the exit code
        // carries the verdict.
        Err(CliError::Lint { report }) => {
            print!("{report}");
            ExitCode::FAILURE
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
