//! Loading RTL designs from disk: Verilog sources or the textual netlist
//! format, selected by file extension.

use std::fmt;
use std::path::Path;

use htd_rtl::{netlist, ValidatedDesign};
use htd_trusthub::registry::Benchmark;
use htd_verilog::ElaborateOptions;

use crate::commands::CliError;

/// The recognised input formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputFormat {
    /// Synthesizable-subset Verilog (`.v`, `.sv`, `.vh`).
    Verilog,
    /// The textual netlist format of `htd-rtl`.
    Netlist,
}

impl InputFormat {
    /// Chooses the format from a file extension.
    #[must_use]
    pub fn from_path(path: &Path) -> InputFormat {
        match path
            .extension()
            .and_then(|e| e.to_str())
            .map(str::to_ascii_lowercase)
            .as_deref()
        {
            Some("v" | "sv" | "vh") => InputFormat::Verilog,
            _ => InputFormat::Netlist,
        }
    }
}

impl fmt::Display for InputFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputFormat::Verilog => write!(f, "Verilog"),
            InputFormat::Netlist => write!(f, "netlist"),
        }
    }
}

/// Reads and elaborates an RTL input.
///
/// Besides files, the `trusthub:NAME` scheme resolves a bundled Trust-Hub-
/// style benchmark by its Table-I name (case-insensitive, separators
/// ignored: `trusthub:AES-T1400` and `trusthub:aes_t1400` both work), so
/// the service smoke tests and `htd export` need no RTL files on disk.
///
/// # Errors
///
/// Returns a [`CliError`] for I/O problems and for parse or elaboration
/// errors of the selected front-end.
pub fn load_design(path: &Path, top: Option<&str>) -> Result<ValidatedDesign, CliError> {
    if let Some(name) = path.to_str().and_then(|s| s.strip_prefix("trusthub:")) {
        return build_benchmark(path, name);
    }
    let source = std::fs::read_to_string(path).map_err(|e| CliError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    match InputFormat::from_path(path) {
        InputFormat::Verilog => {
            let options = ElaborateOptions {
                top: top.map(str::to_string),
                ..ElaborateOptions::default()
            };
            htd_verilog::compile_with_options(&source, &options).map_err(|e| CliError::Frontend {
                path: path.to_path_buf(),
                message: e.to_string(),
            })
        }
        InputFormat::Netlist => netlist::parse(&source).map_err(|e| CliError::Frontend {
            path: path.to_path_buf(),
            message: e.to_string(),
        }),
    }
}

/// Resolves a `trusthub:NAME` reference against the bundled benchmark
/// registry.  Matching is case-insensitive and ignores `-`/`_`.
fn build_benchmark(path: &Path, name: &str) -> Result<ValidatedDesign, CliError> {
    fn canon(s: &str) -> String {
        s.chars()
            .filter(char::is_ascii_alphanumeric)
            .map(|c| c.to_ascii_lowercase())
            .collect()
    }
    let wanted = canon(name);
    let benchmark = Benchmark::all()
        .into_iter()
        .find(|b| canon(b.info().name) == wanted)
        .ok_or_else(|| CliError::Frontend {
            path: path.to_path_buf(),
            message: format!(
                "unknown benchmark `{name}`; known benchmarks: {}",
                Benchmark::all()
                    .iter()
                    .map(|b| b.info().name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        })?;
    benchmark.build().map_err(|e| CliError::Frontend {
        path: path.to_path_buf(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn formats_are_selected_by_extension() {
        assert_eq!(
            InputFormat::from_path(Path::new("a.v")),
            InputFormat::Verilog
        );
        assert_eq!(
            InputFormat::from_path(Path::new("a.SV")),
            InputFormat::Verilog
        );
        assert_eq!(
            InputFormat::from_path(Path::new("a.netlist")),
            InputFormat::Netlist
        );
        assert_eq!(InputFormat::from_path(Path::new("a")), InputFormat::Netlist);
        assert_eq!(InputFormat::Verilog.to_string(), "Verilog");
    }

    #[test]
    fn missing_files_produce_an_io_error() {
        let err = load_design(Path::new("/nonexistent/definitely_missing.v"), None).unwrap_err();
        match err {
            CliError::Io { path, .. } => {
                assert_eq!(path, PathBuf::from("/nonexistent/definitely_missing.v"));
            }
            other => panic!("expected an I/O error, got {other}"),
        }
    }

    #[test]
    fn verilog_and_netlist_sources_both_load() {
        let dir = std::env::temp_dir();
        let v_path = dir.join("htd_cli_test_adder.v");
        std::fs::write(
            &v_path,
            "module adder(input clk, input [3:0] a, b, output [3:0] s);
               reg [3:0] sum;
               always @(posedge clk) sum <= a + b;
               assign s = sum;
             endmodule",
        )
        .unwrap();
        let design = load_design(&v_path, None).unwrap();
        assert_eq!(design.design().name(), "adder");

        let netlist_path = dir.join("htd_cli_test_adder.netlist");
        std::fs::write(&netlist_path, htd_rtl::netlist::dump(&design)).unwrap();
        let reloaded = load_design(&netlist_path, None).unwrap();
        assert_eq!(
            reloaded.design().registers().len(),
            design.design().registers().len()
        );

        std::fs::remove_file(v_path).ok();
        std::fs::remove_file(netlist_path).ok();
    }

    #[test]
    fn trusthub_scheme_resolves_benchmarks_by_name() {
        let design = load_design(Path::new("trusthub:rs232_ht_free"), None).unwrap();
        assert!(design.design().name().starts_with("rs232"));

        let same = load_design(Path::new("trusthub:RS232 (HT-free)"), None).unwrap();
        assert_eq!(same.design().name(), design.design().name());

        let err = load_design(Path::new("trusthub:no_such_core"), None).unwrap_err();
        match err {
            CliError::Frontend { message, .. } => {
                assert!(message.contains("unknown benchmark"), "{message}");
                assert!(message.contains("AES-T100"), "{message}");
            }
            other => panic!("expected a front-end error, got {other}"),
        }
    }

    #[test]
    fn frontend_errors_are_reported_with_the_path() {
        let dir = std::env::temp_dir();
        let path = dir.join("htd_cli_test_broken.v");
        std::fs::write(&path, "module broken(; endmodule").unwrap();
        let err = load_design(&path, None).unwrap_err();
        assert!(matches!(err, CliError::Frontend { .. }));
        assert!(err.to_string().contains("htd_cli_test_broken.v"));
        std::fs::remove_file(path).ok();
    }
}
