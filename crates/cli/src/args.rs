//! Hand-rolled argument parsing for the `htd` binary.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

use htd_core::BackendChoice;

/// Errors produced while parsing the command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseArgsError {
    /// No subcommand was given.
    MissingCommand,
    /// The subcommand is not one of the known ones.
    UnknownCommand(String),
    /// A flag is not recognised for this subcommand.
    UnknownFlag(String),
    /// A flag that needs a value was given without one.
    MissingValue(String),
    /// A required positional argument (the input file) is missing.
    MissingInput,
    /// A numeric flag value could not be parsed.
    InvalidNumber(String),
    /// The `--backend` value (or the `HTD_PORTFOLIO` environment default)
    /// is not `builtin`, `dimacs:CMD`, `ipasir:LIB` or
    /// `portfolio:B1,B2,…`.
    InvalidBackend(String),
}

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseArgsError::MissingCommand => {
                write!(f, "missing subcommand (try `htd help`)")
            }
            ParseArgsError::UnknownCommand(cmd) => {
                write!(f, "unknown subcommand `{cmd}` (try `htd help`)")
            }
            ParseArgsError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            ParseArgsError::MissingValue(flag) => write!(f, "flag `{flag}` needs a value"),
            ParseArgsError::MissingInput => write!(f, "missing input file"),
            ParseArgsError::InvalidNumber(value) => {
                write!(f, "`{value}` is not a valid number")
            }
            ParseArgsError::InvalidBackend(message) => write!(f, "{message}"),
        }
    }
}

impl Error for ParseArgsError {}

/// Options of the `detect` subcommand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectArgs {
    /// The RTL input file (Verilog or textual netlist).
    pub input: PathBuf,
    /// Explicit top module name for Verilog inputs.
    pub top: Option<String>,
    /// Write a GraphViz rendering of the fanout levels to this path.
    pub dot: Option<PathBuf>,
    /// Write counterexample waveforms to `<prefix>_instance{1,2}.vcd`.
    pub vcd_prefix: Option<PathBuf>,
    /// Register names to waive as benign state (Sec. V-B scenario 2).
    pub benign: Vec<String>,
    /// The SAT backend to solve with (`builtin`, `dimacs:CMD`,
    /// `ipasir:LIB` or `portfolio:B1,B2,…`).  When `--backend` is absent
    /// the strict `HTD_PORTFOLIO` environment default applies.
    pub backend: BackendChoice,
    /// Stream per-property progress to stderr while the flow runs.
    pub progress: bool,
    /// Worker shards per fanout level (`None` = the machine's available
    /// parallelism).  Reports are identical for every value.
    pub jobs: Option<usize>,
    /// Disable cross-level pipelining (prepare each level only after the
    /// previous one merged).  Reports are identical either way.
    pub no_pipeline: bool,
    /// Print the [`normalized`](htd_core::DetectionReport::normalized)
    /// report (wall-clock durations zeroed): runs over the same design are
    /// then byte-identical, which `htd submit` and the CI smoke rely on.
    pub normalize: bool,
}

impl Default for DetectArgs {
    fn default() -> Self {
        DetectArgs {
            input: PathBuf::new(),
            top: None,
            dot: None,
            vcd_prefix: None,
            benign: Vec::new(),
            backend: BackendChoice::Builtin,
            progress: false,
            jobs: None,
            no_pipeline: false,
            normalize: false,
        }
    }
}

/// Options of the `serve` subcommand.  Every `None` falls back to the
/// strict `HTD_SERVE_*` environment defaults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeArgs {
    /// Listen address (`--addr`), e.g. `127.0.0.1:7171`.
    pub addr: Option<String>,
    /// Admission bound on queued plus running jobs (`--max-jobs`).
    pub max_jobs: Option<usize>,
    /// Snapshot-cache byte budget (`--cache-bytes`; 0 disables caching).
    pub cache_bytes: Option<u64>,
    /// Shared solve-pool workers (`--jobs`; default available parallelism).
    pub jobs: Option<usize>,
    /// Per-job wall-clock ceiling in milliseconds (`--budget-deadline-ms`).
    pub budget_deadline_ms: Option<u64>,
    /// Per-job solver-conflict ceiling (`--budget-conflicts`).
    pub budget_conflicts: Option<u64>,
    /// Grace period for running jobs during drain (`--drain-deadline-ms`).
    pub drain_deadline_ms: Option<u64>,
}

/// Options of the `submit` subcommand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitArgs {
    /// The RTL input file (Verilog, netlist, or a `trusthub:NAME` scheme).
    pub input: PathBuf,
    /// Explicit top module name for Verilog inputs.
    pub top: Option<String>,
    /// Daemon address (`--addr`; default: the `HTD_SERVE_ADDR` resolution).
    pub addr: Option<String>,
    /// Echo every raw NDJSON frame to stdout instead of the report text.
    pub ndjson: bool,
    /// Tenant label sent as the `X-HTD-Tenant` header (`--tenant`).
    pub tenant: Option<String>,
    /// Request a wall-clock budget for this job (`--budget-deadline-ms`).
    pub budget_deadline_ms: Option<u64>,
    /// Request a conflict budget for this job (`--budget-conflicts`).
    pub budget_conflicts: Option<u64>,
    /// Retry rejected/unreachable submissions up to N times (`--retries`;
    /// default 0: fail fast).  Only pre-acceptance failures are retried.
    pub retries: Option<u32>,
    /// Base backoff delay in milliseconds for `--retries` (`--retry-base-ms`).
    pub retry_base_ms: Option<u64>,
}

/// One parsed `htd` invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Run the detection flow on an RTL file.
    Detect(DetectArgs),
    /// Print design statistics and the fanout levels.
    Stats {
        /// The RTL input file.
        input: PathBuf,
        /// Explicit top module name for Verilog inputs.
        top: Option<String>,
    },
    /// Regenerate Table I of the paper on the bundled benchmarks.
    Table1,
    /// Run the perf-trajectory benchmark harness: the Table-I set (or a
    /// smoke subset) through the sequential and sharded engines, printing a
    /// comparison table and optionally writing a `BENCH_*.json` file.
    Bench {
        /// Write the JSON trajectory to this path.
        json: Option<PathBuf>,
        /// Worker shards (`None` = available parallelism).
        jobs: Option<usize>,
        /// Run only the cheap smoke subset (used by CI).
        smoke: bool,
        /// Disable cross-level pipelining in the scheduled engine.
        no_pipeline: bool,
        /// The SAT backend to measure (rows and the JSON header carry the
        /// tag, so trajectories of different backends never get compared
        /// silently).
        backend: BackendChoice,
    },
    /// Solve a DIMACS CNF file and print the result in SAT-competition
    /// format (`s SATISFIABLE` / `s UNSATISFIABLE` plus `v` model lines).
    ///
    /// Exists so `--backend dimacs:…` can be pointed at the `htd` binary
    /// itself — the process-backend plumbing is testable without any
    /// third-party solver installed.
    Sat {
        /// The DIMACS CNF input file.
        input: PathBuf,
    },
    /// Run the baseline detectors on an RTL file for comparison.
    Baselines {
        /// The RTL input file.
        input: PathBuf,
        /// Explicit top module name for Verilog inputs.
        top: Option<String>,
        /// Unrolling bound for the bounded-model-checking baseline.
        bound: usize,
    },
    /// Run the multi-tenant detection daemon.
    Serve(ServeArgs),
    /// Submit an RTL file to a running daemon and stream its job.
    Submit(SubmitArgs),
    /// Print the canonical netlist text of an RTL input (the exact bytes
    /// `submit` sends, and the content the snapshot cache is keyed on).
    Export {
        /// The RTL input file (Verilog, netlist, or `trusthub:NAME`).
        input: PathBuf,
        /// Explicit top module name for Verilog inputs.
        top: Option<String>,
        /// Write to this file instead of stdout.
        output: Option<PathBuf>,
    },
    /// Run the workspace invariant checker (`htd-analyze`) over the source
    /// tree and report findings.
    Lint {
        /// Emit the machine-readable JSON report instead of text.
        json: bool,
        /// Workspace root to lint (default: walk up from the current
        /// directory to the first `[workspace]` manifest).
        root: Option<PathBuf>,
    },
    /// Print usage information.
    Help,
}

impl Command {
    /// Parses the command line (without the binary name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseArgsError`] describing the first problem found.
    pub fn parse<I, S>(args: I) -> Result<Command, ParseArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = args.into_iter().map(Into::into);
        let command = args.next().ok_or(ParseArgsError::MissingCommand)?;
        let rest: Vec<String> = args.collect();
        match command.as_str() {
            "detect" => {
                let mut parsed = DetectArgs::default();
                let mut input = None;
                let mut backend_explicit = false;
                let mut iter = rest.into_iter();
                while let Some(arg) = iter.next() {
                    match arg.as_str() {
                        "--top" => parsed.top = Some(required(&mut iter, "--top")?),
                        "--dot" => parsed.dot = Some(required(&mut iter, "--dot")?.into()),
                        "--vcd" => {
                            parsed.vcd_prefix = Some(required(&mut iter, "--vcd")?.into());
                        }
                        "--benign" => parsed.benign.push(required(&mut iter, "--benign")?),
                        "--backend" => {
                            let value = required(&mut iter, "--backend")?;
                            parsed.backend =
                                value.parse().map_err(ParseArgsError::InvalidBackend)?;
                            backend_explicit = true;
                        }
                        "--progress" => parsed.progress = true,
                        "--jobs" => {
                            let value = required(&mut iter, "--jobs")?;
                            let jobs: usize = value
                                .parse()
                                .map_err(|_| ParseArgsError::InvalidNumber(value.clone()))?;
                            if jobs == 0 {
                                return Err(ParseArgsError::InvalidNumber(value));
                            }
                            parsed.jobs = Some(jobs);
                        }
                        "--no-pipeline" => parsed.no_pipeline = true,
                        "--normalize" => parsed.normalize = true,
                        flag if flag.starts_with("--") => {
                            return Err(ParseArgsError::UnknownFlag(flag.to_string()))
                        }
                        positional => input = Some(PathBuf::from(positional)),
                    }
                }
                parsed.input = input.ok_or(ParseArgsError::MissingInput)?;
                if !backend_explicit {
                    // An explicit flag beats the environment; without one the
                    // strict HTD_PORTFOLIO default applies (a malformed value
                    // is a parse error, never a silent builtin fallback).
                    parsed.backend = BackendChoice::try_default_from_env()
                        .map_err(ParseArgsError::InvalidBackend)?;
                }
                Ok(Command::Detect(parsed))
            }
            "serve" => {
                let mut parsed = ServeArgs::default();
                let mut iter = rest.into_iter();
                while let Some(arg) = iter.next() {
                    match arg.as_str() {
                        "--addr" => parsed.addr = Some(required(&mut iter, "--addr")?),
                        "--max-jobs" => {
                            parsed.max_jobs =
                                Some(positive_number(&required(&mut iter, "--max-jobs")?)?);
                        }
                        "--cache-bytes" => {
                            let value = required(&mut iter, "--cache-bytes")?;
                            parsed.cache_bytes = Some(
                                value
                                    .parse()
                                    .map_err(|_| ParseArgsError::InvalidNumber(value))?,
                            );
                        }
                        "--jobs" => {
                            parsed.jobs = Some(positive_number(&required(&mut iter, "--jobs")?)?);
                        }
                        "--budget-deadline-ms" => {
                            parsed.budget_deadline_ms =
                                Some(positive_u64(&required(&mut iter, "--budget-deadline-ms")?)?);
                        }
                        "--budget-conflicts" => {
                            parsed.budget_conflicts =
                                Some(positive_u64(&required(&mut iter, "--budget-conflicts")?)?);
                        }
                        "--drain-deadline-ms" => {
                            parsed.drain_deadline_ms =
                                Some(positive_u64(&required(&mut iter, "--drain-deadline-ms")?)?);
                        }
                        other => return Err(ParseArgsError::UnknownFlag(other.to_string())),
                    }
                }
                Ok(Command::Serve(parsed))
            }
            "submit" => {
                let mut input = None;
                let mut top = None;
                let mut addr = None;
                let mut ndjson = false;
                let mut tenant = None;
                let mut budget_deadline_ms = None;
                let mut budget_conflicts = None;
                let mut retries = None;
                let mut retry_base_ms = None;
                let mut iter = rest.into_iter();
                while let Some(arg) = iter.next() {
                    match arg.as_str() {
                        "--top" => top = Some(required(&mut iter, "--top")?),
                        "--addr" => addr = Some(required(&mut iter, "--addr")?),
                        "--ndjson" => ndjson = true,
                        "--tenant" => tenant = Some(required(&mut iter, "--tenant")?),
                        "--budget-deadline-ms" => {
                            budget_deadline_ms =
                                Some(positive_u64(&required(&mut iter, "--budget-deadline-ms")?)?);
                        }
                        "--budget-conflicts" => {
                            budget_conflicts =
                                Some(positive_u64(&required(&mut iter, "--budget-conflicts")?)?);
                        }
                        "--retries" => {
                            let value = required(&mut iter, "--retries")?;
                            retries = Some(
                                value
                                    .parse()
                                    .map_err(|_| ParseArgsError::InvalidNumber(value))?,
                            );
                        }
                        "--retry-base-ms" => {
                            retry_base_ms =
                                Some(positive_u64(&required(&mut iter, "--retry-base-ms")?)?);
                        }
                        flag if flag.starts_with("--") => {
                            return Err(ParseArgsError::UnknownFlag(flag.to_string()))
                        }
                        positional => input = Some(PathBuf::from(positional)),
                    }
                }
                Ok(Command::Submit(SubmitArgs {
                    input: input.ok_or(ParseArgsError::MissingInput)?,
                    top,
                    addr,
                    ndjson,
                    tenant,
                    budget_deadline_ms,
                    budget_conflicts,
                    retries,
                    retry_base_ms,
                }))
            }
            "export" => {
                let mut input = None;
                let mut top = None;
                let mut output = None;
                let mut iter = rest.into_iter();
                while let Some(arg) = iter.next() {
                    match arg.as_str() {
                        "--top" => top = Some(required(&mut iter, "--top")?),
                        "-o" | "--output" => {
                            output = Some(PathBuf::from(required(&mut iter, "--output")?));
                        }
                        flag if flag.starts_with("--") => {
                            return Err(ParseArgsError::UnknownFlag(flag.to_string()))
                        }
                        positional => input = Some(PathBuf::from(positional)),
                    }
                }
                Ok(Command::Export {
                    input: input.ok_or(ParseArgsError::MissingInput)?,
                    top,
                    output,
                })
            }
            "sat" => {
                let mut input = None;
                for arg in rest {
                    if arg.starts_with("--") {
                        return Err(ParseArgsError::UnknownFlag(arg));
                    }
                    input = Some(PathBuf::from(arg));
                }
                Ok(Command::Sat {
                    input: input.ok_or(ParseArgsError::MissingInput)?,
                })
            }
            "stats" => {
                let (input, top, _) = positional_with_top(rest, None)?;
                Ok(Command::Stats { input, top })
            }
            "baselines" => {
                let (input, top, bound) = positional_with_top(rest, Some(8))?;
                Ok(Command::Baselines {
                    input,
                    top,
                    bound: bound.unwrap_or(8),
                })
            }
            "table1" => Ok(Command::Table1),
            "bench" => {
                let mut json = None;
                let mut jobs = None;
                let mut smoke = false;
                let mut no_pipeline = false;
                let mut backend = None;
                let mut iter = rest.into_iter();
                while let Some(arg) = iter.next() {
                    match arg.as_str() {
                        "--json" => json = Some(PathBuf::from(required(&mut iter, "--json")?)),
                        "--jobs" => {
                            let value = required(&mut iter, "--jobs")?;
                            let parsed: usize = value
                                .parse()
                                .map_err(|_| ParseArgsError::InvalidNumber(value.clone()))?;
                            if parsed == 0 {
                                return Err(ParseArgsError::InvalidNumber(value));
                            }
                            jobs = Some(parsed);
                        }
                        "--smoke" => smoke = true,
                        "--no-pipeline" => no_pipeline = true,
                        "--backend" => {
                            let value = required(&mut iter, "--backend")?;
                            backend = Some(value.parse().map_err(ParseArgsError::InvalidBackend)?);
                        }
                        other => return Err(ParseArgsError::UnknownFlag(other.to_string())),
                    }
                }
                let backend = match backend {
                    Some(backend) => backend,
                    // Same environment fallback as `detect`: benchmark runs
                    // honour HTD_PORTFOLIO unless --backend overrides it.
                    None => BackendChoice::try_default_from_env()
                        .map_err(ParseArgsError::InvalidBackend)?,
                };
                Ok(Command::Bench {
                    json,
                    jobs,
                    smoke,
                    no_pipeline,
                    backend,
                })
            }
            "lint" => {
                let mut json = false;
                let mut root = None;
                for arg in rest {
                    match arg.as_str() {
                        "--json" => json = true,
                        flag if flag.starts_with("--") => {
                            return Err(ParseArgsError::UnknownFlag(flag.to_string()))
                        }
                        positional => root = Some(PathBuf::from(positional)),
                    }
                }
                Ok(Command::Lint { json, root })
            }
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(ParseArgsError::UnknownCommand(other.to_string())),
        }
    }
}

fn required(iter: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, ParseArgsError> {
    iter.next()
        .ok_or_else(|| ParseArgsError::MissingValue(flag.to_string()))
}

fn positive_number(value: &str) -> Result<usize, ParseArgsError> {
    match value.parse::<usize>() {
        Ok(parsed) if parsed > 0 => Ok(parsed),
        _ => Err(ParseArgsError::InvalidNumber(value.to_string())),
    }
}

fn positive_u64(value: &str) -> Result<u64, ParseArgsError> {
    match value.parse::<u64>() {
        Ok(parsed) if parsed > 0 => Ok(parsed),
        _ => Err(ParseArgsError::InvalidNumber(value.to_string())),
    }
}

/// Parses `<input> [--top NAME] [--bound N]` argument lists.
fn positional_with_top(
    rest: Vec<String>,
    default_bound: Option<usize>,
) -> Result<(PathBuf, Option<String>, Option<usize>), ParseArgsError> {
    let mut input = None;
    let mut top = None;
    let mut bound = default_bound;
    let mut iter = rest.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--top" => top = Some(required(&mut iter, "--top")?),
            "--bound" if default_bound.is_some() => {
                let value = required(&mut iter, "--bound")?;
                bound = Some(
                    value
                        .parse()
                        .map_err(|_| ParseArgsError::InvalidNumber(value))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(ParseArgsError::UnknownFlag(flag.to_string()))
            }
            positional => input = Some(PathBuf::from(positional)),
        }
    }
    Ok((input.ok_or(ParseArgsError::MissingInput)?, top, bound))
}

/// The usage text printed by `htd help`.
#[must_use]
pub fn usage() -> &'static str {
    "htd — golden-free formal hardware-Trojan detection (DATE'24 reproduction)

USAGE:
    htd detect <file> [--top NAME] [--benign REG]... [--dot FILE] [--vcd PREFIX]
                      [--backend builtin|dimacs:CMD|ipasir:LIB|portfolio:B1,B2,…]
                      [--progress] [--jobs N] [--no-pipeline] [--normalize]
    htd serve [--addr HOST:PORT] [--max-jobs N] [--cache-bytes N] [--jobs N]
              [--budget-deadline-ms N] [--budget-conflicts N]
              [--drain-deadline-ms N]
    htd submit <file> [--top NAME] [--addr HOST:PORT] [--ndjson] [--tenant NAME]
               [--budget-deadline-ms N] [--budget-conflicts N]
               [--retries N] [--retry-base-ms N]
    htd export <file> [--top NAME] [-o FILE]
    htd stats <file> [--top NAME]
    htd baselines <file> [--top NAME] [--bound N]
    htd table1
    htd bench [--json FILE] [--jobs N] [--smoke] [--no-pipeline]
              [--backend builtin|dimacs:CMD|ipasir:LIB|portfolio:B1,B2,…]
    htd sat <file.cnf>
    htd lint [ROOT] [--json]
    htd help

INPUTS:
    *.v / *.sv      synthesizable-subset Verilog (single clock domain)
    trusthub:NAME   a bundled Trust-Hub-style benchmark (e.g. trusthub:AES-T1400)
    anything else   the textual netlist format of htd-rtl

SUBCOMMANDS:
    detect      run Algorithm 1 (init/fanout properties + coverage check)
    serve       run the multi-tenant detection daemon (HTTP + NDJSON streaming)
    submit      send a design to a running daemon and stream its job
    export      print the canonical netlist text (the bytes submit sends)
    stats       design statistics and the structural fanout levels
    baselines   bounded model checking, random testing, UCI and FANCI
    table1      regenerate Table I of the paper on the bundled benchmarks
    bench       perf-trajectory harness (sequential vs sharded engine timings)
    sat         solve a DIMACS CNF file (SAT-competition output format)
    lint        check the workspace sources against the repo invariants
                (unsafe-audit, determinism, strict-env, exhaustive-stats,
                serve-panic-hygiene); exits non-zero on unwaived findings

DETECT FLAGS:
    --backend builtin        solve with the bundled incremental CDCL solver (default)
    --backend dimacs:CMD     shell out to a DIMACS-speaking solver binary per query
                             (the solver re-reads the whole CNF every time)
    --backend ipasir:LIB     load a solver shared library through the IPASIR
                             incremental C ABI: clauses are transmitted once and
                             the solver stays live across all queries.  The
                             bundled reference library is built by
                             `cargo build -p ipasir-shim` (libipasir_htd.so)
    --backend portfolio:B1,B2,…
                             race every solve task across N member backends
                             (e.g. portfolio:builtin,ipasir:libipasir_htd.so);
                             first definitive answer wins, losers are cancelled.
                             An optional policy token picks the counterexample
                             rule: deterministic-cex (default — SAT models come
                             only from the first member, so reports are
                             byte-identical to running it alone and racers can
                             only accelerate UNSAT answers) or fastest-cex
                             (take the winner's model, fastest wall-clock).
                             Without --backend, the HTD_PORTFOLIO environment
                             variable supplies the same member list
    --progress               stream per-property progress to stderr while running
    --jobs N                 worker shards per fanout level (default: available
                             parallelism; reports are identical for every N)
    --no-pipeline            solve one level at a time instead of pipelining
                             levels (reports are identical either way)
    --normalize              print the report with wall-clock durations zeroed;
                             runs over the same design are then byte-identical
                             (submit streams exactly this rendering)

SERVE FLAGS (flags override the strict HTD_SERVE_* environment defaults):
    --addr HOST:PORT         listen address (HTD_SERVE_ADDR; default 127.0.0.1:7171)
    --max-jobs N             admission bound on queued+running jobs
                             (HTD_SERVE_MAX_JOBS; default 8)
    --cache-bytes N          frozen-master snapshot-cache budget, 0 disables
                             (HTD_SERVE_CACHE_BYTES; default 256 MiB)
    --jobs N                 shared solve-pool workers (default: available
                             parallelism)
    --budget-deadline-ms N   per-job wall-clock ceiling; exhausted jobs stream a
                             budget_exhausted frame (HTD_SERVE_BUDGET_DEADLINE_MS;
                             default: unlimited)
    --budget-conflicts N     per-job solver-conflict ceiling, builtin backend
                             (HTD_SERVE_BUDGET_CONFLICTS; default: unlimited)
    --drain-deadline-ms N    grace period for running jobs after SIGTERM or
                             POST /admin/drain before they are cancelled
                             (HTD_SERVE_DRAIN_DEADLINE_MS; default 30000)

SUBMIT FLAGS:
    --addr HOST:PORT         daemon address (default: the HTD_SERVE_ADDR resolution)
    --ndjson                 print every raw NDJSON frame instead of the report
    --tenant NAME            fair-share tenant label (X-HTD-Tenant header;
                             default: the daemon buckets by peer address)
    --budget-deadline-ms N   request a wall-clock budget for this job (the daemon
                             clamps it to its own ceiling)
    --budget-conflicts N     request a solver-conflict budget for this job
    --retries N              retry overloaded/draining/unreachable submissions up
                             to N times with exponential backoff (default 0:
                             fail fast; accepted jobs are never re-submitted)
    --retry-base-ms N        base backoff delay for --retries (default 100)

BENCH FLAGS:
    --json FILE              write the BENCH_*.json perf-trajectory file
    --jobs N                 worker shards for the sharded engine
    --smoke                  run only the cheap CI smoke subset
    --no-pipeline            disable cross-level pipelining in the scheduled engine
    --backend ...            measure an alternative SAT backend (rows and the
                             JSON header carry the backend tag); portfolio:B1,B2,…
                             races the members per solve task and the table
                             reports per-design race wins

LINT FLAGS:
    ROOT                     workspace root to lint (default: walk up from the
                             current directory to the first [workspace]
                             manifest)
    --json                   emit the machine-readable JSON report (every
                             finding incl. waived ones, with justifications)
                             instead of text.  Waive a finding in-source with
                             `htd-lint: allow(<rule>): <justification>`
"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_detect_invocation() {
        let cmd = Command::parse([
            "detect",
            "design.v",
            "--top",
            "aes",
            "--benign",
            "round",
            "--benign",
            "busy",
            "--dot",
            "graph.dot",
            "--vcd",
            "cex",
            "--backend",
            "dimacs:/usr/bin/kissat",
            "--progress",
        ])
        .unwrap();
        match cmd {
            Command::Detect(args) => {
                assert_eq!(args.input, PathBuf::from("design.v"));
                assert_eq!(args.top.as_deref(), Some("aes"));
                assert_eq!(args.benign, vec!["round", "busy"]);
                assert_eq!(args.dot, Some(PathBuf::from("graph.dot")));
                assert_eq!(args.vcd_prefix, Some(PathBuf::from("cex")));
                assert_eq!(args.backend, BackendChoice::dimacs("/usr/bin/kissat"));
                assert!(args.progress);
            }
            other => panic!("expected detect, got {other:?}"),
        }
    }

    #[test]
    fn detect_defaults_to_the_builtin_backend_without_progress() {
        match Command::parse(["detect", "design.v"]).unwrap() {
            Command::Detect(args) => {
                assert_eq!(args.backend, BackendChoice::Builtin);
                assert!(!args.progress);
            }
            other => panic!("expected detect, got {other:?}"),
        }
    }

    #[test]
    fn parses_the_sat_subcommand() {
        match Command::parse(["sat", "query.cnf"]).unwrap() {
            Command::Sat { input } => assert_eq!(input, PathBuf::from("query.cnf")),
            other => panic!("expected sat, got {other:?}"),
        }
        assert_eq!(
            Command::parse(["sat"]).unwrap_err(),
            ParseArgsError::MissingInput
        );
    }

    #[test]
    fn rejects_invalid_backend_values() {
        assert!(matches!(
            Command::parse(["detect", "x.v", "--backend", "z3"]).unwrap_err(),
            ParseArgsError::InvalidBackend(_)
        ));
        assert!(matches!(
            Command::parse(["detect", "x.v", "--backend", "dimacs:"]).unwrap_err(),
            ParseArgsError::InvalidBackend(_)
        ));
        assert!(matches!(
            Command::parse(["detect", "x.v", "--backend", "ipasir:"]).unwrap_err(),
            ParseArgsError::InvalidBackend(_)
        ));
    }

    #[test]
    fn parses_the_ipasir_backend_for_detect_and_bench() {
        match Command::parse(["detect", "x.v", "--backend", "ipasir:shim/libipasir_htd.so"])
            .unwrap()
        {
            Command::Detect(args) => {
                assert_eq!(args.backend, BackendChoice::ipasir("shim/libipasir_htd.so"));
            }
            other => panic!("expected detect, got {other:?}"),
        }
        match Command::parse(["bench", "--smoke", "--backend", "ipasir:lib.so"]).unwrap() {
            Command::Bench { backend, smoke, .. } => {
                assert_eq!(backend, BackendChoice::ipasir("lib.so"));
                assert!(smoke);
            }
            other => panic!("expected bench, got {other:?}"),
        }
        assert!(usage().contains("ipasir:LIB"));
    }

    #[test]
    fn parses_the_portfolio_backend_for_detect_and_bench() {
        use htd_core::RacePolicy;

        let spec = "portfolio:builtin,ipasir:lib.so";
        match Command::parse(["detect", "x.v", "--backend", spec]).unwrap() {
            Command::Detect(args) => {
                assert_eq!(args.backend, spec.parse::<BackendChoice>().unwrap());
                assert_eq!(args.backend.to_string(), spec);
            }
            other => panic!("expected detect, got {other:?}"),
        }
        match Command::parse([
            "bench",
            "--smoke",
            "--backend",
            "portfolio:builtin,builtin,fastest-cex",
        ])
        .unwrap()
        {
            Command::Bench { backend, .. } => {
                assert_eq!(
                    backend,
                    BackendChoice::portfolio(
                        vec![BackendChoice::Builtin, BackendChoice::Builtin],
                        RacePolicy::FastestCex,
                    )
                );
            }
            other => panic!("expected bench, got {other:?}"),
        }
        assert!(matches!(
            Command::parse(["detect", "x.v", "--backend", "portfolio:"]).unwrap_err(),
            ParseArgsError::InvalidBackend(_)
        ));
        assert!(matches!(
            Command::parse(["bench", "--backend", "portfolio:builtin,z3"]).unwrap_err(),
            ParseArgsError::InvalidBackend(_)
        ));
        assert!(usage().contains("portfolio:B1,B2"));
        assert!(usage().contains("deterministic-cex"));
        assert!(usage().contains("fastest-cex"));
        assert!(usage().contains("HTD_PORTFOLIO"));
    }

    #[test]
    fn parses_stats_baselines_table1_and_help() {
        assert!(matches!(
            Command::parse(["stats", "x.netlist"]).unwrap(),
            Command::Stats { .. }
        ));
        assert!(matches!(
            Command::parse(["table1"]).unwrap(),
            Command::Table1
        ));
        assert!(matches!(Command::parse(["help"]).unwrap(), Command::Help));
        match Command::parse(["baselines", "x.v", "--bound", "16"]).unwrap() {
            Command::Baselines { bound, .. } => assert_eq!(bound, 16),
            other => panic!("expected baselines, got {other:?}"),
        }
    }

    #[test]
    fn parses_jobs_and_bench() {
        match Command::parse(["detect", "design.v", "--jobs", "8", "--no-pipeline"]).unwrap() {
            Command::Detect(args) => {
                assert_eq!(args.jobs, Some(8));
                assert!(args.no_pipeline);
            }
            other => panic!("expected detect, got {other:?}"),
        }
        assert_eq!(
            Command::parse(["detect", "design.v", "--jobs", "0"]).unwrap_err(),
            ParseArgsError::InvalidNumber("0".into())
        );
        match Command::parse([
            "bench",
            "--json",
            "BENCH.json",
            "--jobs",
            "4",
            "--smoke",
            "--no-pipeline",
        ])
        .unwrap()
        {
            Command::Bench {
                json,
                jobs,
                smoke,
                no_pipeline,
                backend,
            } => {
                assert_eq!(json, Some(PathBuf::from("BENCH.json")));
                assert_eq!(jobs, Some(4));
                assert!(smoke);
                assert!(no_pipeline);
                assert_eq!(backend, BackendChoice::Builtin);
            }
            other => panic!("expected bench, got {other:?}"),
        }
        match Command::parse(["bench"]).unwrap() {
            Command::Bench {
                json,
                jobs,
                smoke,
                no_pipeline,
                backend,
            } => {
                assert_eq!(json, None);
                assert_eq!(jobs, None);
                assert!(!smoke);
                assert!(!no_pipeline);
                assert_eq!(backend, BackendChoice::Builtin);
            }
            other => panic!("expected bench, got {other:?}"),
        }
        assert!(matches!(
            Command::parse(["bench", "--wrong"]).unwrap_err(),
            ParseArgsError::UnknownFlag(_)
        ));
        assert!(usage().contains("htd bench"));
    }

    #[test]
    fn parses_serve_submit_and_export() {
        match Command::parse([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--max-jobs",
            "3",
            "--cache-bytes",
            "0",
            "--jobs",
            "2",
            "--budget-deadline-ms",
            "5000",
            "--budget-conflicts",
            "100000",
            "--drain-deadline-ms",
            "2000",
        ])
        .unwrap()
        {
            Command::Serve(args) => {
                assert_eq!(args.addr.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(args.max_jobs, Some(3));
                assert_eq!(args.cache_bytes, Some(0));
                assert_eq!(args.jobs, Some(2));
                assert_eq!(args.budget_deadline_ms, Some(5000));
                assert_eq!(args.budget_conflicts, Some(100_000));
                assert_eq!(args.drain_deadline_ms, Some(2000));
            }
            other => panic!("expected serve, got {other:?}"),
        }
        assert_eq!(
            Command::parse(["serve"]).unwrap(),
            Command::Serve(ServeArgs::default())
        );
        assert_eq!(
            Command::parse(["serve", "--max-jobs", "0"]).unwrap_err(),
            ParseArgsError::InvalidNumber("0".into())
        );
        assert_eq!(
            Command::parse(["serve", "--budget-deadline-ms", "0"]).unwrap_err(),
            ParseArgsError::InvalidNumber("0".into())
        );

        match Command::parse([
            "submit",
            "design.v",
            "--addr",
            "127.0.0.1:7171",
            "--ndjson",
            "--tenant",
            "team-a",
            "--budget-deadline-ms",
            "1500",
            "--budget-conflicts",
            "9",
            "--retries",
            "4",
            "--retry-base-ms",
            "50",
        ])
        .unwrap()
        {
            Command::Submit(args) => {
                assert_eq!(args.input, PathBuf::from("design.v"));
                assert_eq!(args.addr.as_deref(), Some("127.0.0.1:7171"));
                assert!(args.ndjson);
                assert_eq!(args.tenant.as_deref(), Some("team-a"));
                assert_eq!(args.budget_deadline_ms, Some(1500));
                assert_eq!(args.budget_conflicts, Some(9));
                assert_eq!(args.retries, Some(4));
                assert_eq!(args.retry_base_ms, Some(50));
            }
            other => panic!("expected submit, got {other:?}"),
        }
        match Command::parse(["submit", "design.v", "--retries", "0"]).unwrap() {
            Command::Submit(args) => {
                assert_eq!(args.retries, Some(0), "--retries 0 means fail fast");
                assert_eq!(args.tenant, None);
                assert_eq!(args.budget_deadline_ms, None);
            }
            other => panic!("expected submit, got {other:?}"),
        }
        assert_eq!(
            Command::parse(["submit"]).unwrap_err(),
            ParseArgsError::MissingInput
        );

        match Command::parse(["export", "trusthub:AES-T1400", "-o", "aes.netlist"]).unwrap() {
            Command::Export { input, output, .. } => {
                assert_eq!(input, PathBuf::from("trusthub:AES-T1400"));
                assert_eq!(output, Some(PathBuf::from("aes.netlist")));
            }
            other => panic!("expected export, got {other:?}"),
        }

        match Command::parse(["detect", "x.v", "--normalize"]).unwrap() {
            Command::Detect(args) => assert!(args.normalize),
            other => panic!("expected detect, got {other:?}"),
        }
        assert!(usage().contains("htd serve"));
        assert!(usage().contains("htd submit"));
        assert!(usage().contains("trusthub:NAME"));
    }

    #[test]
    fn reports_helpful_errors() {
        assert_eq!(
            Command::parse(Vec::<String>::new()).unwrap_err(),
            ParseArgsError::MissingCommand
        );
        assert_eq!(
            Command::parse(["frobnicate"]).unwrap_err(),
            ParseArgsError::UnknownCommand("frobnicate".into())
        );
        assert_eq!(
            Command::parse(["detect"]).unwrap_err(),
            ParseArgsError::MissingInput
        );
        assert_eq!(
            Command::parse(["detect", "x.v", "--top"]).unwrap_err(),
            ParseArgsError::MissingValue("--top".into())
        );
        assert_eq!(
            Command::parse(["baselines", "x.v", "--bound", "many"]).unwrap_err(),
            ParseArgsError::InvalidNumber("many".into())
        );
        assert_eq!(
            Command::parse(["stats", "x.v", "--wrong"]).unwrap_err(),
            ParseArgsError::UnknownFlag("--wrong".into())
        );
        assert!(usage().contains("htd detect"));
    }
}
