//! # htd-cli
//!
//! Command-line front-end for the golden-free hardware-Trojan detection
//! toolkit.  The `htd` binary wraps the library crates so a verification
//! engineer can run the flow on an RTL file without writing Rust:
//!
//! ```text
//! htd detect design.v             # run Algorithm 1 on a Verilog module
//! htd detect design.netlist       # … or on the textual netlist format
//! htd detect design.v --dot g.dot --vcd cex   # also export analysis artefacts
//! htd detect design.v --progress  # stream per-property progress to stderr
//! htd detect design.v --backend dimacs:/usr/bin/kissat   # external SAT solver
//! htd stats design.v              # design statistics and fanout levels
//! htd table1                      # regenerate Table I of the paper
//! htd baselines design.v          # run the baseline detectors for comparison
//! htd sat query.cnf               # solve a DIMACS file (competition output)
//! ```
//!
//! `detect` runs through a [`htd_core::DetectionSession`]: one incremental
//! miter encoding serves every property of the flow, and `--progress` taps
//! the session's streaming [`htd_core::FlowEvent`] API.
//!
//! Argument parsing is hand-rolled (the toolkit has no CLI dependencies);
//! [`Command::parse`] turns `argv` into a structured command and
//! [`run`] executes it, returning the text that `main` prints.

// `deny` rather than `forbid`: the `signal` module opts back in with a
// documented `#[allow]` for the raw SIGTERM registration.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod input;
mod signal;

pub use args::{Command, DetectArgs, ParseArgsError};
pub use commands::{run, CliError};
pub use input::{load_design, InputFormat};
