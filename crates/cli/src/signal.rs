//! SIGTERM notification for `htd serve` graceful drain.
//!
//! The toolkit has no signal-handling dependency, so this module talks to
//! libc's ancient `signal(2)` registration directly — the handler does the
//! only thing an async-signal-safe handler may do here: store a relaxed
//! atomic flag that [`crate::commands`] polls from a monitor thread.
//!
//! On non-Unix targets [`install_sigterm_handler`] is a no-op and
//! [`sigterm_seen`] never flips; `htd serve` then simply runs until killed,
//! as before.

use std::sync::atomic::{AtomicBool, Ordering};

/// Latched to `true` by the handler the first time SIGTERM arrives.
static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{Ordering, SIGTERM_SEEN};

    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigterm(_signum: i32) {
        // Only an atomic store: anything more is not async-signal-safe.
        // htd-lint: allow(determinism): single-bit signal flag; no ordering with other memory is needed
        SIGTERM_SEEN.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `signal` registers a handler that performs a single
        // relaxed atomic store, which is async-signal-safe.  The function
        // pointer outlives the process and the cast matches the C ABI
        // `void (*)(int)` that `signal(2)` expects.
        unsafe {
            signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
        }
    }
}

/// Registers the SIGTERM handler.  Idempotent; a no-op off Unix.
pub fn install_sigterm_handler() {
    #[cfg(unix)]
    imp::install();
}

/// Whether SIGTERM has been delivered since the handler was installed.
#[must_use]
pub fn sigterm_seen() -> bool {
    // htd-lint: allow(determinism): single-bit signal flag; no ordering with other memory is needed
    SIGTERM_SEEN.load(Ordering::Relaxed)
}
