//! Execution of parsed commands.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::time::Duration;

use htd_baselines::bmc::{bounded_trojan_search, BmcOptions};
use htd_baselines::fanci::{control_value_analysis, FanciOptions};
use htd_baselines::uci::{unused_circuit_identification, UciOptions};
use htd_bench::trajectory;
use htd_core::replay::replay_counterexample;
use htd_core::{
    DetectError, DetectionOutcome, DetectionReport, DetectorConfig, EngineChoice, FlowEvent,
    PropertyScheduler, SessionBuilder,
};
use htd_rtl::export::fanout_dot;
use htd_rtl::netlist;
use htd_rtl::stats::DesignStats;
use htd_rtl::structural::fanout_levels;
use htd_rtl::ValidatedDesign;
use htd_sat::{parse_dimacs, SolveResult, Var};
use htd_serve::server::{ServeOptions, Server};
use htd_serve::{client as serve_client, ClientError};
use htd_trusthub::registry::Benchmark;

use crate::args::{usage, Command, DetectArgs, ServeArgs, SubmitArgs};
use crate::input::load_design;
use crate::signal;

/// Errors reported by the command runner.
#[derive(Clone, Debug)]
pub enum CliError {
    /// Reading or writing a file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying message.
        message: String,
    },
    /// A front-end (Verilog, netlist or DIMACS) rejected the input.
    Frontend {
        /// The file involved.
        path: PathBuf,
        /// The parse or elaboration error.
        message: String,
    },
    /// The detection flow itself failed.  The underlying [`DetectError`]
    /// variant is preserved so callers (and exit-code logic) can distinguish
    /// a configuration problem from a backend failure.
    Flow(DetectError),
    /// Replaying a counterexample through the simulator failed.
    Replay {
        /// The underlying message.
        message: String,
    },
    /// A `serve`/`submit` configuration value (a flag or an `HTD_SERVE_*`
    /// environment variable) was rejected.
    Config {
        /// The underlying message.
        message: String,
    },
    /// Talking to a running `htd serve` daemon failed.
    Service {
        /// The underlying message.
        message: String,
    },
    /// `htd lint` found unwaived findings.  The rendered report (text or
    /// JSON, per `--json`) is carried whole: it is the command's *output*,
    /// not an error banner, so `main` prints it on stdout and only the exit
    /// code signals failure.
    Lint {
        /// The rendered lint report.
        report: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io { path, message } => write!(f, "{}: {message}", path.display()),
            CliError::Frontend { path, message } => write!(f, "{}: {message}", path.display()),
            CliError::Flow(error) => write!(f, "detection flow failed: {error}"),
            CliError::Replay { message } => {
                write!(f, "counterexample replay failed: {message}")
            }
            CliError::Config { message } => write!(f, "{message}"),
            CliError::Service { message } => {
                write!(f, "service request failed: {message}")
            }
            CliError::Lint { report } => write!(f, "{report}"),
        }
    }
}

impl From<ClientError> for CliError {
    fn from(error: ClientError) -> Self {
        CliError::Service {
            message: error.to_string(),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Flow(error) => Some(error),
            _ => None,
        }
    }
}

impl From<DetectError> for CliError {
    fn from(error: DetectError) -> Self {
        CliError::Flow(error)
    }
}

/// Executes a parsed command and returns the text to print on stdout.
///
/// # Errors
///
/// Returns a [`CliError`] for I/O, front-end and flow failures; argument
/// errors are handled earlier by [`Command::parse`].
pub fn run(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(usage().to_string()),
        Command::Detect(args) => detect(args),
        Command::Stats { input, top } => {
            let design = load_design(input, top.as_deref())?;
            Ok(stats_text(&design))
        }
        Command::Baselines { input, top, bound } => {
            let design = load_design(input, top.as_deref())?;
            Ok(baselines_text(&design, *bound))
        }
        Command::Table1 => Ok(table1_text()),
        Command::Bench {
            json,
            jobs,
            smoke,
            no_pipeline,
            backend,
        } => bench(json.as_deref(), *jobs, *smoke, !*no_pipeline, backend),
        Command::Sat { input } => sat(input),
        Command::Serve(args) => serve(args),
        Command::Submit(args) => submit(args),
        Command::Export { input, top, output } => export(input, top.as_deref(), output.as_deref()),
        Command::Lint { json, root } => lint(*json, root.as_deref()),
    }
}

/// `htd lint`: run the workspace invariant checker (`htd-analyze`) and
/// render the report.  A clean tree returns the report as normal output; an
/// unwaived finding returns it through [`CliError::Lint`], which `main`
/// still prints on stdout but exits non-zero for — the contract the
/// `static-analysis` CI leg relies on.
fn lint(json: bool, root: Option<&Path>) -> Result<String, CliError> {
    let root = match root {
        Some(explicit) => explicit.to_path_buf(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| CliError::Io {
                path: PathBuf::from("."),
                message: e.to_string(),
            })?;
            htd_analyze::find_workspace_root(&cwd).ok_or_else(|| CliError::Config {
                message: format!(
                    "no `[workspace]` Cargo.toml above {} — pass the workspace root explicitly: \
                     htd lint ROOT",
                    cwd.display()
                ),
            })?
        }
    };
    let report =
        htd_analyze::lint_workspace(&root, &htd_analyze::LintConfig::default()).map_err(|e| {
            CliError::Io {
                path: root.clone(),
                message: e.to_string(),
            }
        })?;
    let rendered = if json {
        report.render_json()
    } else {
        report.render_text()
    };
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(CliError::Lint { report: rendered })
    }
}

/// `htd serve`: run the multi-tenant detection daemon until killed or
/// drained.  Resolution order for every knob: flag, `HTD_SERVE_*`
/// environment variable, built-in default.  SIGTERM triggers a graceful
/// drain: admission stops, running jobs get the drain deadline to finish.
fn serve(args: &ServeArgs) -> Result<String, CliError> {
    let mut options = ServeOptions::from_env().map_err(|message| CliError::Config { message })?;
    if let Some(addr) = &args.addr {
        options.addr.clone_from(addr);
    }
    if let Some(max_jobs) = args.max_jobs.and_then(NonZeroUsize::new) {
        options.max_jobs = max_jobs;
    }
    if let Some(cache_bytes) = args.cache_bytes {
        options.cache_bytes = cache_bytes;
    }
    if let Some(workers) = args.jobs.and_then(NonZeroUsize::new) {
        options.workers = workers;
    }
    if let Some(ms) = args.budget_deadline_ms {
        options.budget.deadline = Some(Duration::from_millis(ms));
    }
    if let Some(ceiling) = args.budget_conflicts {
        options.budget.conflict_ceiling = Some(ceiling);
    }
    if let Some(ms) = args.drain_deadline_ms {
        options.drain_deadline = Duration::from_millis(ms);
    }
    let addr = options.addr.clone();
    let (workers, max_jobs, cache_bytes) = (options.workers, options.max_jobs, options.cache_bytes);
    let server = Server::start(options).map_err(|e| CliError::Io {
        path: PathBuf::from(addr),
        message: e.to_string(),
    })?;
    eprintln!(
        "htd serve listening on {} ({workers} workers, {max_jobs} job slots, \
         {cache_bytes} cache bytes)",
        server.addr()
    );
    signal::install_sigterm_handler();
    let drain = server.drain_handle();
    std::thread::spawn(move || loop {
        if signal::sigterm_seen() {
            eprintln!("htd serve: SIGTERM received, draining");
            drain.drain();
            return;
        }
        // htd-lint: allow(determinism): SIGTERM poll cadence for the drain watcher; jobs and reports never observe it
        std::thread::sleep(Duration::from_millis(100));
    });
    server.join();
    Ok(String::new())
}

/// `htd submit`: send an RTL input to a running daemon and stream the job.
/// The default output is exactly the served report text — byte-identical to
/// `htd detect --normalize` on the same input; `--ndjson` echoes every raw
/// event frame instead.
fn submit(args: &SubmitArgs) -> Result<String, CliError> {
    let design = load_design(&args.input, args.top.as_deref())?;
    let netlist_text = netlist::dump(&design);
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None => htd_serve::try_default_addr().map_err(|message| CliError::Config { message })?,
    };
    let ndjson = args.ndjson;
    let options = serve_client::SubmitOptions {
        tenant: args.tenant.clone(),
        deadline_ms: args.budget_deadline_ms,
        conflict_ceiling: args.budget_conflicts,
        retry: args.retries.filter(|&retries| retries > 0).map(|retries| {
            serve_client::RetryPolicy {
                retries,
                base: Duration::from_millis(args.retry_base_ms.unwrap_or(100)),
                // Concurrent clients desynchronise by pid; one client's
                // schedule stays reproducible across its own retries.
                seed: u64::from(std::process::id()),
            }
        }),
    };
    let submission =
        serve_client::submit_with_options(&addr, &netlist_text, &options, &mut |line| {
            if ndjson {
                println!("{line}");
            }
        })?;
    if ndjson {
        Ok(String::new())
    } else {
        Ok(submission.report_text)
    }
}

/// `htd export`: print the canonical netlist text of an RTL input — the
/// exact bytes `submit` sends and the content the snapshot cache is keyed on.
fn export(input: &Path, top: Option<&str>, output: Option<&Path>) -> Result<String, CliError> {
    let design = load_design(input, top)?;
    let text = netlist::dump(&design);
    match output {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| CliError::Io {
                path: path.to_path_buf(),
                message: e.to_string(),
            })?;
            Ok(format!("netlist written to {}\n", path.display()))
        }
        None => Ok(text),
    }
}

/// Renders one [`FlowEvent`] as a human-readable progress line.
fn render_event(event: &FlowEvent) -> Option<String> {
    match event {
        FlowEvent::LevelStarted {
            level,
            signals,
            dep_signals,
            ..
        } => Some(if dep_signals.is_empty() {
            format!("level {level}: {} signals to prove", signals.len())
        } else {
            format!(
                "level {level}: {} signals to prove (fed by {} signal(s) of the previous level)",
                signals.len(),
                dep_signals.len()
            )
        }),
        FlowEvent::PropertyProved {
            property,
            duration,
            spurious_resolved,
            solver,
            ..
        } => {
            let note = if *spurious_resolved > 0 {
                format!(" ({spurious_resolved} spurious CEX resolved)")
            } else {
                String::new()
            };
            Some(format!(
                "  proved {property} in {:.3}s{note} ({} conflicts, {} propagations)",
                duration.as_secs_f64(),
                solver.conflicts,
                solver.propagations
            ))
        }
        FlowEvent::CounterexampleFound {
            property,
            diffs,
            spurious,
            ..
        } => Some(format!(
            "  counterexample for {property} (diverging: {}){}",
            diffs.join(", "),
            if *spurious { " — spurious" } else { "" }
        )),
        FlowEvent::ResolutionRound {
            property,
            round,
            waived,
            ..
        } => Some(format!(
            "  re-verifying {property}, round {round} (waived: {})",
            waived.join(", ")
        )),
        FlowEvent::Coverage {
            covered, uncovered, ..
        } => Some(if uncovered.is_empty() {
            format!("coverage check: all {covered} state/output signals covered")
        } else {
            format!("coverage check: {} uncovered signal(s)", uncovered.len())
        }),
        // Forward compatibility: FlowEvent is non-exhaustive.
        _ => None,
    }
}

fn detect(args: &DetectArgs) -> Result<String, CliError> {
    let design = load_design(&args.input, args.top.as_deref())?;
    let d = design.design();
    let benign = args
        .benign
        .iter()
        .filter_map(|name| d.lookup(name))
        .collect::<Vec<_>>();
    let config = DetectorConfig {
        benign_state: benign,
        ..DetectorConfig::default()
    };
    let jobs = args
        .jobs
        .and_then(NonZeroUsize::new)
        .unwrap_or_else(PropertyScheduler::available_parallelism);
    let scheduler = PropertyScheduler::new(jobs).with_level_pipelining(!args.no_pipeline);
    let mut session = SessionBuilder::new(design.clone())
        .config(config)
        .backend(args.backend.clone())
        .engine(EngineChoice::Scheduled(scheduler))
        .build()?;
    let report: DetectionReport = if args.progress {
        eprintln!(
            "running the detection flow with the `{}` backend",
            args.backend
        );
        session.run_with_observer(&mut |event| {
            if let Some(line) = render_event(event) {
                eprintln!("{line}");
            }
        })?
    } else {
        session.run()?
    };

    let mut out = String::new();
    if args.normalize {
        let _ = writeln!(out, "{}", report.normalized());
    } else {
        let _ = writeln!(out, "{report}");
    }
    if args.progress {
        let stats = session.session_stats();
        let _ = writeln!(
            out,
            "session: {} bit-blast(s), {} properties, {} AIG nodes encoded, {} SAT queries, \
             {} signals proved structurally",
            stats.bit_blasts,
            stats.properties_checked,
            stats.nodes_encoded,
            stats.queries,
            stats.structurally_proved
        );
    }

    if let Some(dot_path) = &args.dot {
        std::fs::write(dot_path, fanout_dot(&design)).map_err(|e| CliError::Io {
            path: dot_path.clone(),
            message: e.to_string(),
        })?;
        let _ = writeln!(out, "fanout-level graph written to {}", dot_path.display());
    }
    if let Some(prefix) = &args.vcd_prefix {
        if let DetectionOutcome::PropertyFailed { counterexample, .. } = &report.outcome {
            let replay =
                replay_counterexample(&design, counterexample).map_err(|e| CliError::Replay {
                    message: e.to_string(),
                })?;
            for (suffix, vcd) in [
                ("instance1", &replay.instance1_vcd),
                ("instance2", &replay.instance2_vcd),
            ] {
                let path = PathBuf::from(format!("{}_{suffix}.vcd", prefix.display()));
                std::fs::write(&path, vcd).map_err(|e| CliError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
                let _ = writeln!(out, "counterexample waveform written to {}", path.display());
            }
        } else {
            let _ = writeln!(out, "no counterexample to export (no property failed)");
        }
    }
    Ok(out)
}

/// `htd bench`: the perf-trajectory harness — run the benchmark set through
/// the sequential and sharded engines, print a comparison table, and write
/// the `BENCH_*.json` file when requested.
fn bench(
    json: Option<&Path>,
    jobs: Option<usize>,
    smoke: bool,
    pipeline: bool,
    backend: &htd_core::BackendChoice,
) -> Result<String, CliError> {
    let jobs = jobs
        .and_then(NonZeroUsize::new)
        .unwrap_or_else(PropertyScheduler::available_parallelism);
    // Reject an unusable backend (e.g. an `ipasir:` typo) with a clean
    // error before the harness starts measuring.
    backend.validate().map_err(CliError::Flow)?;
    let benchmarks = if smoke {
        trajectory::smoke_set()
    } else {
        Benchmark::all()
    };
    let records = trajectory::run_trajectory(&benchmarks, jobs, pipeline, backend);

    let mut out = String::new();
    let _ = writeln!(out, "backend: {backend}");
    let _ = writeln!(
        out,
        "{:<18} {:<20} {:>10} {:>12} {:>8}  {:>9} {:>6} {:>9} {:>6} {:>11}",
        "Benchmark",
        "Verdict",
        "wall (s)",
        "seq (s)",
        "speedup",
        "conflicts",
        "GC",
        "collected",
        "forks",
        "fork bytes"
    );
    let _ = writeln!(out, "{}", "-".repeat(117));
    for r in &records {
        let _ = writeln!(
            out,
            "{:<18} {:<20} {:>10.4} {:>12.4} {:>7.2}x  {:>9} {:>6} {:>9} {:>6} {:>11}",
            r.name,
            r.verdict,
            r.wall_secs,
            r.sequential_secs,
            r.speedup(),
            r.conflicts,
            r.gc_runs,
            r.clauses_collected,
            r.fork_count,
            r.bytes_cloned
        );
    }
    let total_wall: f64 = records.iter().map(|r| r.wall_secs).sum();
    let total_seq: f64 = records.iter().map(|r| r.sequential_secs).sum();
    let _ = writeln!(
        out,
        "total: {total_wall:.3}s sharded ({} jobs) vs {total_seq:.3}s sequential ({:.2}x)",
        jobs.get(),
        if total_wall > 0.0 {
            total_seq / total_wall
        } else {
            1.0
        }
    );
    // Per-design winner tally for portfolio backends: who actually won the
    // races, and what the losing members burnt.  Absent for single
    // backends, whose race counters are always zero.
    if records.iter().any(|r| r.race_solves > 0) {
        let _ = writeln!(
            out,
            "portfolio race tally (winner = first definitive answer):"
        );
        for r in &records {
            let _ = writeln!(
                out,
                "  {:<18} {:>5} racer wins / {:>5} races ({} primary), {} cancels wasting {} conflicts",
                r.name,
                r.race_wins,
                r.race_solves,
                r.race_solves - r.race_wins,
                r.race_cancels,
                r.race_wasted_conflicts
            );
        }
        let races: u64 = records.iter().map(|r| r.race_solves).sum();
        let wins: u64 = records.iter().map(|r| r.race_wins).sum();
        let cancels: u64 = records.iter().map(|r| r.race_cancels).sum();
        let wasted: u64 = records.iter().map(|r| r.race_wasted_conflicts).sum();
        let latency: u64 = records.iter().map(|r| r.race_cancel_latency_us).sum();
        let _ = writeln!(
            out,
            "  total: {wins} racer wins / {races} races ({} primary), {cancels} cancels wasting \
             {wasted} conflicts, mean cancel latency {:.1}us",
            races - wins,
            if cancels > 0 {
                latency as f64 / cancels as f64
            } else {
                0.0
            }
        );
    }
    if let Some(path) = json {
        std::fs::write(path, trajectory::to_json(&records, jobs, pipeline, backend)).map_err(
            |e| CliError::Io {
                path: path.to_path_buf(),
                message: e.to_string(),
            },
        )?;
        let _ = writeln!(out, "trajectory written to {}", path.display());
    }
    Ok(out)
}

/// `htd sat`: solve a DIMACS file and answer in SAT-competition format, so
/// `--backend dimacs:` can be pointed at the `htd` binary itself.
fn sat(input: &PathBuf) -> Result<String, CliError> {
    let text = std::fs::read_to_string(input).map_err(|e| CliError::Io {
        path: input.clone(),
        message: e.to_string(),
    })?;
    let mut solver = parse_dimacs(&text).map_err(|e| CliError::Frontend {
        path: input.clone(),
        message: e.to_string(),
    })?;
    let mut out = String::new();
    match solver.solve() {
        SolveResult::Sat => {
            let _ = writeln!(out, "s SATISFIABLE");
            let _ = write!(out, "v");
            for index in 0..solver.num_vars() {
                let var = Var::from_index(index as u32);
                let value = solver.value(var).unwrap_or(false);
                let _ = write!(out, " {}{}", if value { "" } else { "-" }, index + 1);
            }
            let _ = writeln!(out, " 0");
        }
        SolveResult::Unsat => {
            let _ = writeln!(out, "s UNSATISFIABLE");
        }
        SolveResult::Interrupted => {
            let _ = writeln!(out, "s UNKNOWN");
        }
    }
    Ok(out)
}

fn stats_text(design: &ValidatedDesign) -> String {
    let d = design.design();
    let stats = DesignStats::of(design);
    let mut out = String::new();
    let _ = writeln!(out, "design `{}`", d.name());
    let _ = writeln!(out, "{stats}");
    let _ = writeln!(out, "fanout levels (Algorithm 1 proof order):");
    for (k, level) in fanout_levels(design).iter().enumerate() {
        let names: Vec<&str> = level.iter().map(|&s| d.signal_name(s)).collect();
        let _ = writeln!(out, "  fanouts_CC{:<2} {}", k + 1, names.join(", "));
    }
    out
}

fn run_flow_summary(design: &ValidatedDesign) -> Result<String, DetectError> {
    let mut session = SessionBuilder::new(design.clone()).build()?;
    Ok(session.run()?.summary())
}

fn baselines_text(design: &ValidatedDesign, bound: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "baseline comparison for `{}`", design.design().name());

    let report = run_flow_summary(design).unwrap_or_else(|e| format!("flow not applicable: {e}"));
    let _ = writeln!(out, "  IPC flow (paper):       {report}");

    let bmc = bounded_trojan_search(
        design,
        &BmcOptions {
            bound,
            ..BmcOptions::default()
        },
    );
    let _ = writeln!(
        out,
        "  BMC (bound {bound}):         {} ({} CNF vars, {:.3}s)",
        if bmc.detected() {
            "divergence found"
        } else {
            "no divergence within the bound"
        },
        bmc.cnf_vars,
        bmc.duration.as_secs_f64()
    );

    match unused_circuit_identification(design, &UciOptions::default()) {
        Ok(uci) => {
            let _ = writeln!(
                out,
                "  UCI (random tests):      {} of {} signal pairs flagged",
                uci.flagged.len(),
                uci.pairs_examined
            );
        }
        Err(e) => {
            let _ = writeln!(out, "  UCI (random tests):      not applicable: {e}");
        }
    }

    let fanci = control_value_analysis(design, &FanciOptions::default());
    let _ = writeln!(
        out,
        "  FANCI (control values):  {} of {} signals flagged",
        fanci.suspicious.len(),
        fanci.signals_analysed
    );
    out
}

fn table1_text() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:<10} {:<16} {:<22} {:<22} Match",
        "Benchmark", "Payload", "Trigger", "Paper: detected by", "Ours: detected by"
    );
    let _ = writeln!(out, "{}", "-".repeat(95));
    for benchmark in Benchmark::table1() {
        let info = benchmark.info();
        let design = benchmark.build().expect("bundled benchmarks build");
        let config = DetectorConfig {
            benign_state: benchmark.benign_state(&design),
            ..DetectorConfig::default()
        };
        let report = SessionBuilder::new(design)
            .config(config)
            .build()
            .expect("bundled benchmarks are accepted")
            .run()
            .expect("flow completes");
        let ours = match &report.outcome {
            DetectionOutcome::PropertyFailed { detected_by, .. } => detected_by.to_string(),
            DetectionOutcome::UncoveredSignals { .. } => "coverage check".to_string(),
            DetectionOutcome::Secure => "NOT DETECTED".to_string(),
        };
        let matches = !report.outcome.is_secure();
        let _ = writeln!(
            out,
            "{:<16} {:<10} {:<16} {:<22} {:<22} {}",
            info.name,
            info.payload_label,
            info.trigger_label,
            info.paper_detected_by,
            ours,
            if matches { "yes" } else { "NO" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    const INFECTED: &str = "
module leaky(input clk, input rst, input [7:0] d, output [7:0] q);
  reg [7:0] stage;
  reg armed;
  always @(posedge clk or posedge rst) begin
    if (rst) armed <= 1'b0;
    else if (d == 8'h5A) armed <= 1'b1;
  end
  always @(posedge clk or posedge rst) begin
    if (rst) stage <= 8'd0;
    else stage <= d ^ {7'd0, armed};
  end
  assign q = stage;
endmodule
";

    #[test]
    fn detect_runs_end_to_end_and_writes_artefacts() {
        let input = write_temp("htd_cli_detect_input.v", INFECTED);
        let dot = std::env::temp_dir().join("htd_cli_detect_graph.dot");
        let vcd_prefix = std::env::temp_dir().join("htd_cli_detect_cex");
        let command = Command::Detect(DetectArgs {
            input: input.clone(),
            top: None,
            dot: Some(dot.clone()),
            vcd_prefix: Some(vcd_prefix.clone()),
            benign: vec![],
            ..DetectArgs::default()
        });
        let output = run(&command).unwrap();
        assert!(output.contains("TROJAN SUSPECTED"), "{output}");
        assert!(std::fs::read_to_string(&dot).unwrap().contains("digraph"));
        let vcd1 = PathBuf::from(format!("{}_instance1.vcd", vcd_prefix.display()));
        assert!(std::fs::read_to_string(&vcd1)
            .unwrap()
            .contains("$enddefinitions"));
        for path in [
            input,
            dot,
            vcd1,
            PathBuf::from(format!("{}_instance2.vcd", vcd_prefix.display())),
        ] {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn detect_with_progress_reports_session_statistics() {
        let input = write_temp("htd_cli_detect_progress_input.v", INFECTED);
        let command = Command::Detect(DetectArgs {
            input: input.clone(),
            progress: true,
            ..DetectArgs::default()
        });
        let output = run(&command).unwrap();
        assert!(output.contains("session: 1 bit-blast(s)"), "{output}");
        std::fs::remove_file(input).ok();
    }

    #[test]
    fn missing_dimacs_backend_preserves_the_detect_error_variant() {
        let input = write_temp("htd_cli_detect_backend_input.v", INFECTED);
        let command = Command::Detect(DetectArgs {
            input: input.clone(),
            backend: htd_core::BackendChoice::dimacs("/nonexistent/solver"),
            ..DetectArgs::default()
        });
        let err = run(&command).unwrap_err();
        match err {
            CliError::Flow(DetectError::Backend { .. }) => {}
            other => panic!("expected Flow(Backend), got {other:?}"),
        }
        std::fs::remove_file(input).ok();
    }

    #[test]
    fn sat_subcommand_answers_in_competition_format() {
        let sat_file = write_temp("htd_cli_sat.cnf", "p cnf 2 2\n1 2 0\n-1 0\n");
        let output = run(&Command::Sat {
            input: sat_file.clone(),
        })
        .unwrap();
        assert!(output.starts_with("s SATISFIABLE"), "{output}");
        assert!(output.contains("v "), "{output}");
        std::fs::remove_file(sat_file).ok();

        let unsat_file = write_temp("htd_cli_unsat.cnf", "p cnf 1 2\n1 0\n-1 0\n");
        let output = run(&Command::Sat {
            input: unsat_file.clone(),
        })
        .unwrap();
        assert_eq!(output.trim(), "s UNSATISFIABLE");
        std::fs::remove_file(unsat_file).ok();
    }

    #[test]
    fn stats_lists_the_fanout_levels() {
        let input = write_temp("htd_cli_stats_input.v", INFECTED);
        let output = run(&Command::Stats {
            input: input.clone(),
            top: None,
        })
        .unwrap();
        assert!(output.contains("fanouts_CC1"), "{output}");
        assert!(output.contains("leaky"));
        std::fs::remove_file(input).ok();
    }

    #[test]
    fn baselines_report_all_four_techniques() {
        let input = write_temp("htd_cli_baselines_input.v", INFECTED);
        let output = run(&Command::Baselines {
            input: input.clone(),
            top: None,
            bound: 4,
        })
        .unwrap();
        assert!(output.contains("IPC flow"));
        assert!(output.contains("BMC (bound 4)"));
        assert!(output.contains("UCI"));
        assert!(output.contains("FANCI"));
        std::fs::remove_file(input).ok();
    }

    #[test]
    fn help_prints_usage() {
        let output = run(&Command::Help).unwrap();
        assert!(output.contains("USAGE"));
        assert!(output.contains("--backend"));
    }
}
