//! Execution of parsed commands.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;

use htd_baselines::bmc::{bounded_trojan_search, BmcOptions};
use htd_baselines::fanci::{control_value_analysis, FanciOptions};
use htd_baselines::uci::{unused_circuit_identification, UciOptions};
use htd_core::replay::replay_counterexample;
use htd_core::{DetectionOutcome, DetectorConfig, TrojanDetector};
use htd_rtl::export::fanout_dot;
use htd_rtl::stats::DesignStats;
use htd_rtl::structural::fanout_levels;
use htd_rtl::ValidatedDesign;
use htd_trusthub::registry::Benchmark;

use crate::args::{usage, Command, DetectArgs};
use crate::input::load_design;

/// Errors reported by the command runner.
#[derive(Clone, Debug)]
pub enum CliError {
    /// Reading or writing a file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying message.
        message: String,
    },
    /// A front-end (Verilog or netlist) rejected the input.
    Frontend {
        /// The file involved.
        path: PathBuf,
        /// The parse or elaboration error.
        message: String,
    },
    /// The detection flow itself failed (e.g. a design without inputs).
    Flow(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io { path, message } => write!(f, "{}: {message}", path.display()),
            CliError::Frontend { path, message } => write!(f, "{}: {message}", path.display()),
            CliError::Flow(message) => write!(f, "detection flow failed: {message}"),
        }
    }
}

impl Error for CliError {}

/// Executes a parsed command and returns the text to print on stdout.
///
/// # Errors
///
/// Returns a [`CliError`] for I/O, front-end and flow failures; argument
/// errors are handled earlier by [`Command::parse`].
pub fn run(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(usage().to_string()),
        Command::Detect(args) => detect(args),
        Command::Stats { input, top } => {
            let design = load_design(input, top.as_deref())?;
            Ok(stats_text(&design))
        }
        Command::Baselines { input, top, bound } => {
            let design = load_design(input, top.as_deref())?;
            Ok(baselines_text(&design, *bound))
        }
        Command::Table1 => Ok(table1_text()),
    }
}

fn detect(args: &DetectArgs) -> Result<String, CliError> {
    let design = load_design(&args.input, args.top.as_deref())?;
    let d = design.design();
    let benign = args
        .benign
        .iter()
        .filter_map(|name| d.lookup(name))
        .collect::<Vec<_>>();
    let config = DetectorConfig { benign_state: benign, ..DetectorConfig::default() };
    let report = TrojanDetector::with_config(&design, config)
        .map_err(|e| CliError::Flow(e.to_string()))?
        .run()
        .map_err(|e| CliError::Flow(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(out, "{report}");

    if let Some(dot_path) = &args.dot {
        std::fs::write(dot_path, fanout_dot(&design))
            .map_err(|e| CliError::Io { path: dot_path.clone(), message: e.to_string() })?;
        let _ = writeln!(out, "fanout-level graph written to {}", dot_path.display());
    }
    if let Some(prefix) = &args.vcd_prefix {
        if let DetectionOutcome::PropertyFailed { counterexample, .. } = &report.outcome {
            let replay = replay_counterexample(&design, counterexample)
                .map_err(|e| CliError::Flow(e.to_string()))?;
            for (suffix, vcd) in
                [("instance1", &replay.instance1_vcd), ("instance2", &replay.instance2_vcd)]
            {
                let path = PathBuf::from(format!("{}_{suffix}.vcd", prefix.display()));
                std::fs::write(&path, vcd)
                    .map_err(|e| CliError::Io { path: path.clone(), message: e.to_string() })?;
                let _ = writeln!(out, "counterexample waveform written to {}", path.display());
            }
        } else {
            let _ = writeln!(out, "no counterexample to export (no property failed)");
        }
    }
    Ok(out)
}

fn stats_text(design: &ValidatedDesign) -> String {
    let d = design.design();
    let stats = DesignStats::of(design);
    let mut out = String::new();
    let _ = writeln!(out, "design `{}`", d.name());
    let _ = writeln!(out, "{stats}");
    let _ = writeln!(out, "fanout levels (Algorithm 1 proof order):");
    for (k, level) in fanout_levels(design).iter().enumerate() {
        let names: Vec<&str> = level.iter().map(|&s| d.signal_name(s)).collect();
        let _ = writeln!(out, "  fanouts_CC{:<2} {}", k + 1, names.join(", "));
    }
    out
}

fn baselines_text(design: &ValidatedDesign, bound: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "baseline comparison for `{}`", design.design().name());

    let report = TrojanDetector::new(design)
        .and_then(|detector| detector.run())
        .map(|r| r.summary())
        .unwrap_or_else(|e| format!("flow not applicable: {e}"));
    let _ = writeln!(out, "  IPC flow (paper):       {report}");

    let bmc = bounded_trojan_search(design, &BmcOptions { bound, ..BmcOptions::default() });
    let _ = writeln!(
        out,
        "  BMC (bound {bound}):         {} ({} CNF vars, {:.3}s)",
        if bmc.detected() { "divergence found" } else { "no divergence within the bound" },
        bmc.cnf_vars,
        bmc.duration.as_secs_f64()
    );

    match unused_circuit_identification(design, &UciOptions::default()) {
        Ok(uci) => {
            let _ = writeln!(
                out,
                "  UCI (random tests):      {} of {} signal pairs flagged",
                uci.flagged.len(),
                uci.pairs_examined
            );
        }
        Err(e) => {
            let _ = writeln!(out, "  UCI (random tests):      not applicable: {e}");
        }
    }

    let fanci = control_value_analysis(design, &FanciOptions::default());
    let _ = writeln!(
        out,
        "  FANCI (control values):  {} of {} signals flagged",
        fanci.suspicious.len(),
        fanci.signals_analysed
    );
    out
}

fn table1_text() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:<10} {:<16} {:<22} {:<22} {}",
        "Benchmark", "Payload", "Trigger", "Paper: detected by", "Ours: detected by", "Match"
    );
    let _ = writeln!(out, "{}", "-".repeat(95));
    for benchmark in Benchmark::table1() {
        let info = benchmark.info();
        let design = benchmark.build().expect("bundled benchmarks build");
        let config = DetectorConfig {
            benign_state: benchmark.benign_state(&design),
            ..DetectorConfig::default()
        };
        let report = TrojanDetector::with_config(&design, config)
            .expect("bundled benchmarks are accepted")
            .run()
            .expect("flow completes");
        let ours = match &report.outcome {
            DetectionOutcome::PropertyFailed { detected_by, .. } => detected_by.to_string(),
            DetectionOutcome::UncoveredSignals { .. } => "coverage check".to_string(),
            DetectionOutcome::Secure => "NOT DETECTED".to_string(),
        };
        let matches = !report.outcome.is_secure();
        let _ = writeln!(
            out,
            "{:<16} {:<10} {:<16} {:<22} {:<22} {}",
            info.name,
            info.payload_label,
            info.trigger_label,
            info.paper_detected_by,
            ours,
            if matches { "yes" } else { "NO" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    const INFECTED: &str = "
module leaky(input clk, input rst, input [7:0] d, output [7:0] q);
  reg [7:0] stage;
  reg armed;
  always @(posedge clk or posedge rst) begin
    if (rst) armed <= 1'b0;
    else if (d == 8'h5A) armed <= 1'b1;
  end
  always @(posedge clk or posedge rst) begin
    if (rst) stage <= 8'd0;
    else stage <= d ^ {7'd0, armed};
  end
  assign q = stage;
endmodule
";

    #[test]
    fn detect_runs_end_to_end_and_writes_artefacts() {
        let input = write_temp("htd_cli_detect_input.v", INFECTED);
        let dot = std::env::temp_dir().join("htd_cli_detect_graph.dot");
        let vcd_prefix = std::env::temp_dir().join("htd_cli_detect_cex");
        let command = Command::Detect(DetectArgs {
            input: input.clone(),
            top: None,
            dot: Some(dot.clone()),
            vcd_prefix: Some(vcd_prefix.clone()),
            benign: vec![],
        });
        let output = run(&command).unwrap();
        assert!(output.contains("TROJAN SUSPECTED"), "{output}");
        assert!(std::fs::read_to_string(&dot).unwrap().contains("digraph"));
        let vcd1 = PathBuf::from(format!("{}_instance1.vcd", vcd_prefix.display()));
        assert!(std::fs::read_to_string(&vcd1).unwrap().contains("$enddefinitions"));
        for path in [input, dot, vcd1, PathBuf::from(format!("{}_instance2.vcd", vcd_prefix.display()))] {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn stats_lists_the_fanout_levels() {
        let input = write_temp("htd_cli_stats_input.v", INFECTED);
        let output = run(&Command::Stats { input: input.clone(), top: None }).unwrap();
        assert!(output.contains("fanouts_CC1"), "{output}");
        assert!(output.contains("leaky"));
        std::fs::remove_file(input).ok();
    }

    #[test]
    fn baselines_report_all_four_techniques() {
        let input = write_temp("htd_cli_baselines_input.v", INFECTED);
        let output =
            run(&Command::Baselines { input: input.clone(), top: None, bound: 4 }).unwrap();
        assert!(output.contains("IPC flow"));
        assert!(output.contains("BMC (bound 4)"));
        assert!(output.contains("UCI"));
        assert!(output.contains("FANCI"));
        std::fs::remove_file(input).ok();
    }

    #[test]
    fn help_prints_usage() {
        let output = run(&Command::Help).unwrap();
        assert!(output.contains("USAGE"));
    }
}
