//! End-to-end test of the DIMACS process backend: the `htd` binary itself is
//! used as the external solver (`htd sat` speaks the SAT-competition output
//! format), so the whole process-backend path — file writing, spawning,
//! answer parsing, model reconstruction — is exercised without any
//! third-party solver installed.

use htd_core::{BackendChoice, DetectedBy, DetectionOutcome, DetectorConfig, SessionBuilder};
use htd_rtl::Design;
use htd_sat::{DimacsProcessBackend, Lit, SatBackend, SolveResult};

fn htd_binary() -> &'static str {
    env!("CARGO_BIN_EXE_htd")
}

#[test]
fn process_backend_solves_through_the_htd_binary() {
    let mut backend = DimacsProcessBackend::new(htd_binary()).with_args(["sat"]);
    let a = backend.new_var();
    let b = backend.new_var();
    backend.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    backend.add_clause(&[Lit::neg(a), Lit::pos(b)]);

    assert_eq!(backend.solve_under(&[]).unwrap(), SolveResult::Sat);
    assert_eq!(backend.model_value(b), Some(true));

    // Assumptions are per-query unit constraints.
    assert_eq!(
        backend.solve_under(&[Lit::neg(b)]).unwrap(),
        SolveResult::Unsat
    );
    assert_eq!(backend.solve_under(&[]).unwrap(), SolveResult::Sat);
    assert_eq!(backend.stats().queries, 3);
}

#[test]
fn process_backend_agrees_with_the_builtin_solver_on_random_formulas() {
    // Deterministic pseudo-random 3-SAT instances near the phase transition:
    // the process backend (via `htd sat`) and the builtin solver must agree
    // on satisfiability for every instance.
    let mut state = 0x3511_37d5_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        (state >> 33) as u32
    };
    for _ in 0..8 {
        let num_vars = 12;
        let num_clauses = 50;
        let mut process = DimacsProcessBackend::new(htd_binary()).with_args(["sat"]);
        let mut builtin = htd_sat::Solver::new();
        let pvars: Vec<_> = (0..num_vars).map(|_| process.new_var()).collect();
        let bvars: Vec<_> = (0..num_vars)
            .map(|_| SatBackend::new_var(&mut builtin))
            .collect();
        for _ in 0..num_clauses {
            let mut clause_p = Vec::new();
            let mut clause_b = Vec::new();
            while clause_p.len() < 3 {
                let v = (next() as usize) % num_vars;
                let neg = next() & 1 == 1;
                if !clause_p.iter().any(|l: &Lit| l.var() == pvars[v]) {
                    clause_p.push(Lit::new(pvars[v], neg));
                    clause_b.push(Lit::new(bvars[v], neg));
                }
            }
            process.add_clause(&clause_p);
            SatBackend::add_clause(&mut builtin, &clause_b);
        }
        let expected = SatBackend::solve_under(&mut builtin, &[]).unwrap();
        let answered = process.solve_under(&[]).unwrap();
        assert_eq!(
            answered, expected,
            "process backend diverged from the builtin solver"
        );
    }
}

#[test]
fn detection_session_runs_on_the_dimacs_process_backend() {
    // An input-triggered Trojan: the init property must fail identically on
    // the builtin and the external-process backend.
    let mut d = Design::new("proc_backend_trojan");
    let input = d.add_input("in", 8).unwrap();
    let trigger = d.add_register("trigger", 1, 0).unwrap();
    let result = d.add_register("result", 8, 0).unwrap();
    let magic = d.eq_const(d.signal(input), 0xA5).unwrap();
    let trig_next = d.or(d.signal(trigger), magic).unwrap();
    d.set_register_next(trigger, trig_next).unwrap();
    let flip = d.zero_ext(d.signal(trigger), 8).unwrap();
    let payload = d.xor(d.signal(input), flip).unwrap();
    d.set_register_next(result, payload).unwrap();
    d.add_output("out", d.signal(result)).unwrap();
    let design = d.validated().unwrap();

    // `htd sat` has no incremental interface, so each query re-reads the
    // CNF, but the session still performs a single bit-blast.
    let backend = BackendChoice::DimacsProcess(htd_binary().into(), vec!["sat".to_string()]);
    let mut external_session = SessionBuilder::new(design.clone())
        .config(DetectorConfig::default())
        .backend(backend)
        .build()
        .unwrap();
    let external_report = external_session.run().unwrap();
    assert_eq!(external_session.session_stats().bit_blasts, 1);

    // The builtin path must agree on the verdict.
    let builtin_report = SessionBuilder::new(design).build().unwrap().run().unwrap();
    for (label, report) in [("external", &external_report), ("builtin", &builtin_report)] {
        match &report.outcome {
            DetectionOutcome::PropertyFailed {
                detected_by,
                counterexample,
            } => {
                assert_eq!(*detected_by, DetectedBy::InitProperty, "{label}");
                assert!(!counterexample.diffs.is_empty(), "{label}");
            }
            other => panic!("{label}: expected init-property detection, got {other:?}"),
        }
    }

    // The process backend cannot see a foreign solver's internals, but its
    // visible cost accounting must reach `DetectionReport::solver_totals`:
    // queries answered, forks consumed and the bytes their clause-list
    // clones copied.  (These all read zero before `stats()` stopped
    // returning `SolverStats::default()`.)
    let totals = &external_report.solver_totals;
    assert!(
        totals.solves > 0,
        "dimacs queries must be counted: {totals:?}"
    );
    assert!(
        totals.fork_count > 0,
        "dimacs forks must be counted: {totals:?}"
    );
    assert!(
        totals.bytes_cloned > 0,
        "dimacs fork clone cost must be counted: {totals:?}"
    );
}

/// The fork cost model also surfaces per fork: forking a process backend
/// records one fork of `snapshot_bytes` on the child and carries the work
/// counters over, mirroring the bundled solver's contract.
#[test]
fn process_backend_fork_records_its_clone_cost() {
    let mut backend = DimacsProcessBackend::new(htd_binary()).with_args(["sat"]);
    let a = backend.new_var();
    let b = backend.new_var();
    backend.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    assert_eq!(backend.solve_under(&[]).unwrap(), SolveResult::Sat);

    let fork = backend.fork().expect("process backends fork");
    let stats = fork.stats();
    assert_eq!(stats.queries, 1, "query counters carry over");
    assert_eq!(stats.solver.solves, 1);
    assert_eq!(stats.solver.fork_count, 1);
    assert_eq!(stats.solver.bytes_cloned, backend.snapshot_bytes());
    assert!(backend.snapshot_bytes() > 0);
}
