//! Tokens and the lexer for the supported Verilog subset.

use std::fmt;

use crate::error::{SourceLocation, VerilogError};

/// Verilog keywords recognised by the parser.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Assign,
    Always,
    Posedge,
    Negedge,
    Or,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Endcase,
    Default,
    Parameter,
    Localparam,
    Integer,
    Signed,
    Initial,
    Function,
    Endfunction,
    Generate,
    Endgenerate,
    For,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "module" => Keyword::Module,
            "endmodule" => Keyword::Endmodule,
            "input" => Keyword::Input,
            "output" => Keyword::Output,
            "inout" => Keyword::Inout,
            "wire" => Keyword::Wire,
            "reg" => Keyword::Reg,
            "assign" => Keyword::Assign,
            "always" => Keyword::Always,
            "posedge" => Keyword::Posedge,
            "negedge" => Keyword::Negedge,
            "or" => Keyword::Or,
            "begin" => Keyword::Begin,
            "end" => Keyword::End,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "case" => Keyword::Case,
            "casez" => Keyword::Casez,
            "endcase" => Keyword::Endcase,
            "default" => Keyword::Default,
            "parameter" => Keyword::Parameter,
            "localparam" => Keyword::Localparam,
            "integer" => Keyword::Integer,
            "signed" => Keyword::Signed,
            "initial" => Keyword::Initial,
            "function" => Keyword::Function,
            "endfunction" => Keyword::Endfunction,
            "generate" => Keyword::Generate,
            "endgenerate" => Keyword::Endgenerate,
            "for" => Keyword::For,
            _ => return None,
        })
    }

    /// The keyword as it appears in source text.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Module => "module",
            Keyword::Endmodule => "endmodule",
            Keyword::Input => "input",
            Keyword::Output => "output",
            Keyword::Inout => "inout",
            Keyword::Wire => "wire",
            Keyword::Reg => "reg",
            Keyword::Assign => "assign",
            Keyword::Always => "always",
            Keyword::Posedge => "posedge",
            Keyword::Negedge => "negedge",
            Keyword::Or => "or",
            Keyword::Begin => "begin",
            Keyword::End => "end",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::Case => "case",
            Keyword::Casez => "casez",
            Keyword::Endcase => "endcase",
            Keyword::Default => "default",
            Keyword::Parameter => "parameter",
            Keyword::Localparam => "localparam",
            Keyword::Integer => "integer",
            Keyword::Signed => "signed",
            Keyword::Initial => "initial",
            Keyword::Function => "function",
            Keyword::Endfunction => "endfunction",
            Keyword::Generate => "generate",
            Keyword::Endgenerate => "endgenerate",
            Keyword::For => "for",
        }
    }
}

/// A number literal: optional explicit width, and the value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Number {
    /// Explicit size in bits (`8'hFF` has `Some(8)`), `None` for plain
    /// integers.
    pub width: Option<u32>,
    /// The value, zero-extended into 128 bits.
    pub value: u128,
}

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (includes escaped identifiers with the backslash
    /// stripped).
    Identifier(String),
    /// A keyword.
    Keyword(Keyword),
    /// A number literal.
    Number(Number),
    /// `(`
    LeftParen,
    /// `)`
    RightParen,
    /// `[`
    LeftBracket,
    /// `]`
    RightBracket,
    /// `{`
    LeftBrace,
    /// `}`
    RightBrace,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `#`
    Hash,
    /// `@`
    At,
    /// `?`
    Question,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Less,
    /// `<=` — both the relational operator and the nonblocking assignment;
    /// the parser disambiguates from context.
    LessEq,
    /// `>`
    Greater,
    /// `>=`
    GreaterEq,
    /// `<<`
    ShiftLeft,
    /// `>>`
    ShiftRight,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `^`
    Caret,
    /// `~^` or `^~`
    Xnor,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Identifier(s) => write!(f, "{s}"),
            TokenKind::Keyword(k) => write!(f, "{}", k.as_str()),
            TokenKind::Number(n) => match n.width {
                Some(w) => write!(f, "{}'d{}", w, n.value),
                None => write!(f, "{}", n.value),
            },
            TokenKind::LeftParen => write!(f, "("),
            TokenKind::RightParen => write!(f, ")"),
            TokenKind::LeftBracket => write!(f, "["),
            TokenKind::RightBracket => write!(f, "]"),
            TokenKind::LeftBrace => write!(f, "{{"),
            TokenKind::RightBrace => write!(f, "}}"),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Hash => write!(f, "#"),
            TokenKind::At => write!(f, "@"),
            TokenKind::Question => write!(f, "?"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Less => write!(f, "<"),
            TokenKind::LessEq => write!(f, "<="),
            TokenKind::Greater => write!(f, ">"),
            TokenKind::GreaterEq => write!(f, ">="),
            TokenKind::ShiftLeft => write!(f, "<<"),
            TokenKind::ShiftRight => write!(f, ">>"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Bang => write!(f, "!"),
            TokenKind::Tilde => write!(f, "~"),
            TokenKind::Amp => write!(f, "&"),
            TokenKind::AmpAmp => write!(f, "&&"),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::PipePipe => write!(f, "||"),
            TokenKind::Caret => write!(f, "^"),
            TokenKind::Xnor => write!(f, "~^"),
            TokenKind::Eof => write!(f, "<end of input>"),
        }
    }
}

/// A token together with its source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it starts in the source text.
    pub location: SourceLocation,
}

/// Splits Verilog source text into [`Token`]s.
///
/// # Errors
///
/// Returns an error for characters outside the supported subset, malformed
/// number literals and unterminated block comments.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), htd_verilog::VerilogError> {
/// let tokens = htd_verilog::lex("assign y = a & b;")?;
/// assert_eq!(tokens.len(), 8); // incl. the end-of-input marker
/// # Ok(())
/// # }
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, VerilogError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    column: u32,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            source,
        }
    }

    fn location(&self) -> SourceLocation {
        SourceLocation {
            line: self.line,
            column: self.column,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, VerilogError> {
        let _ = self.source;
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let location = self.location();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    location,
                });
                return Ok(tokens);
            };
            let kind = if c.is_ascii_alphabetic() || c == '_' || c == '\\' || c == '$' {
                self.lex_identifier()
            } else if c.is_ascii_digit() || (c == '\'' && self.peek2().is_some()) {
                self.lex_number(location)?
            } else {
                self.lex_operator(location)?
            };
            tokens.push(Token { kind, location });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), VerilogError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.location();
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('*') if self.peek() == Some('/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => {
                                return Err(VerilogError::UnterminatedComment { location: start })
                            }
                        }
                    }
                }
                // Compiler directives (`timescale, `define-free sources) and
                // attributes are skipped to the end of the line / attribute.
                Some('`') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                // An attribute instance `(* keep = 1 *)` — but not the
                // combinational sensitivity list `@(*)`, whose `*` is
                // immediately followed by `)`.
                Some('(')
                    if self.peek2() == Some('*')
                        && self.chars.get(self.pos + 2).copied() != Some(')') =>
                {
                    let start = self.location();
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('*') if self.peek() == Some(')') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => {
                                return Err(VerilogError::UnterminatedComment { location: start })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_identifier(&mut self) -> TokenKind {
        let escaped = self.peek() == Some('\\');
        if escaped {
            self.bump();
            let mut name = String::new();
            while let Some(c) = self.peek() {
                if c.is_whitespace() {
                    break;
                }
                name.push(c);
                self.bump();
            }
            return TokenKind::Identifier(name);
        }
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::from_str(&name) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Identifier(name),
        }
    }

    fn lex_number(&mut self, location: SourceLocation) -> Result<TokenKind, VerilogError> {
        // Optional decimal size before the base marker.
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                prefix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() != Some('\'') {
            // Plain unsized decimal.
            let digits: String = prefix.chars().filter(|c| *c != '_').collect();
            let value = digits
                .parse::<u128>()
                .map_err(|_| VerilogError::InvalidNumber {
                    literal: prefix.clone(),
                    location,
                })?;
            return Ok(TokenKind::Number(Number { width: None, value }));
        }
        self.bump(); // the tick
                     // Optional signedness marker.
        if matches!(self.peek(), Some('s' | 'S')) {
            self.bump();
        }
        let base = self.bump().ok_or_else(|| VerilogError::InvalidNumber {
            literal: prefix.clone(),
            location,
        })?;
        let radix = match base {
            'h' | 'H' => 16,
            'd' | 'D' => 10,
            'o' | 'O' => 8,
            'b' | 'B' => 2,
            other => {
                return Err(VerilogError::InvalidNumber {
                    literal: format!("{prefix}'{other}"),
                    location,
                })
            }
        };
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_hexdigit() || c == '_' || c == 'x' || c == 'X' || c == 'z' || c == 'Z' {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // x / z digits are outside the two-valued subset; they are read as 0
        // so that benchmark sources using `'bx` placeholders still load.
        let cleaned: String = digits
            .chars()
            .filter(|c| *c != '_')
            .map(|c| {
                if matches!(c, 'x' | 'X' | 'z' | 'Z') {
                    '0'
                } else {
                    c
                }
            })
            .collect();
        if cleaned.is_empty() {
            return Err(VerilogError::InvalidNumber {
                literal: format!("{prefix}'{base}"),
                location,
            });
        }
        let value =
            u128::from_str_radix(&cleaned, radix).map_err(|_| VerilogError::InvalidNumber {
                literal: format!("{prefix}'{base}{digits}"),
                location,
            })?;
        let width = if prefix.is_empty() {
            None
        } else {
            let size: String = prefix.chars().filter(|c| *c != '_').collect();
            Some(
                size.parse::<u32>()
                    .map_err(|_| VerilogError::InvalidNumber {
                        literal: prefix.clone(),
                        location,
                    })?,
            )
        };
        Ok(TokenKind::Number(Number { width, value }))
    }

    fn lex_operator(&mut self, location: SourceLocation) -> Result<TokenKind, VerilogError> {
        let c = self.bump().expect("caller checked peek");
        let kind = match c {
            '(' => TokenKind::LeftParen,
            ')' => TokenKind::RightParen,
            '[' => TokenKind::LeftBracket,
            ']' => TokenKind::RightBracket,
            '{' => TokenKind::LeftBrace,
            '}' => TokenKind::RightBrace,
            ';' => TokenKind::Semicolon,
            ':' => TokenKind::Colon,
            ',' => TokenKind::Comma,
            '.' => TokenKind::Dot,
            '#' => TokenKind::Hash,
            '@' => TokenKind::At,
            '?' => TokenKind::Question,
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '=' => {
                if self.peek() == Some('=') {
                    self.bump();
                    // `===` is read as `==` (two-valued subset).
                    if self.peek() == Some('=') {
                        self.bump();
                    }
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            '!' => {
                if self.peek() == Some('=') {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                    }
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            '<' => match self.peek() {
                Some('=') => {
                    self.bump();
                    TokenKind::LessEq
                }
                Some('<') => {
                    self.bump();
                    TokenKind::ShiftLeft
                }
                _ => TokenKind::Less,
            },
            '>' => match self.peek() {
                Some('=') => {
                    self.bump();
                    TokenKind::GreaterEq
                }
                Some('>') => {
                    self.bump();
                    TokenKind::ShiftRight
                }
                _ => TokenKind::Greater,
            },
            '&' => {
                if self.peek() == Some('&') {
                    self.bump();
                    TokenKind::AmpAmp
                } else {
                    TokenKind::Amp
                }
            }
            '|' => {
                if self.peek() == Some('|') {
                    self.bump();
                    TokenKind::PipePipe
                } else {
                    TokenKind::Pipe
                }
            }
            '^' => {
                if self.peek() == Some('~') {
                    self.bump();
                    TokenKind::Xnor
                } else {
                    TokenKind::Caret
                }
            }
            '~' => {
                if self.peek() == Some('^') {
                    self.bump();
                    TokenKind::Xnor
                } else if self.peek() == Some('&') || self.peek() == Some('|') {
                    // ~& and ~| reduction operators: return the tilde; the
                    // parser combines it with the following reduction.
                    TokenKind::Tilde
                } else {
                    TokenKind::Tilde
                }
            }
            other => {
                return Err(VerilogError::UnexpectedCharacter {
                    character: other,
                    location,
                })
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_identifiers_keywords_and_operators() {
        let toks = kinds("module m(input a); assign y = a & ~b; endmodule");
        assert!(toks.contains(&TokenKind::Keyword(Keyword::Module)));
        assert!(toks.contains(&TokenKind::Identifier("y".into())));
        assert!(toks.contains(&TokenKind::Amp));
        assert!(toks.contains(&TokenKind::Tilde));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_sized_and_unsized_numbers() {
        let toks = kinds("8'hFF 4'b1010 16'd255 42 12'o17 8'hx");
        let numbers: Vec<Number> = toks
            .into_iter()
            .filter_map(|t| match t {
                TokenKind::Number(n) => Some(n),
                _ => None,
            })
            .collect();
        assert_eq!(
            numbers[0],
            Number {
                width: Some(8),
                value: 0xFF
            }
        );
        assert_eq!(
            numbers[1],
            Number {
                width: Some(4),
                value: 0b1010
            }
        );
        assert_eq!(
            numbers[2],
            Number {
                width: Some(16),
                value: 255
            }
        );
        assert_eq!(
            numbers[3],
            Number {
                width: None,
                value: 42
            }
        );
        assert_eq!(
            numbers[4],
            Number {
                width: Some(12),
                value: 0o17
            }
        );
        // x digits are folded to zero in the two-valued subset.
        assert_eq!(
            numbers[5],
            Number {
                width: Some(8),
                value: 0
            }
        );
    }

    #[test]
    fn numbers_allow_underscores() {
        let toks = kinds("32'hDEAD_BEEF 1_000");
        assert_eq!(
            toks[0],
            TokenKind::Number(Number {
                width: Some(32),
                value: 0xDEAD_BEEF
            })
        );
        assert_eq!(
            toks[1],
            TokenKind::Number(Number {
                width: None,
                value: 1000
            })
        );
    }

    #[test]
    fn skips_comments_directives_and_attributes() {
        let toks = kinds(
            "`timescale 1ns/1ps\n// line comment\n/* block\ncomment */ (* keep = 1 *) wire w;",
        );
        assert_eq!(
            toks,
            vec![
                TokenKind::Keyword(Keyword::Wire),
                TokenKind::Identifier("w".into()),
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_comparison_and_shift_operators() {
        let toks = kinds("a <= b << 2 >= c >> 1 < d > e");
        assert!(toks.contains(&TokenKind::LessEq));
        assert!(toks.contains(&TokenKind::ShiftLeft));
        assert!(toks.contains(&TokenKind::GreaterEq));
        assert!(toks.contains(&TokenKind::ShiftRight));
        assert!(toks.contains(&TokenKind::Less));
        assert!(toks.contains(&TokenKind::Greater));
    }

    #[test]
    fn reports_unterminated_block_comment() {
        let err = lex("assign /* oops").unwrap_err();
        assert!(matches!(err, VerilogError::UnterminatedComment { .. }));
    }

    #[test]
    fn reports_unexpected_character() {
        let err = lex("assign y = \"str\";").unwrap_err();
        assert!(matches!(
            err,
            VerilogError::UnexpectedCharacter { character: '"', .. }
        ));
    }

    #[test]
    fn tracks_source_locations() {
        let tokens = lex("wire a;\n  reg b;").unwrap();
        let reg = tokens
            .iter()
            .find(|t| t.kind == TokenKind::Keyword(Keyword::Reg))
            .unwrap();
        assert_eq!(reg.location.line, 2);
        assert_eq!(reg.location.column, 3);
    }
}
