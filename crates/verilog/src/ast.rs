//! Abstract syntax tree for the supported Verilog subset.
//!
//! The subset is the synthesizable core used by the Trust-Hub accelerator
//! benchmarks: one clock domain, `assign` statements, clocked `always` blocks
//! with nonblocking assignments, combinational `always` blocks with blocking
//! assignments, `if`/`case` control flow, and the usual operator zoo over
//! unsigned vectors.

use crate::error::SourceLocation;
use crate::token::Number;

/// A complete source file: one or more module definitions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceUnit {
    /// The modules in declaration order.
    pub modules: Vec<Module>,
}

/// One `module … endmodule` definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Module {
    /// The module name.
    pub name: String,
    /// Port names in header order (directions/widths come from the
    /// declarations).
    pub ports: Vec<String>,
    /// Parameter and localparam definitions in declaration order.
    pub parameters: Vec<ParameterDecl>,
    /// Net and variable declarations.
    pub declarations: Vec<NetDecl>,
    /// Continuous assignments.
    pub assigns: Vec<ContinuousAssign>,
    /// `always` blocks.
    pub always_blocks: Vec<AlwaysBlock>,
    /// Where the module starts.
    pub location: SourceLocation,
}

/// A `parameter` or `localparam` definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParameterDecl {
    /// The parameter name.
    pub name: String,
    /// Its value expression (must be compile-time constant).
    pub value: Expression,
    /// `true` for `localparam`.
    pub local: bool,
    /// Where it was declared.
    pub location: SourceLocation,
}

/// Direction of a port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortDirection {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout` (rejected during elaboration; kept for error reporting)
    Inout,
}

/// The net class of a declaration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetKind {
    /// `wire` (or a bare port declaration)
    Wire,
    /// `reg`
    Reg,
    /// `integer` (treated as a 32-bit reg)
    Integer,
}

/// One declared name: ports, wires and regs all end up here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetDecl {
    /// The declared name.
    pub name: String,
    /// Port direction, if this is a port.
    pub direction: Option<PortDirection>,
    /// Net class.
    pub kind: NetKind,
    /// The `[msb:lsb]` range, if any (both bounds are constant expressions).
    pub range: Option<(Expression, Expression)>,
    /// Where it was declared.
    pub location: SourceLocation,
}

/// A continuous assignment `assign target = value;`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContinuousAssign {
    /// The assignment target.
    pub target: LValue,
    /// The driven value.
    pub value: Expression,
    /// Where the assignment was written.
    pub location: SourceLocation,
}

/// The sensitivity of an `always` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Sensitivity {
    /// `always @(posedge clk)` or `always @(posedge clk or posedge rst)`,
    /// listing the edge-sensitive signals.
    Edges(Vec<EdgeEvent>),
    /// `always @(*)`, `always @(a or b)` — combinational.
    Combinational,
}

/// One edge event in a sensitivity list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeEvent {
    /// `true` for `posedge`, `false` for `negedge`.
    pub posedge: bool,
    /// The signal name.
    pub signal: String,
}

/// An `always` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlwaysBlock {
    /// Its sensitivity list.
    pub sensitivity: Sensitivity,
    /// The statement it executes.
    pub body: Statement,
    /// Where the block starts.
    pub location: SourceLocation,
}

/// An assignment target: a whole identifier, one bit, a constant part
/// select, or a concatenation of targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LValue {
    /// The whole declared vector.
    Identifier {
        /// The target name.
        name: String,
        /// Where it was written.
        location: SourceLocation,
    },
    /// A single bit `name[index]` (the index may be a dynamic expression).
    Bit {
        /// The target name.
        name: String,
        /// The bit index.
        index: Expression,
        /// Where it was written.
        location: SourceLocation,
    },
    /// A constant part select `name[msb:lsb]`.
    Part {
        /// The target name.
        name: String,
        /// The most-significant bit (constant).
        msb: Expression,
        /// The least-significant bit (constant).
        lsb: Expression,
        /// Where it was written.
        location: SourceLocation,
    },
    /// `{a, b, …}` concatenation of targets (assigned left-to-right, most
    /// significant first).
    Concat {
        /// The concatenated targets.
        parts: Vec<LValue>,
        /// Where it was written.
        location: SourceLocation,
    },
}

impl LValue {
    /// The source location of the target.
    #[must_use]
    pub fn location(&self) -> SourceLocation {
        match self {
            LValue::Identifier { location, .. }
            | LValue::Bit { location, .. }
            | LValue::Part { location, .. }
            | LValue::Concat { location, .. } => *location,
        }
    }
}

/// A procedural statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Statement {
    /// `begin … end`
    Block(Vec<Statement>),
    /// A blocking (`=`) or nonblocking (`<=`) assignment.
    Assign {
        /// The target.
        target: LValue,
        /// The assigned value.
        value: Expression,
        /// `true` for `<=`.
        nonblocking: bool,
        /// Where the assignment was written.
        location: SourceLocation,
    },
    /// `if (cond) then_branch else else_branch`
    If {
        /// The condition.
        condition: Expression,
        /// The `then` statement.
        then_branch: Box<Statement>,
        /// The optional `else` statement.
        else_branch: Option<Box<Statement>>,
    },
    /// `case (subject) … endcase`
    Case {
        /// The matched expression.
        subject: Expression,
        /// The arms: label expressions (empty for `default`) and the arm
        /// body.
        arms: Vec<CaseArm>,
    },
    /// The empty statement `;`.
    Empty,
}

/// One arm of a `case` statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseArm {
    /// The labels of this arm; empty for the `default` arm.
    pub labels: Vec<Expression>,
    /// The arm body.
    pub body: Statement,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOperator {
    /// `~` bitwise complement
    BitNot,
    /// `!` logical negation
    LogicalNot,
    /// `-` arithmetic negation
    Negate,
    /// `&` reduction and
    ReduceAnd,
    /// `|` reduction or
    ReduceOr,
    /// `^` reduction xor
    ReduceXor,
    /// `~&` reduction nand
    ReduceNand,
    /// `~|` reduction nor
    ReduceNor,
    /// `~^` reduction xnor
    ReduceXnor,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOperator {
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~^`
    Xnor,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `<<`
    ShiftLeft,
    /// `>>`
    ShiftRight,
    /// `==`
    Equal,
    /// `!=`
    NotEqual,
    /// `<`
    Less,
    /// `<=`
    LessEqual,
    /// `>`
    Greater,
    /// `>=`
    GreaterEqual,
    /// `&&`
    LogicalAnd,
    /// `||`
    LogicalOr,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expression {
    /// A number literal.
    Number {
        /// The literal.
        value: Number,
        /// Where it was written.
        location: SourceLocation,
    },
    /// A reference to a declared name or parameter.
    Identifier {
        /// The name.
        name: String,
        /// Where it was written.
        location: SourceLocation,
    },
    /// `expr[index]` — a single-bit select (the index may be dynamic).
    BitSelect {
        /// The selected name.
        name: String,
        /// The index expression.
        index: Box<Expression>,
        /// Where it was written.
        location: SourceLocation,
    },
    /// `expr[msb:lsb]` — a constant part select.
    PartSelect {
        /// The selected name.
        name: String,
        /// The most-significant bit (constant).
        msb: Box<Expression>,
        /// The least-significant bit (constant).
        lsb: Box<Expression>,
        /// Where it was written.
        location: SourceLocation,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOperator,
        /// The operand.
        operand: Box<Expression>,
        /// Where it was written.
        location: SourceLocation,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOperator,
        /// Left operand.
        left: Box<Expression>,
        /// Right operand.
        right: Box<Expression>,
        /// Where it was written.
        location: SourceLocation,
    },
    /// `cond ? then : else`
    Conditional {
        /// The condition.
        condition: Box<Expression>,
        /// Value if the condition is true.
        then_value: Box<Expression>,
        /// Value if the condition is false.
        else_value: Box<Expression>,
        /// Where it was written.
        location: SourceLocation,
    },
    /// `{a, b, …}` concatenation (most significant part first).
    Concat {
        /// The concatenated parts.
        parts: Vec<Expression>,
        /// Where it was written.
        location: SourceLocation,
    },
    /// `{count{expr}}` replication.
    Repeat {
        /// The replication count (constant).
        count: Box<Expression>,
        /// The replicated expression.
        value: Box<Expression>,
        /// Where it was written.
        location: SourceLocation,
    },
}

impl Expression {
    /// The source location of the expression.
    #[must_use]
    pub fn location(&self) -> SourceLocation {
        match self {
            Expression::Number { location, .. }
            | Expression::Identifier { location, .. }
            | Expression::BitSelect { location, .. }
            | Expression::PartSelect { location, .. }
            | Expression::Unary { location, .. }
            | Expression::Binary { location, .. }
            | Expression::Conditional { location, .. }
            | Expression::Concat { location, .. }
            | Expression::Repeat { location, .. } => *location,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_location_is_preserved() {
        let loc = SourceLocation { line: 7, column: 9 };
        let e = Expression::Identifier {
            name: "x".into(),
            location: loc,
        };
        assert_eq!(e.location(), loc);
    }

    #[test]
    fn lvalue_location_is_preserved() {
        let loc = SourceLocation { line: 2, column: 4 };
        let l = LValue::Concat {
            parts: Vec::new(),
            location: loc,
        };
        assert_eq!(l.location(), loc);
    }
}
