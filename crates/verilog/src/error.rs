//! Error types for the Verilog front-end.

use std::error::Error;
use std::fmt;

use htd_rtl::DesignError;

/// A position in the source text (1-based line and column).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceLocation {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub column: u32,
}

impl fmt::Display for SourceLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// Errors produced while lexing, parsing or elaborating Verilog source.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerilogError {
    /// A character that cannot start any token.
    UnexpectedCharacter {
        /// The offending character.
        character: char,
        /// Where it was found.
        location: SourceLocation,
    },
    /// A malformed number literal (bad base, digit outside the base, …).
    InvalidNumber {
        /// The literal text as written.
        literal: String,
        /// Where it was found.
        location: SourceLocation,
    },
    /// A block comment or string that never terminates.
    UnterminatedComment {
        /// Where the comment started.
        location: SourceLocation,
    },
    /// The parser found a token it cannot use at this point.
    UnexpectedToken {
        /// What was found (rendered as text).
        found: String,
        /// What the parser expected.
        expected: String,
        /// Where it was found.
        location: SourceLocation,
    },
    /// A language feature outside the supported synthesizable subset.
    Unsupported {
        /// Description of the unsupported construct.
        construct: String,
        /// Where it was found.
        location: SourceLocation,
    },
    /// An identifier was referenced but never declared.
    UndeclaredIdentifier {
        /// The identifier.
        name: String,
        /// Where it was referenced.
        location: SourceLocation,
    },
    /// An identifier was declared more than once.
    DuplicateDeclaration {
        /// The identifier.
        name: String,
        /// Where the second declaration was found.
        location: SourceLocation,
    },
    /// An expression that must be a compile-time constant is not.
    NotConstant {
        /// What the constant was needed for.
        context: String,
        /// Where the expression was found.
        location: SourceLocation,
    },
    /// A combinational `always` block does not assign a variable on every
    /// path, which would infer a latch.
    InferredLatch {
        /// The variable that is only conditionally assigned.
        name: String,
    },
    /// A variable is assigned from more than one `always` block or both from
    /// procedural and continuous assignments.
    MultipleDrivers {
        /// The multiply-driven variable.
        name: String,
    },
    /// A procedural assignment target is not assignable (an input, a
    /// parameter, …).
    InvalidAssignmentTarget {
        /// The target identifier.
        name: String,
        /// Where the assignment was found.
        location: SourceLocation,
    },
    /// Combinational logic depends on itself.
    CombinationalLoop {
        /// The signal on the loop.
        name: String,
    },
    /// The reset branch of a sequential block assigns a non-constant value,
    /// so no register initial value can be derived.
    NonConstantReset {
        /// The register with the non-constant reset value.
        name: String,
    },
    /// The requested top module does not exist in the source.
    UnknownModule {
        /// The module name.
        name: String,
    },
    /// The source contains no module at all.
    EmptySource,
    /// An error raised by the RTL builder while lowering the design.
    Design(DesignError),
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerilogError::UnexpectedCharacter {
                character,
                location,
            } => {
                write!(f, "unexpected character `{character}` at {location}")
            }
            VerilogError::InvalidNumber { literal, location } => {
                write!(f, "invalid number literal `{literal}` at {location}")
            }
            VerilogError::UnterminatedComment { location } => {
                write!(f, "unterminated block comment starting at {location}")
            }
            VerilogError::UnexpectedToken {
                found,
                expected,
                location,
            } => {
                write!(f, "expected {expected}, found `{found}` at {location}")
            }
            VerilogError::Unsupported {
                construct,
                location,
            } => {
                write!(f, "unsupported construct at {location}: {construct}")
            }
            VerilogError::UndeclaredIdentifier { name, location } => {
                write!(f, "undeclared identifier `{name}` at {location}")
            }
            VerilogError::DuplicateDeclaration { name, location } => {
                write!(f, "duplicate declaration of `{name}` at {location}")
            }
            VerilogError::NotConstant { context, location } => {
                write!(
                    f,
                    "expression for {context} at {location} is not a compile-time constant"
                )
            }
            VerilogError::InferredLatch { name } => {
                write!(f, "combinational block infers a latch for `{name}`")
            }
            VerilogError::MultipleDrivers { name } => {
                write!(f, "`{name}` is driven from more than one place")
            }
            VerilogError::InvalidAssignmentTarget { name, location } => {
                write!(f, "`{name}` at {location} cannot be assigned")
            }
            VerilogError::CombinationalLoop { name } => {
                write!(f, "combinational loop through `{name}`")
            }
            VerilogError::NonConstantReset { name } => {
                write!(f, "reset value of `{name}` is not a constant")
            }
            VerilogError::UnknownModule { name } => {
                write!(f, "module `{name}` not found in the source")
            }
            VerilogError::EmptySource => write!(f, "source contains no module"),
            VerilogError::Design(e) => write!(f, "RTL lowering failed: {e}"),
        }
    }
}

impl Error for VerilogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerilogError::Design(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DesignError> for VerilogError {
    fn from(e: DesignError) -> Self {
        VerilogError::Design(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_location() {
        let err = VerilogError::UnexpectedToken {
            found: ";".into(),
            expected: "an expression".into(),
            location: SourceLocation {
                line: 3,
                column: 14,
            },
        };
        let text = err.to_string();
        assert!(text.contains("line 3"));
        assert!(text.contains("column 14"));
        assert!(text.contains(";"));
    }

    #[test]
    fn design_errors_are_wrapped_with_a_source() {
        let err: VerilogError = DesignError::InvalidWidth { width: 0 }.into();
        assert!(err.to_string().contains("RTL lowering failed"));
        assert!(Error::source(&err).is_some());
    }
}
